//! Relation-scoped concurrent element cache.
//!
//! The per-tuple [`ElementCache`](crate::repair::cache::ElementCache) shares
//! element checks *within* one tuple; on real relations the same values
//! recur across thousands of rows (every laureate row holds "Nobel Prize in
//! Chemistry"), so the same KB lookups are recomputed per row. The
//! `ValueCache` memoizes them once per *value*: node candidates are keyed by
//! `(schema-node signature, cell value)` and edge checks by `(edge
//! signature, from-value, to-value)`.
//!
//! Because keys include the cell value — not just the column — entries are
//! pure functions of the KB *at one generation* and never go stale while
//! that generation lives: repairing a cell simply probes a different key.
//! That makes the cache safely shareable across tuples and across threads;
//! concurrency is an array of shards, each a [`parking_lot::RwLock`]-guarded
//! map, so readers never contend and writers only lock one shard.
//!
//! When the KB *does* change (a [`dr_kb::KbDelta`]), the delta's
//! [`KbFootprint`] names exactly the regions it touched, and
//! [`ValueCache::invalidate`] removes only the entries whose recorded reads
//! intersect it: node entries depend on their schema-node type (a class
//! extent or the literal pool), edge entries additionally on the `(from
//! instance, predicate)` out-pairs they probed (see [`EdgeEntry`]). Every
//! other entry survives and keeps warm-starting repairs.
//!
//! A cache may outlive one relation: the
//! [`CacheRegistry`](crate::repair::registry::CacheRegistry) keys shared
//! caches by (KB generation, schema fingerprint) so consecutive relations of
//! the same schema warm-start. Long-lived caches are bounded by an optional
//! entry budget, enforced per shard with a clock (second-chance) policy:
//! every hit sets a referenced bit, and an over-budget insert sweeps the
//! shard's ring, skipping recently referenced entries once and evicting the
//! first unreferenced one.

use crate::context::MatchContext;
use crate::graph::schema::{NodeType, SchemaNode};
use crate::repair::snapshot::SnapshotPayload;
use dr_kb::{FxHashMap, InstanceId, KbFootprint, Node, PredId};
use dr_obs::{Counter, MetricRegistry};
use parking_lot::RwLock;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

/// An edge signature: source node, predicate, target node.
pub type EdgeSig = (SchemaNode, PredId, SchemaNode);

/// A cached edge-connectivity answer plus the KB reads that produced it.
///
/// `probed` is the hit-attribution record: the instance from-candidates whose
/// outgoing `rel` edges were actually consulted — the prefix up to and
/// including the first connected one when `ok`, or every instance
/// from-candidate when `!ok`. A delta that does not touch any `(probed[i],
/// rel)` out-pair (nor either endpoint's candidate set) can neither flip `ok`
/// nor change which prefix a recomputation would probe, so the entry is
/// exactly as fresh as its footprint says.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeEntry {
    /// Whether some candidate pair is connected.
    pub ok: bool,
    /// Instance from-candidates whose out-edges were consulted.
    pub probed: Vec<InstanceId>,
}

/// Default shard count; a small power of two keeps the modulo a mask while
/// spreading writer contention well past typical thread counts.
const DEFAULT_SHARDS: usize = 16;

type NodeKey = (SchemaNode, String);
type EdgeKey = (EdgeSig, String, String);

/// Sizing knobs for a [`ValueCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueCacheConfig {
    /// Shard count (rounded up to a power of two; `0` = default 16). Size
    /// this to the worker count: more shards than workers means writers
    /// essentially never collide.
    pub shards: usize,
    /// Total entry budget across node and edge maps (`0` = unbounded). The
    /// budget is split evenly across shards; each shard evicts with a clock
    /// sweep once its slice is full.
    pub max_entries: usize,
}

impl Default for ValueCacheConfig {
    fn default() -> Self {
        Self {
            shards: DEFAULT_SHARDS,
            max_entries: 0,
        }
    }
}

impl ValueCacheConfig {
    /// A config whose shard count is sized to `threads` workers (at least
    /// the default, at most 256, next power of two of `4 × threads`).
    pub fn for_threads(threads: usize) -> Self {
        let shards = (threads.max(1) * 4)
            .next_power_of_two()
            .clamp(DEFAULT_SHARDS, 256);
        Self {
            shards,
            max_entries: 0,
        }
    }

    /// Returns the config with the given total entry budget.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries;
        self
    }

    fn normalized_shards(&self) -> usize {
        if self.shards == 0 {
            DEFAULT_SHARDS
        } else {
            self.shards.next_power_of_two()
        }
    }

    /// Per-shard entry cap for one of the two (node/edge) maps.
    fn per_shard_cap(&self) -> usize {
        if self.max_entries == 0 {
            0
        } else {
            // Two maps (nodes and edges) share the budget evenly.
            (self.max_entries / (2 * self.normalized_shards())).max(1)
        }
    }
}

/// Aggregated cache counters, surfaced through
/// [`RelationReport`](crate::repair::basic::RelationReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Node-candidate lookups answered from the cache.
    pub node_hits: u64,
    /// Node-candidate lookups that had to compute.
    pub node_misses: u64,
    /// Edge-connectivity lookups answered from the cache.
    pub edge_hits: u64,
    /// Edge-connectivity lookups that had to compute.
    pub edge_misses: u64,
    /// Entries evicted to stay under the configured budget.
    pub evictions: u64,
    /// Entries preloaded from a disk snapshot when the cache was created
    /// (warm start; `0` on caches that never touched a snapshot).
    pub snapshot_warm: u64,
    /// `1` when a snapshot was looked for but none was usable (missing,
    /// corrupt, or key-mismatched) — the cache started cold.
    pub snapshot_cold: u64,
}

impl CacheStats {
    /// Total lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.node_hits + self.edge_hits
    }

    /// Total lookups that computed fresh results.
    pub fn misses(&self) -> u64 {
        self.node_misses + self.edge_misses
    }

    /// Fraction of lookups answered from the cache (`0.0` when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Counter deltas since an `earlier` snapshot of the same cache. Used
    /// by repairers sharing a persistent (registry-owned) cache so one
    /// relation's report only covers its own lookups.
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            node_hits: self.node_hits.saturating_sub(earlier.node_hits),
            node_misses: self.node_misses.saturating_sub(earlier.node_misses),
            edge_hits: self.edge_hits.saturating_sub(earlier.edge_hits),
            edge_misses: self.edge_misses.saturating_sub(earlier.edge_misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            snapshot_warm: self.snapshot_warm.saturating_sub(earlier.snapshot_warm),
            snapshot_cold: self.snapshot_cold.saturating_sub(earlier.snapshot_cold),
        }
    }
}

impl std::ops::AddAssign for CacheStats {
    /// Counter-wise accumulation — used by experiment harnesses summing
    /// per-table reports into one row.
    fn add_assign(&mut self, rhs: Self) {
        self.node_hits += rhs.node_hits;
        self.node_misses += rhs.node_misses;
        self.edge_hits += rhs.edge_hits;
        self.edge_misses += rhs.edge_misses;
        self.evictions += rhs.evictions;
        self.snapshot_warm += rhs.snapshot_warm;
        self.snapshot_cold += rhs.snapshot_cold;
    }
}

/// Whether any candidate pair of `(from, to)` is connected by `rel` in the
/// KB. Shared by the per-tuple and relation-scoped caches.
pub(crate) fn edge_connected(
    ctx: &MatchContext<'_>,
    from_cands: &[Node],
    rel: PredId,
    to_cands: &[Node],
) -> bool {
    edge_probe(ctx, from_cands, rel, to_cands).0
}

/// [`edge_connected`] plus the probed-instance record an [`EdgeEntry`]
/// stores. Out-edge reads go through the context, so an attached
/// [`FootprintRecorder`](crate::context::FootprintRecorder) sees each probe.
pub(crate) fn edge_probe(
    ctx: &MatchContext<'_>,
    from_cands: &[Node],
    rel: PredId,
    to_cands: &[Node],
) -> (bool, Vec<InstanceId>) {
    let to_set: dr_kb::FxHashSet<Node> = to_cands.iter().copied().collect();
    let mut probed = Vec::new();
    for &f in from_cands {
        if let Node::Instance(i) = f {
            probed.push(i);
            if ctx.kb_objects(i, rel).iter().any(|o| to_set.contains(o)) {
                return (true, probed);
            }
        }
    }
    (false, probed)
}

/// Whether a delta footprint invalidates a dependency on `ty`'s extent.
fn ty_stale(fp: &KbFootprint, ty: NodeType) -> bool {
    match ty {
        NodeType::Class(c) => fp.touches_class(c),
        NodeType::Literal => fp.literals,
    }
}

/// Whether a delta footprint invalidates a cached edge entry.
fn edge_stale(fp: &KbFootprint, sig: &EdgeSig, entry: &EdgeEntry) -> bool {
    let (from, rel, to) = sig;
    ty_stale(fp, from.ty)
        || ty_stale(fp, to.ty)
        || entry
            .probed
            .iter()
            .any(|&f| fp.out_pairs.contains(&(f, *rel)))
}

/// One cached value plus its clock referenced bit. The bit is an atomic so
/// hits can set it under the shard's *read* lock.
struct ClockEntry<V> {
    value: V,
    referenced: AtomicBool,
}

impl<V> ClockEntry<V> {
    fn new(value: V) -> Self {
        Self {
            value,
            referenced: AtomicBool::new(false),
        }
    }
}

/// A bounded map shard with clock (second-chance) eviction.
struct ClockShard<K, V> {
    map: FxHashMap<K, ClockEntry<V>>,
    /// Insertion ring for the clock hand. Keys are pushed on insert and only
    /// leave through eviction, so `ring.len() == map.len()`.
    ring: VecDeque<K>,
    /// Entry cap (`0` = unbounded).
    cap: usize,
}

impl<K: Hash + Eq + Clone, V> ClockShard<K, V> {
    fn new(cap: usize) -> Self {
        Self {
            map: FxHashMap::default(),
            ring: VecDeque::new(),
            cap,
        }
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|e| {
            e.referenced.store(true, Relaxed);
            &e.value
        })
    }

    /// Inserts `value` under `key` unless present (first insert wins),
    /// returning a reference to the winning value and how many entries were
    /// evicted to make room.
    fn insert(&mut self, key: K, value: V) -> (&V, u64) {
        let mut evicted = 0;
        if self.cap != 0 && !self.map.contains_key(&key) {
            while self.map.len() >= self.cap {
                let Some(victim) = self.ring.pop_front() else {
                    break;
                };
                match self.map.get(&victim) {
                    Some(e) if e.referenced.swap(false, Relaxed) => {
                        // Second chance: recently hit, rotate to the back.
                        self.ring.push_back(victim);
                    }
                    Some(_) => {
                        self.map.remove(&victim);
                        evicted += 1;
                    }
                    // Unreachable while ring and map stay in sync; tolerate.
                    None => {}
                }
            }
        }
        let entry = match self.map.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                self.ring.push_back(key);
                v.insert(ClockEntry::new(value))
            }
        };
        (&entry.value, evicted)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Removes every entry for which `keep` returns `false`, keeping the
    /// clock ring in sync, and returns how many entries were removed.
    fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) -> u64 {
        let before = self.map.len();
        self.map.retain(|k, e| keep(k, &e.value));
        if self.map.len() != before {
            self.ring.retain(|k| self.map.contains_key(k));
        }
        (before - self.map.len()) as u64
    }

    /// Counts the entries a [`ClockShard::retain`] with the same predicate
    /// would remove, without removing them.
    fn count_matching(&self, mut stale: impl FnMut(&K, &V) -> bool) -> u64 {
        self.map.iter().filter(|(k, e)| stale(k, &e.value)).count() as u64
    }

    /// Emits up to `cap` entries (`0` = all), hottest first: entries whose
    /// clock bit is set (recently referenced) precede unreferenced ones, each
    /// group in ring (insertion) order. This is the same signal the eviction
    /// sweep uses, so a bounded snapshot keeps exactly the working set the
    /// clock would protect.
    fn export(&self, cap: usize, mut emit: impl FnMut(&K, &V)) {
        let mut cold: Vec<&K> = Vec::new();
        let mut emitted = 0usize;
        let full = |n: usize| cap != 0 && n >= cap;
        for k in &self.ring {
            if full(emitted) {
                return;
            }
            if let Some(e) = self.map.get(k) {
                if e.referenced.load(Relaxed) {
                    emit(k, &e.value);
                    emitted += 1;
                } else {
                    cold.push(k);
                }
            }
        }
        for k in cold {
            if full(emitted) {
                return;
            }
            if let Some(e) = self.map.get(k) {
                emit(k, &e.value);
                emitted += 1;
            }
        }
    }
}

/// A relation-scoped (or, via the registry, schema-scoped), thread-safe
/// element cache keyed by cell values.
pub struct ValueCache {
    nodes: Vec<RwLock<ClockShard<NodeKey, Arc<Vec<Node>>>>>,
    edges: Vec<RwLock<ClockShard<EdgeKey, EdgeEntry>>>,
    mask: usize,
    // Counters are `dr_obs::Counter` cells so an attached observability
    // registry can expose the *same* storage the report columns read —
    // `stats()` is a view, not a copy kept in sync by hand.
    node_hits: Counter,
    node_misses: Counter,
    edge_hits: Counter,
    edge_misses: Counter,
    evictions: Counter,
    snapshot_warm: Counter,
    snapshot_cold: Counter,
}

impl Default for ValueCache {
    fn default() -> Self {
        Self::new()
    }
}

fn hash_of<K: Hash>(key: &K) -> usize {
    let mut h = std::hash::DefaultHasher::new();
    key.hash(&mut h);
    h.finish() as usize
}

impl ValueCache {
    /// An empty, unbounded cache with the default shard count.
    pub fn new() -> Self {
        Self::with_config(ValueCacheConfig::default())
    }

    /// An empty cache with explicit sizing.
    pub fn with_config(config: ValueCacheConfig) -> Self {
        let shards = config.normalized_shards();
        let cap = config.per_shard_cap();
        Self {
            nodes: (0..shards)
                .map(|_| RwLock::new(ClockShard::new(cap)))
                .collect(),
            edges: (0..shards)
                .map(|_| RwLock::new(ClockShard::new(cap)))
                .collect(),
            mask: shards - 1,
            node_hits: Counter::new(),
            node_misses: Counter::new(),
            edge_hits: Counter::new(),
            edge_misses: Counter::new(),
            evictions: Counter::new(),
            snapshot_warm: Counter::new(),
            snapshot_cold: Counter::new(),
        }
    }

    /// Attaches this cache's counter cells to `metrics` under the
    /// `value_cache_*` metric names. Idempotent: repeated registration of
    /// the same cache adds nothing, and several caches registered under
    /// the same registry sum into one exposition line per metric.
    pub fn register_metrics(&self, metrics: &MetricRegistry) {
        metrics.register_counter("value_cache_node_hits_total", &[], &self.node_hits);
        metrics.register_counter("value_cache_node_misses_total", &[], &self.node_misses);
        metrics.register_counter("value_cache_edge_hits_total", &[], &self.edge_hits);
        metrics.register_counter("value_cache_edge_misses_total", &[], &self.edge_misses);
        metrics.register_counter("value_cache_evictions_total", &[], &self.evictions);
        metrics.register_counter("value_cache_snapshot_warm_total", &[], &self.snapshot_warm);
        metrics.register_counter("value_cache_snapshot_cold_total", &[], &self.snapshot_cold);
    }

    /// Number of shards (diagnostics).
    pub fn shard_count(&self) -> usize {
        self.mask + 1
    }

    /// Total live entries across both maps (counts, not bytes).
    pub fn len(&self) -> usize {
        self.nodes.iter().map(|s| s.read().len()).sum::<usize>()
            + self.edges.iter().map(|s| s.read().len()).sum::<usize>()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Candidates of `node` against `value`, memoized by `(node, value)`.
    pub fn candidates(
        &self,
        ctx: &MatchContext<'_>,
        node: &SchemaNode,
        value: &str,
    ) -> Arc<Vec<Node>> {
        self.candidates_with_outcome(ctx, node, value).0
    }

    /// Like [`ValueCache::candidates`], also reporting whether the lookup
    /// was answered from the cache (`true` = hit). Used by the per-tuple
    /// overlay to attribute hit/miss source levels in traces.
    pub fn candidates_with_outcome(
        &self,
        ctx: &MatchContext<'_>,
        node: &SchemaNode,
        value: &str,
    ) -> (Arc<Vec<Node>>, bool) {
        let key = (*node, value.to_owned());
        let shard = &self.nodes[hash_of(&key) & self.mask];
        if let Some(cands) = shard.read().get(&key).map(Arc::clone) {
            self.node_hits.inc();
            // A cached answer still *depends* on the KB region it was
            // computed from — record it so per-row footprints stay sound.
            if let Some(rec) = ctx.recorder() {
                rec.record_ty(node.ty);
            }
            return (cands, true);
        }
        self.node_misses.inc();
        // Compute outside the lock; a racing writer wastes work but stays
        // correct (the lookup is a pure function of the KB) — first insert
        // wins, everyone returns the same candidates.
        let cands = Arc::new(ctx.candidates(node.ty, node.sim, value));
        let mut guard = shard.write();
        let (winner, evicted) = guard.insert(key, cands);
        let winner = Arc::clone(winner);
        drop(guard);
        if evicted > 0 {
            self.evictions.add(evicted);
        }
        (winner, false)
    }

    /// Whether some candidate pair of `(from, to)` is connected by `rel`,
    /// memoized by `(edge signature, from-value, to-value)`.
    pub fn edge_ok(
        &self,
        ctx: &MatchContext<'_>,
        from: &SchemaNode,
        rel: PredId,
        to: &SchemaNode,
        from_value: &str,
        to_value: &str,
    ) -> bool {
        self.edge_ok_with_outcome(ctx, from, rel, to, from_value, to_value)
            .0
    }

    /// Like [`ValueCache::edge_ok`], also reporting whether the check was
    /// answered from the cache (`true` = hit).
    pub fn edge_ok_with_outcome(
        &self,
        ctx: &MatchContext<'_>,
        from: &SchemaNode,
        rel: PredId,
        to: &SchemaNode,
        from_value: &str,
        to_value: &str,
    ) -> (bool, bool) {
        let sig = (*from, rel, *to);
        let key = (sig, from_value.to_owned(), to_value.to_owned());
        let shard = &self.edges[hash_of(&key) & self.mask];
        {
            let guard = shard.read();
            if let Some(entry) = guard.get(&key) {
                self.edge_hits.inc();
                // Replay the entry's recorded reads into the row's
                // footprint: endpoint candidate sets plus every out-pair
                // the original computation probed.
                if let Some(rec) = ctx.recorder() {
                    rec.record_ty(from.ty);
                    rec.record_ty(to.ty);
                    for &f in &entry.probed {
                        rec.record_out_pair(f, rel);
                    }
                }
                return (entry.ok, true);
            }
        }
        self.edge_misses.inc();
        let from_cands = self.candidates(ctx, from, from_value);
        let to_cands = self.candidates(ctx, to, to_value);
        let (ok, probed) = edge_probe(ctx, &from_cands, rel, &to_cands);
        let (_, evicted) = shard.write().insert(key, EdgeEntry { ok, probed });
        if evicted > 0 {
            self.evictions.add(evicted);
        }
        (ok, false)
    }

    /// Removes every entry whose recorded KB reads intersect `fp` (the
    /// footprint of an applied [`dr_kb::KbDelta`]), returning how many
    /// entries were dropped. Everything else survives the delta.
    pub fn invalidate(&self, fp: &KbFootprint) -> u64 {
        if fp.is_empty() {
            return 0;
        }
        let mut removed = 0u64;
        for shard in &self.nodes {
            removed += shard.write().retain(|(sn, _), _| !ty_stale(fp, sn.ty));
        }
        for shard in &self.edges {
            removed += shard
                .write()
                .retain(|(sig, _, _), entry| !edge_stale(fp, sig, entry));
        }
        removed
    }

    /// Counts the entries [`ValueCache::invalidate`] would drop for `fp`,
    /// without dropping them — the staleness-soundness suites use this to
    /// assert that no stale entry survives an invalidation pass.
    pub fn count_stale(&self, fp: &KbFootprint) -> u64 {
        if fp.is_empty() {
            return 0;
        }
        let mut stale = 0u64;
        for shard in &self.nodes {
            stale += shard
                .read()
                .count_matching(|(sn, _), _| ty_stale(fp, sn.ty));
        }
        for shard in &self.edges {
            stale += shard
                .read()
                .count_matching(|(sig, _, _), entry| edge_stale(fp, sig, entry));
        }
        stale
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            node_hits: self.node_hits.get(),
            node_misses: self.node_misses.get(),
            edge_hits: self.edge_hits.get(),
            edge_misses: self.edge_misses.get(),
            evictions: self.evictions.get(),
            snapshot_warm: self.snapshot_warm.get(),
            snapshot_cold: self.snapshot_cold.get(),
        }
    }

    // ----- disk snapshots (DESIGN.md §4a, level 0 persistence) -----------

    /// Exports up to `max_entries` entries (`0` = everything) as a portable
    /// [`SnapshotPayload`], hottest first per shard. The budget is split the
    /// same way the live cache splits its own entry budget: evenly across
    /// shards, half to node entries and half to edge entries — so a bounded
    /// persist keeps the clock-protected working set of every shard.
    pub fn export_hottest(&self, max_entries: usize) -> SnapshotPayload {
        let shards = self.shard_count();
        let per_shard = if max_entries == 0 {
            0
        } else {
            (max_entries / (2 * shards)).max(1)
        };
        let mut payload = SnapshotPayload::default();
        for shard in &self.nodes {
            shard.read().export(per_shard, |(sn, value), cands| {
                payload.nodes.push((*sn, value.clone(), (**cands).clone()));
            });
        }
        for shard in &self.edges {
            shard.read().export(per_shard, |(sig, from, to), entry| {
                payload.edges.push((
                    *sig,
                    from.clone(),
                    to.clone(),
                    entry.ok,
                    entry.probed.clone(),
                ));
            });
        }
        payload
    }

    /// Seeds the cache from a decoded snapshot, returning how many entries
    /// were installed. First insert wins, exactly like live lookups, and the
    /// cache's own entry budget still applies (importing into a smaller
    /// cache simply evicts). Advances the `snapshot_warm` counter.
    pub fn import(&self, payload: &SnapshotPayload) -> usize {
        let mut imported = 0usize;
        let mut evicted = 0u64;
        for (sn, value, cands) in &payload.nodes {
            let key = (*sn, value.clone());
            let shard = &self.nodes[hash_of(&key) & self.mask];
            let (_, ev) = shard.write().insert(key, Arc::new(cands.clone()));
            evicted += ev;
            imported += 1;
        }
        for (sig, from, to, ok, probed) in &payload.edges {
            let key = (*sig, from.clone(), to.clone());
            let shard = &self.edges[hash_of(&key) & self.mask];
            let entry = EdgeEntry {
                ok: *ok,
                probed: probed.clone(),
            };
            let (_, ev) = shard.write().insert(key, entry);
            evicted += ev;
            imported += 1;
        }
        self.snapshot_warm.add(imported as u64);
        if evicted > 0 {
            self.evictions.add(evicted);
        }
        imported
    }

    /// Records that a snapshot was looked for and none was usable — the
    /// cache starts cold. Surfaces as `snapshot_cold` in [`CacheStats`].
    pub fn mark_snapshot_cold(&self) {
        self.snapshot_cold.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nobel_schema;
    use crate::graph::schema::NodeType;
    use dr_kb::fixtures::{names, nobel_mini_kb};
    use dr_simmatch::SimFn;

    fn city_node(kb: &dr_kb::KnowledgeBase) -> SchemaNode {
        SchemaNode::new(
            nobel_schema().attr_expect("City"),
            NodeType::Class(kb.class_named(names::CITY).unwrap()),
            SimFn::Equal,
        )
    }

    #[test]
    fn value_keyed_entries_survive_value_changes() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let cache = ValueCache::new();
        let node = city_node(&kb);
        let a = cache.candidates(&ctx, &node, "Haifa");
        assert_eq!(a.len(), 1);
        // A different value is a different key — no invalidation involved.
        let b = cache.candidates(&ctx, &node, "Karcag");
        assert_eq!(kb.node_value(b[0]), "Karcag");
        // Probing the first value again hits.
        let again = cache.candidates(&ctx, &node, "Haifa");
        assert!(Arc::ptr_eq(&a, &again));
        assert_eq!(cache.stats().node_hits, 1);
        assert_eq!(cache.stats().node_misses, 2);
    }

    #[test]
    fn edge_checks_memoize_per_value_pair() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let cache = ValueCache::new();
        let name = SchemaNode::new(
            schema.attr_expect("Name"),
            NodeType::Class(kb.class_named(names::LAUREATE).unwrap()),
            SimFn::Equal,
        );
        let inst = SchemaNode::new(
            schema.attr_expect("Institution"),
            NodeType::Class(kb.class_named(names::ORGANIZATION).unwrap()),
            SimFn::EditDistance(2),
        );
        let works_at = kb.pred_named(names::WORKS_AT).unwrap();
        assert!(cache.edge_ok(
            &ctx,
            &name,
            works_at,
            &inst,
            "Avram Hershko",
            "Israel Institute of Technology",
        ));
        assert!(cache.edge_ok(
            &ctx,
            &name,
            works_at,
            &inst,
            "Avram Hershko",
            "Israel Institute of Technology",
        ));
        let stats = cache.stats();
        assert_eq!((stats.edge_hits, stats.edge_misses), (1, 1));
        // The edge miss pulled both endpoint candidate sets into the cache.
        assert_eq!(stats.node_misses, 2);
    }

    #[test]
    fn shared_across_threads() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let cache = ValueCache::new();
        let node = city_node(&kb);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(cache.candidates(&ctx, &node, "Haifa").len(), 1);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.node_hits + stats.node_misses, 32);
        // At least one lookup computed, and most were hits.
        assert!(stats.node_misses >= 1);
        assert!(stats.node_hits >= 32 - 4);
    }

    #[test]
    fn hit_rate_is_well_defined() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        let stats = CacheStats {
            node_hits: 3,
            node_misses: 1,
            ..Default::default()
        };
        assert_eq!(stats.hit_rate(), 0.75);
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let earlier = CacheStats {
            node_hits: 5,
            node_misses: 2,
            edge_hits: 1,
            edge_misses: 1,
            evictions: 3,
            snapshot_warm: 10,
            snapshot_cold: 1,
        };
        let later = CacheStats {
            node_hits: 9,
            node_misses: 2,
            edge_hits: 4,
            edge_misses: 2,
            evictions: 3,
            snapshot_warm: 10,
            snapshot_cold: 1,
        };
        let d = later.delta_since(&earlier);
        assert_eq!(
            d,
            CacheStats {
                node_hits: 4,
                node_misses: 0,
                edge_hits: 3,
                edge_misses: 1,
                evictions: 0,
                snapshot_warm: 0,
                snapshot_cold: 0,
            }
        );
    }

    #[test]
    fn config_sizes_shards_to_workers() {
        assert_eq!(ValueCacheConfig::for_threads(1).normalized_shards(), 16);
        assert_eq!(ValueCacheConfig::for_threads(8).normalized_shards(), 32);
        assert_eq!(ValueCacheConfig::for_threads(100).normalized_shards(), 256);
        let cache = ValueCache::with_config(ValueCacheConfig::for_threads(8));
        assert_eq!(cache.shard_count(), 32);
        assert!(cache.is_empty());
    }

    /// Filling one shard-slice past its cap advances the eviction counter
    /// and keeps the live entry count bounded.
    #[test]
    fn eviction_counters_advance_past_budget() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        // One shard, tiny budget: per-map cap = max_entries / 2 = 4.
        let cache = ValueCache::with_config(ValueCacheConfig {
            shards: 1,
            max_entries: 8,
        });
        let node = city_node(&kb);
        for i in 0..64 {
            let _ = cache.candidates(&ctx, &node, &format!("no-such-city-{i}"));
        }
        let stats = cache.stats();
        assert_eq!(stats.node_misses, 64);
        assert!(
            stats.evictions >= 60,
            "64 distinct keys through a 4-entry shard must evict: {stats:?}"
        );
        assert!(cache.len() <= 4, "live entries stay under the cap");
    }

    /// Clock's second chance protects a hot working set: with a repeated
    /// small workload the hit rate never regresses as lookups accumulate.
    #[test]
    fn hit_rate_monotone_on_repeated_workload() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let cache = ValueCache::with_config(ValueCacheConfig {
            shards: 1,
            max_entries: 8, // per-map cap 4: fits the 2-value working set
        });
        let node = city_node(&kb);
        let working_set = ["Haifa", "Karcag"];
        let mut last_rate = 0.0;
        for round in 0..32 {
            for v in working_set {
                let _ = cache.candidates(&ctx, &node, v);
            }
            let rate = cache.stats().hit_rate();
            assert!(
                rate >= last_rate,
                "hit rate regressed in round {round}: {rate} < {last_rate}"
            );
            last_rate = rate;
        }
        // The steady state is all-hits after the two cold misses.
        assert_eq!(cache.stats().node_misses, 2);
        assert!(last_rate > 0.9);
    }

    /// Export → import into a fresh cache turns every exported key into a
    /// hit, and the importer's counters say how it was warmed.
    #[test]
    fn export_import_roundtrip_warms_a_fresh_cache() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let donor = ValueCache::new();
        let node = city_node(&kb);
        let a = donor.candidates(&ctx, &node, "Haifa");
        let b = donor.candidates(&ctx, &node, "Karcag");
        let payload = donor.export_hottest(0);
        assert_eq!(payload.nodes.len(), 2);

        let fresh = ValueCache::new();
        assert_eq!(fresh.import(&payload), 2);
        let x = fresh.candidates(&ctx, &node, "Haifa");
        let y = fresh.candidates(&ctx, &node, "Karcag");
        assert_eq!(*x, *a);
        assert_eq!(*y, *b);
        let stats = fresh.stats();
        assert_eq!(stats.node_hits, 2, "imported entries answer as hits");
        assert_eq!(stats.node_misses, 0);
        assert_eq!(stats.snapshot_warm, 2);
        assert_eq!(stats.snapshot_cold, 0);
    }

    /// A bounded export keeps the referenced (clock-protected) entries.
    #[test]
    fn bounded_export_prefers_referenced_entries() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let cache = ValueCache::with_config(ValueCacheConfig {
            shards: 1,
            max_entries: 0,
        });
        let node = city_node(&kb);
        for v in ["Haifa", "Karcag", "Ithaca"] {
            let _ = cache.candidates(&ctx, &node, v);
        }
        // Touch Karcag so it is the only referenced entry.
        let _ = cache.candidates(&ctx, &node, "Karcag");
        // cap 2 → per-shard cap max(2 / (2 shards·2 maps), 1) = 1.
        let payload = cache.export_hottest(2);
        assert_eq!(payload.nodes.len(), 1);
        assert_eq!(payload.nodes[0].1, "Karcag");
    }

    #[test]
    fn mark_snapshot_cold_sets_the_counter() {
        let cache = ValueCache::new();
        cache.mark_snapshot_cold();
        assert_eq!(cache.stats().snapshot_cold, 1);
        assert_eq!(cache.stats().snapshot_warm, 0);
    }

    /// A footprint that touches the class a node entry depends on drops
    /// exactly that entry; an unrelated footprint drops nothing.
    #[test]
    fn invalidate_drops_only_intersecting_entries() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let cache = ValueCache::new();
        let node = city_node(&kb);
        let _ = cache.candidates(&ctx, &node, "Haifa");
        assert_eq!(cache.len(), 1);

        let mut other = KbFootprint::new();
        other
            .classes
            .insert(kb.class_named(names::COUNTRY).unwrap());
        assert_eq!(cache.count_stale(&other), 0);
        assert_eq!(cache.invalidate(&other), 0);
        assert_eq!(cache.len(), 1, "unrelated delta leaves the entry warm");

        let mut hit = KbFootprint::new();
        hit.classes.insert(kb.class_named(names::CITY).unwrap());
        assert_eq!(cache.count_stale(&hit), 1);
        assert_eq!(cache.invalidate(&hit), 1);
        assert!(cache.is_empty());
        // The dropped entry recomputes as a miss on the next probe.
        let _ = cache.candidates(&ctx, &node, "Haifa");
        assert_eq!(cache.stats().node_misses, 2);
    }

    /// Edge entries go stale when a delta touches an out-pair they probed,
    /// even if neither endpoint's candidate set changed.
    #[test]
    fn edge_entries_invalidate_on_probed_out_pairs() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let cache = ValueCache::new();
        let name = SchemaNode::new(
            schema.attr_expect("Name"),
            NodeType::Class(kb.class_named(names::LAUREATE).unwrap()),
            SimFn::Equal,
        );
        let inst = SchemaNode::new(
            schema.attr_expect("Institution"),
            NodeType::Class(kb.class_named(names::ORGANIZATION).unwrap()),
            SimFn::EditDistance(2),
        );
        let works_at = kb.pred_named(names::WORKS_AT).unwrap();
        assert!(cache.edge_ok(
            &ctx,
            &name,
            works_at,
            &inst,
            "Avram Hershko",
            "Israel Institute of Technology",
        ));
        let hershko = kb.instances_labeled("Avram Hershko")[0];
        let mut fp = KbFootprint::new();
        fp.out_pairs.insert((hershko, works_at));
        // Only the edge entry probed (hershko, worksAt); the two node
        // entries depend on class extents, which this delta leaves alone.
        assert_eq!(cache.count_stale(&fp), 1);
        assert_eq!(cache.invalidate(&fp), 1);
        assert_eq!(cache.len(), 2);
    }

    /// Cache hits replay the entry's recorded reads into an attached
    /// footprint recorder, so per-row footprints stay sound on warm paths.
    #[test]
    fn hits_record_footprints_like_misses() {
        let kb = nobel_mini_kb();
        let base = MatchContext::new(&kb);
        let cache = ValueCache::new();
        let node = city_node(&kb);
        // Warm the entry without a recorder attached.
        let _ = cache.candidates(&base, &node, "Haifa");
        let rec = Arc::new(crate::context::FootprintRecorder::new());
        let ctx = base.fork().with_recorder(Arc::clone(&rec));
        let (_, was_hit) = cache.candidates_with_outcome(&ctx, &node, "Haifa");
        assert!(was_hit);
        let fp = rec.take();
        assert!(fp.touches_class(kb.class_named(names::CITY).unwrap()));
    }

    /// A recently referenced entry survives an eviction sweep (second
    /// chance), while an unreferenced one is the victim.
    #[test]
    fn referenced_entries_survive_sweeps() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let cache = ValueCache::with_config(ValueCacheConfig {
            shards: 1,
            max_entries: 4, // per-map cap 2
        });
        let node = city_node(&kb);
        let _ = cache.candidates(&ctx, &node, "Haifa");
        let _ = cache.candidates(&ctx, &node, "Karcag");
        // Touch Haifa so its referenced bit is set, then overflow the shard.
        let _ = cache.candidates(&ctx, &node, "Haifa");
        let _ = cache.candidates(&ctx, &node, "Ithaca");
        // Haifa still answers from cache; Karcag was the clock victim.
        let before = cache.stats();
        let _ = cache.candidates(&ctx, &node, "Haifa");
        assert_eq!(cache.stats().node_hits, before.node_hits + 1);
    }
}
