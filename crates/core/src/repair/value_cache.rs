//! Relation-scoped concurrent element cache.
//!
//! The per-tuple [`ElementCache`](crate::repair::cache::ElementCache) shares
//! element checks *within* one tuple; on real relations the same values
//! recur across thousands of rows (every laureate row holds "Nobel Prize in
//! Chemistry"), so the same KB lookups are recomputed per row. The
//! `ValueCache` memoizes them once per *value*: node candidates are keyed by
//! `(schema-node signature, cell value)` and edge checks by `(edge
//! signature, from-value, to-value)`.
//!
//! Because keys include the cell value — not just the column — entries are
//! pure functions of the immutable KB and never go stale: repairing a cell
//! simply probes a different key. That makes the cache safely shareable
//! across tuples and across threads; concurrency is a fixed array of shards,
//! each a [`parking_lot::RwLock`]-guarded map, so readers never contend and
//! writers only lock one shard.

use crate::context::MatchContext;
use crate::graph::schema::SchemaNode;
use dr_kb::{FxHashMap, Node, PredId};
use parking_lot::RwLock;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// An edge signature: source node, predicate, target node.
pub type EdgeSig = (SchemaNode, PredId, SchemaNode);

/// Shard count; a small power of two keeps the modulo a mask while spreading
/// writer contention well past typical thread counts.
const SHARDS: usize = 16;

type NodeKey = (SchemaNode, String);
type EdgeKey = (EdgeSig, String, String);

/// Aggregated cache counters, surfaced through
/// [`RelationReport`](crate::repair::basic::RelationReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Node-candidate lookups answered from the cache.
    pub node_hits: u64,
    /// Node-candidate lookups that had to compute.
    pub node_misses: u64,
    /// Edge-connectivity lookups answered from the cache.
    pub edge_hits: u64,
    /// Edge-connectivity lookups that had to compute.
    pub edge_misses: u64,
}

impl CacheStats {
    /// Total lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.node_hits + self.edge_hits
    }

    /// Total lookups that computed fresh results.
    pub fn misses(&self) -> u64 {
        self.node_misses + self.edge_misses
    }

    /// Fraction of lookups answered from the cache (`0.0` when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// Whether any candidate pair of `(from, to)` is connected by `rel` in the
/// KB. Shared by the per-tuple and relation-scoped caches.
pub(crate) fn edge_connected(
    ctx: &MatchContext<'_>,
    from_cands: &[Node],
    rel: PredId,
    to_cands: &[Node],
) -> bool {
    let kb = ctx.kb();
    let to_set: dr_kb::FxHashSet<Node> = to_cands.iter().copied().collect();
    from_cands.iter().any(|&f| match f {
        Node::Instance(i) => kb.objects(i, rel).iter().any(|o| to_set.contains(o)),
        Node::Literal(_) => false,
    })
}

/// A relation-scoped, thread-safe element cache keyed by cell values.
pub struct ValueCache {
    nodes: [RwLock<FxHashMap<NodeKey, Arc<Vec<Node>>>>; SHARDS],
    edges: [RwLock<FxHashMap<EdgeKey, bool>>; SHARDS],
    node_hits: AtomicU64,
    node_misses: AtomicU64,
    edge_hits: AtomicU64,
    edge_misses: AtomicU64,
}

impl Default for ValueCache {
    fn default() -> Self {
        Self::new()
    }
}

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = std::hash::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

impl ValueCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            nodes: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            edges: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            node_hits: AtomicU64::new(0),
            node_misses: AtomicU64::new(0),
            edge_hits: AtomicU64::new(0),
            edge_misses: AtomicU64::new(0),
        }
    }

    /// Candidates of `node` against `value`, memoized by `(node, value)`.
    pub fn candidates(
        &self,
        ctx: &MatchContext<'_>,
        node: &SchemaNode,
        value: &str,
    ) -> Arc<Vec<Node>> {
        let key = (*node, value.to_owned());
        let shard = &self.nodes[shard_of(&key)];
        if let Some(cands) = shard.read().get(&key).map(Arc::clone) {
            self.node_hits.fetch_add(1, Relaxed);
            return cands;
        }
        self.node_misses.fetch_add(1, Relaxed);
        // Compute outside the lock; a racing writer wastes work but stays
        // correct (the lookup is a pure function of the KB) — first insert
        // wins, everyone returns the same candidates.
        let cands = Arc::new(ctx.candidates(node.ty, node.sim, value));
        Arc::clone(shard.write().entry(key).or_insert(cands))
    }

    /// Whether some candidate pair of `(from, to)` is connected by `rel`,
    /// memoized by `(edge signature, from-value, to-value)`.
    pub fn edge_ok(
        &self,
        ctx: &MatchContext<'_>,
        from: &SchemaNode,
        rel: PredId,
        to: &SchemaNode,
        from_value: &str,
        to_value: &str,
    ) -> bool {
        let sig = (*from, rel, *to);
        let key = (sig, from_value.to_owned(), to_value.to_owned());
        let shard = &self.edges[shard_of(&key)];
        if let Some(&ok) = shard.read().get(&key) {
            self.edge_hits.fetch_add(1, Relaxed);
            return ok;
        }
        self.edge_misses.fetch_add(1, Relaxed);
        let from_cands = self.candidates(ctx, from, from_value);
        let to_cands = self.candidates(ctx, to, to_value);
        let ok = edge_connected(ctx, &from_cands, rel, &to_cands);
        shard.write().entry(key).or_insert(ok);
        ok
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            node_hits: self.node_hits.load(Relaxed),
            node_misses: self.node_misses.load(Relaxed),
            edge_hits: self.edge_hits.load(Relaxed),
            edge_misses: self.edge_misses.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nobel_schema;
    use crate::graph::schema::NodeType;
    use dr_kb::fixtures::{names, nobel_mini_kb};
    use dr_simmatch::SimFn;

    fn city_node(kb: &dr_kb::KnowledgeBase) -> SchemaNode {
        SchemaNode::new(
            nobel_schema().attr_expect("City"),
            NodeType::Class(kb.class_named(names::CITY).unwrap()),
            SimFn::Equal,
        )
    }

    #[test]
    fn value_keyed_entries_survive_value_changes() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let cache = ValueCache::new();
        let node = city_node(&kb);
        let a = cache.candidates(&ctx, &node, "Haifa");
        assert_eq!(a.len(), 1);
        // A different value is a different key — no invalidation involved.
        let b = cache.candidates(&ctx, &node, "Karcag");
        assert_eq!(kb.node_value(b[0]), "Karcag");
        // Probing the first value again hits.
        let again = cache.candidates(&ctx, &node, "Haifa");
        assert!(Arc::ptr_eq(&a, &again));
        assert_eq!(cache.stats().node_hits, 1);
        assert_eq!(cache.stats().node_misses, 2);
    }

    #[test]
    fn edge_checks_memoize_per_value_pair() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let cache = ValueCache::new();
        let name = SchemaNode::new(
            schema.attr_expect("Name"),
            NodeType::Class(kb.class_named(names::LAUREATE).unwrap()),
            SimFn::Equal,
        );
        let inst = SchemaNode::new(
            schema.attr_expect("Institution"),
            NodeType::Class(kb.class_named(names::ORGANIZATION).unwrap()),
            SimFn::EditDistance(2),
        );
        let works_at = kb.pred_named(names::WORKS_AT).unwrap();
        assert!(cache.edge_ok(
            &ctx,
            &name,
            works_at,
            &inst,
            "Avram Hershko",
            "Israel Institute of Technology",
        ));
        assert!(cache.edge_ok(
            &ctx,
            &name,
            works_at,
            &inst,
            "Avram Hershko",
            "Israel Institute of Technology",
        ));
        let stats = cache.stats();
        assert_eq!((stats.edge_hits, stats.edge_misses), (1, 1));
        // The edge miss pulled both endpoint candidate sets into the cache.
        assert_eq!(stats.node_misses, 2);
    }

    #[test]
    fn shared_across_threads() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let cache = ValueCache::new();
        let node = city_node(&kb);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(cache.candidates(&ctx, &node, "Haifa").len(), 1);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.node_hits + stats.node_misses, 32);
        // At least one lookup computed, and most were hits.
        assert!(stats.node_misses >= 1);
        assert!(stats.node_hits >= 32 - 4);
    }

    #[test]
    fn hit_rate_is_well_defined() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        let stats = CacheStats {
            node_hits: 3,
            node_misses: 1,
            ..Default::default()
        };
        assert_eq!(stats.hit_rate(), 0.75);
    }
}
