//! Parallel relation repair.
//!
//! The paper's scalability argument (§V summary) is that "repairing one
//! tuple is irrelevant to any other tuple": tuples share nothing mutable —
//! only the immutable KB, the [`MatchContext`] indexes (prewarmed up front
//! so workers never stall on an index build), and a relation-scoped
//! [`ValueCache`] whose value-keyed entries are pure functions of the KB.
//!
//! Scheduling is work-stealing by atomic counter: every worker claims the
//! next unclaimed row (or, with batch claiming enabled, the next `k` rows)
//! with a `fetch_add`, so a worker that lands on cheap rows simply claims
//! more of them — no fixed partitioning, no stragglers pinned to an
//! expensive chunk. Per-tuple reports are written into row-indexed slots,
//! so the stitched report is in row order and the whole result is
//! bit-identical to the sequential [`FastRepairer`] regardless of claim
//! granularity.
//!
//! Rows whose worker panicked are re-run under a configurable
//! [`RetryPolicy`] (DESIGN.md §4c/§9), on fresh worker threads spawned
//! after each pass drains: transient faults heal to the fault-free result,
//! deterministic ones report [`TupleOutcome::Failed`] once the attempt cap
//! is reached, and every retry attempt lands in
//! [`ResilienceReport::retried`](crate::repair::resilience::ResilienceReport)
//! and the `retry_attempts_total{attempt}` counter. The default policy is
//! the historical behavior — one retry, no backoff.

use crate::context::{FootprintRecorder, MatchContext};
use crate::repair::basic::{PhaseTimings, RelationReport, TupleReport};
use crate::repair::cache::ElementCache;
use crate::repair::fast::FastRepairer;
use crate::repair::resilience::TupleOutcome;
use crate::repair::retry::RetryPolicy;
use crate::rule::apply::ApplyOptions;
use crate::rule::DetectiveRule;
use dr_kb::KbFootprint;
use dr_obs::{Histogram, SpanCtx, WindowHistogram};
use dr_relation::{Relation, Tuple};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Parallel repair configuration.
#[derive(Debug, Clone, Default)]
pub struct ParallelOptions {
    /// Rule-application options.
    pub apply: ApplyOptions,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Claim `batch_size` rows per `fetch_add` instead of one. Cuts claim
    /// counter traffic on narrow relations, where per-row repair work is
    /// small relative to a contended atomic RMW; measured by the
    /// `ablation_batch_claim` bench, hence a flag rather than the default.
    pub batch_claim: bool,
    /// Rows per claim when `batch_claim` is set (`0` = auto-tune from the
    /// relation width: narrow relations take bigger batches).
    pub batch_size: usize,
    /// Retry/backoff policy for rows whose worker panicked. The default is
    /// the historical one-shot retry with no backoff.
    pub retry: RetryPolicy,
    /// Deterministic per-row faults to inject (tests/chaos harnesses only;
    /// see [`FaultPlan`](crate::repair::fault::FaultPlan)). `None` injects
    /// nothing. With a plan set, the scheduler path runs even for one
    /// thread or tiny relations, so injection behaves identically at every
    /// thread count.
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<std::sync::Arc<crate::repair::fault::FaultPlan>>,
}

impl ParallelOptions {
    /// The rows-per-claim this configuration yields for `relation`.
    ///
    /// Auto-tuning is by relation width: per-claim work scales with arity
    /// (each column can host rule nodes), so narrow relations amortize the
    /// claim counter over more rows while wide ones stay near
    /// single-row claiming to preserve stealing granularity.
    pub fn effective_batch(&self, relation: &Relation) -> usize {
        if !self.batch_claim {
            return 1;
        }
        if self.batch_size != 0 {
            return self.batch_size.max(1);
        }
        (32 / relation.schema().arity().max(1)).clamp(1, 8)
    }
}

/// Repairs `relation` with `threads` workers. Equivalent to
/// [`FastRepairer::repair_relation`], row for row.
pub fn parallel_repair(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    relation: &mut Relation,
    opts: &ParallelOptions,
) -> RelationReport {
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    };
    let repairer = FastRepairer::new(rules);
    #[allow(unused_mut)] // mut only with fault-injection
    let mut sequential = threads <= 1 || relation.len() < 2;
    #[cfg(feature = "fault-injection")]
    {
        // A fault plan must be honored even where the sequential fallback
        // would apply, so faulted runs behave identically at every thread
        // count (the recovery proptests sweep threads = 1, 2, 4, 8).
        sequential = sequential && opts.fault_plan.is_none();
    }
    if sequential {
        return repairer.repair_relation(ctx, relation, &opts.apply);
    }

    let obs = ctx.obs();
    let tracer = obs.and_then(|o| o.tracer());
    // The live span surface rides beside the JSONL tracer: phase spans
    // (prewarm/repair) under the request's span, per-row spans under the
    // repair phase. Absent a traced request, `live` is `None` and every
    // hook below is one branch.
    let live = ctx.span().cloned();
    if let Some(t) = tracer {
        crate::obs::trace_relation_start(t, "parallel", relation.len(), rules.len());
        crate::obs::trace_phase(t, "prewarm", true);
    }
    let prewarm_span = live.as_ref().map(|s| s.child("prewarm"));
    let prewarm_start = Instant::now();
    match &prewarm_span {
        // Prewarm under a forked context carrying the prewarm span, so
        // the index builds it triggers nest under it in the waterfall.
        Some(sp) => ctx.fork().with_span(sp.ctx()).prewarm(rules),
        None => ctx.prewarm(rules),
    }
    let prewarm = prewarm_start.elapsed();
    if let Some(sp) = prewarm_span {
        sp.finish();
    }
    if let Some(t) = tracer {
        crate::obs::trace_phase(t, "prewarm", false);
        crate::obs::trace_phase(t, "repair", true);
    }
    let tuple_hist = obs.map(|o| {
        (
            o.metrics().histogram("repair_tuple_seconds", &[]),
            o.metrics()
                .window_histogram("repair_tuple_seconds_window", &[]),
        )
    });

    let batch = opts.effective_batch(relation);
    let shared = ctx.value_cache_for(relation.schema());
    let before = shared.stats();
    // One "repair" phase span covers the scheduler passes and retries;
    // row spans parent onto it through `row_span`.
    let repair_span = live.as_ref().map(|s| s.child("repair"));
    let row_span = repair_span.as_ref().map(|s| s.ctx());
    let repair_start = Instant::now();
    // Each row index is claimed exactly once via `fetch_add` (in batches of
    // `batch` consecutive rows), so the per-row mutexes are never contended
    // — they exist to hand a `&mut Tuple` through a `Sync` type. A claimed
    // row's report lands in its row-indexed slot, keeping the stitched
    // report in row order whatever the claim granularity.
    let rows: Vec<Mutex<&mut Tuple>> = relation.tuples_mut().iter_mut().map(Mutex::new).collect();
    let slots: Vec<Mutex<Option<(TupleReport, KbFootprint)>>> =
        (0..rows.len()).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(rows.len());
    // Per-worker claim tallies: `attempts` counts every `fetch_add` on the
    // claim counter (including the final, failing one that ends the loop),
    // `claimed` counts rows actually won. Cheap plain atomics either way;
    // exported as `scheduler_*` metrics when observability is attached.
    let claimed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let attempts: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (claimed, attempts) = (&claimed, &attempts);
            let (rows, slots, next) = (&rows, &slots, &next);
            let (repairer, shared, tuple_hist) = (&repairer, &shared, &tuple_hist);
            let row_span = &row_span;
            scope.spawn(move || loop {
                attempts[w].fetch_add(1, Ordering::Relaxed);
                let start = next.fetch_add(batch, Ordering::Relaxed);
                if start >= rows.len() {
                    break;
                }
                let end = (start + batch).min(rows.len());
                claimed[w].fetch_add((end - start) as u64, Ordering::Relaxed);
                // `row` indexes two slices at once (`slots` and `rows`), so
                // a range loop is clearer than a zipped iterator chain.
                #[allow(clippy::needless_range_loop)]
                for row in start..end {
                    *slots[row].lock() = Some(repair_row(
                        repairer,
                        ctx,
                        opts,
                        shared,
                        rows,
                        row,
                        row_span.as_ref(),
                        tuple_hist.as_ref(),
                    ));
                }
            });
        }
    });

    // Retry policy (DESIGN.md §4c/§9): rows still `Failed` after a pass
    // are re-claimed by fresh worker threads, up to `opts.retry`'s total
    // attempt cap, with the policy's deterministic exponential backoff
    // slept by the claiming worker just before the re-run. A transient
    // fault (a poisoned thread-local, an injected `PanicOnce`) heals to
    // the same report a fault-free run produces — tuples are independent,
    // so running a row late changes nothing — while a deterministic panic
    // fails on every attempt and keeps its `Failed` outcome once the cap
    // is reached. The fault plan is triggered on every attempt too, so
    // injected faults decide for themselves whether they are transient. A
    // genuine mid-repair panic leaves at worst a prefix of atomic rule
    // applications; the retry continues the chase from that state toward
    // the same fixpoint.
    let mut retried = 0usize;
    let mut retry_attempt_counts: Vec<(u32, usize)> = Vec::new();
    for attempt in 2..=opts.retry.attempts() {
        let retry_rows: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| {
                matches!(
                    &*slot.lock(),
                    Some((
                        TupleReport {
                            outcome: TupleOutcome::Failed { .. },
                            ..
                        },
                        _,
                    ))
                )
            })
            .map(|(row, _)| row)
            .collect();
        if retry_rows.is_empty() {
            break;
        }
        retried += retry_rows.len();
        retry_attempt_counts.push((attempt, retry_rows.len()));
        if let Some(t) = tracer {
            for &row in &retry_rows {
                crate::obs::trace_retry(t, row);
            }
        }
        let retry_next = AtomicUsize::new(0);
        let policy = &opts.retry;
        std::thread::scope(|scope| {
            // `retry_rows.len() <= rows.len()`, so retry worker indexes stay
            // within the per-worker tally arrays sized above.
            for w in 0..threads.min(retry_rows.len()) {
                let (claimed, attempts) = (&claimed, &attempts);
                let (rows, slots) = (&rows, &slots);
                let (retry_rows, retry_next) = (&retry_rows, &retry_next);
                let (repairer, shared, tuple_hist) = (&repairer, &shared, &tuple_hist);
                let row_span = &row_span;
                scope.spawn(move || loop {
                    attempts[w].fetch_add(1, Ordering::Relaxed);
                    let i = retry_next.fetch_add(1, Ordering::Relaxed);
                    let Some(&row) = retry_rows.get(i) else { break };
                    claimed[w].fetch_add(1, Ordering::Relaxed);
                    let backoff = policy.backoff(row, attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    *slots[row].lock() = Some(repair_row(
                        repairer,
                        ctx,
                        opts,
                        shared,
                        rows,
                        row,
                        row_span.as_ref(),
                        tuple_hist.as_ref(),
                    ));
                });
            }
        });
    }

    if let Some(mut sp) = repair_span {
        sp.attr_num("rows", rows.len() as u64);
        sp.attr_num("workers", workers as u64);
        sp.attr_num("retried", retried as u64);
        sp.attr_num("value_cache_entries", shared.len() as u64);
        sp.finish();
    }

    let mut tuples = Vec::with_capacity(slots.len());
    let mut footprints = Vec::with_capacity(slots.len());
    for (row, slot) in slots.into_iter().enumerate() {
        // Every claimed row writes its slot (even a panicked one —
        // `repair_row` converts the panic to a `Failed` report), so
        // an empty slot can only mean a scheduler hole. Surface it
        // as a failed row instead of panicking the whole stitch.
        let (tuple_report, fp) = slot.into_inner().unwrap_or_else(|| {
            (
                TupleReport {
                    outcome: TupleOutcome::Failed {
                        message: format!("row {row} was never claimed by a worker"),
                    },
                    ..TupleReport::default()
                },
                KbFootprint::default(),
            )
        });
        tuples.push(tuple_report);
        footprints.push(fp);
    }
    let mut report = RelationReport {
        tuples,
        footprints,
        cache: shared.stats().delta_since(&before),
        timing: PhaseTimings {
            prewarm,
            repair: repair_start.elapsed(),
        },
        ..RelationReport::default()
    };
    report.resilience.retried = retried;
    report.tally_resilience();
    if let Some(obs) = obs {
        let m = obs.metrics();
        m.gauge("scheduler_workers", &[]).set(workers as u64);
        m.gauge("scheduler_batch_rows", &[]).set(batch as u64);
        for w in 0..workers {
            let label = w.to_string();
            let labels = [("worker", label.as_str())];
            m.counter("scheduler_rows_claimed_total", &labels)
                .add(claimed[w].load(Ordering::Relaxed));
            m.counter("scheduler_steal_attempts_total", &labels)
                .add(attempts[w].load(Ordering::Relaxed));
        }
        // Per-attempt retry counts; summed over attempts this equals
        // `ResilienceReport::retried` (and `repair_retries_total`).
        for (attempt, n) in &retry_attempt_counts {
            let label = attempt.to_string();
            m.counter("retry_attempts_total", &[("attempt", label.as_str())])
                .add(*n as u64);
        }
        crate::obs::record_relation(obs, "parallel", &report);
    }
    if let Some(t) = tracer {
        crate::obs::trace_phase(t, "repair", false);
        crate::obs::trace_relation_end(t, relation.len());
    }
    report
}

/// Re-repairs only the rows a KB delta could have affected, splicing every
/// other row's tuple and report straight from the prior run.
///
/// A row is selected when its recorded [`KbFootprint`] in `prior`
/// intersects `delta_fp`, or when its prior outcome never settled
/// (non-`Completed` rows carry no trustworthy result, so they always
/// re-run). Unselected rows copy their repaired tuple verbatim from
/// `prior_repaired`: tuples are mutually independent and the footprint
/// over-approximates every KB read the row made, so a row whose reads the
/// delta did not touch reproduces its prior result exactly — the
/// delta≡rebuild differential suite holds this to byte equality.
///
/// `relation` must be the same dirty input (same rows, same order) the
/// prior run started from. If the shapes disagree — row count mismatch, or
/// `prior` carries no per-row footprints — the call degrades to a full
/// [`parallel_repair`], reporting `selected_rows = Some(len)`.
pub fn parallel_repair_selective(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    relation: &mut Relation,
    opts: &ParallelOptions,
    prior: &RelationReport,
    prior_repaired: &Relation,
    delta_fp: &KbFootprint,
) -> RelationReport {
    let len = relation.len();
    if prior.tuples.len() != len || prior.footprints.len() != len || prior_repaired.len() != len {
        let mut report = parallel_repair(ctx, rules, relation, opts);
        report.selected_rows = Some(len);
        return report;
    }
    let selected: Vec<usize> = (0..len)
        .filter(|&row| {
            !prior.tuples[row].outcome.is_completed() || prior.footprints[row].intersects(delta_fp)
        })
        .collect();

    // Repair the selected rows as their own sub-relation through the full
    // parallel path (which itself falls back to the sequential repairer
    // for tiny selections) — tuple independence makes the sub-run
    // indistinguishable from those rows' share of a full re-repair.
    let mut sub = Relation::new(Arc::clone(relation.schema()));
    for &row in &selected {
        sub.push(relation.tuple(row).clone());
    }
    let sub_report = parallel_repair(ctx, rules, &mut sub, opts);

    let mut report = RelationReport {
        cache: sub_report.cache,
        timing: sub_report.timing,
        selected_rows: Some(selected.len()),
        ..RelationReport::default()
    };
    report.resilience.retried = sub_report.resilience.retried;
    let mut sub_row = 0usize;
    for row in 0..len {
        if sub_row < selected.len() && selected[sub_row] == row {
            *relation.tuple_mut(row) = sub.tuple(sub_row).clone();
            report.tuples.push(sub_report.tuples[sub_row].clone());
            report.footprints.push(
                sub_report
                    .footprints
                    .get(sub_row)
                    .cloned()
                    .unwrap_or_default(),
            );
            sub_row += 1;
        } else {
            *relation.tuple_mut(row) = prior_repaired.tuple(row).clone();
            report.tuples.push(prior.tuples[row].clone());
            report.footprints.push(prior.footprints[row].clone());
        }
    }
    report.tally_resilience();
    if let Some(obs) = ctx.obs() {
        obs.metrics()
            .counter("rerepair_selected_rows", &[])
            .add(selected.len() as u64);
    }
    report
}

/// Repairs one claimed row with panic isolation: a panic anywhere in the
/// row's repair (injected or genuine) is caught at this boundary and
/// converted into a [`TupleOutcome::Failed`] report carrying the payload
/// message, so the other rows — and the shared caches, whose locks recover
/// from poisoning (see `vendor/parking_lot`) — continue unharmed.
#[allow(clippy::too_many_arguments)] // scheduler plumbing, all call-local
fn repair_row(
    repairer: &FastRepairer<'_>,
    ctx: &MatchContext<'_>,
    opts: &ParallelOptions,
    shared: &crate::repair::value_cache::ValueCache,
    rows: &[Mutex<&mut Tuple>],
    row: usize,
    span: Option<&SpanCtx>,
    hist: Option<&(Histogram, WindowHistogram)>,
) -> (TupleReport, KbFootprint) {
    // Every KB read the row makes lands in its own recorder, so the
    // stitched report carries a per-row footprint for selective re-repair
    // (a panicked attempt keeps whatever was recorded before the unwind —
    // conservative, since failed rows are always re-selected anyway).
    let recorder = Arc::new(FootprintRecorder::new());
    // Speculative captures record rows retroactively, above a duration
    // floor only — see the matching branch in `FastRepairer`.
    let detailed = span.is_some_and(|s| s.detailed());
    let row_span = if detailed {
        span.map(|s| {
            let mut sp = s.child("row");
            sp.attr_num("row", row as u64);
            sp
        })
    } else {
        None
    };
    let spec_row_start = match (span, detailed) {
        (Some(_), false) => Some(Instant::now()),
        _ => None,
    };
    let row_ctx = ctx
        .fork()
        .with_recorder(Arc::clone(&recorder))
        .with_span_opt(row_span.as_ref().map(|s| s.ctx()));
    // The closure captures `&mut Tuple` behind the row mutex, which is not
    // `UnwindSafe` by type; it is unwind-safe by construction: a fault is
    // injected *before* the tuple is touched, and a genuine mid-repair
    // panic leaves at worst a tuple whose completed rule applications stand
    // (each application mutates only after its enumeration finished) — and
    // the row is reported `Failed`, so consumers know not to trust it.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let meter = ctx.budget().meter();
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &opts.fault_plan {
            plan.trigger(row, &meter);
        }
        let mut tuple = rows[row].lock();
        let mut cache = ElementCache::with_shared(shared);
        let started = hist.map(|_| Instant::now());
        let report =
            repairer.repair_tuple_with(&row_ctx, &mut tuple, &opts.apply, &mut cache, &meter);
        // A `Failed` attempt must not contribute a latency sample: the row
        // will be retried, and recording here *and* on the retry would
        // double-count the tuple — `repair_tuple_seconds_count` is defined
        // as exactly completed + degraded, one sample per settled tuple.
        // (Panicked attempts skip this by unwinding; the guard covers any
        // `Failed` outcome produced without a panic.)
        if let (Some((hist, window)), Some(started)) = (hist, started) {
            if !matches!(report.outcome, TupleOutcome::Failed { .. }) {
                let elapsed = started.elapsed();
                hist.record(elapsed);
                window.record(elapsed);
            }
        }
        (report, cache.level_stats())
    }));
    let (report, cache_stats) = match result {
        Ok((report, stats)) => (report, Some(stats)),
        Err(payload) => (
            TupleReport {
                outcome: TupleOutcome::Failed {
                    message: panic_message(payload.as_ref()),
                },
                ..TupleReport::default()
            },
            None,
        ),
    };
    if let Some(mut sp) = row_span {
        sp.attr_static("outcome", crate::obs::outcome_label(&report.outcome));
        sp.attr_num("steps", report.steps.len() as u64);
        if let Some(stats) = &cache_stats {
            sp.attr_num("cache_hits", (stats.local_hits + stats.shared_hits) as u64);
            sp.attr_num(
                "cache_misses",
                (stats.local_misses + stats.shared_misses) as u64,
            );
        }
        sp.finish();
    } else if let (Some(parent), Some(started)) = (span, spec_row_start) {
        let took = started.elapsed();
        if took >= crate::obs::SPECULATIVE_ROW_FLOOR {
            parent.record_completed("row", started, took);
        }
    }
    if let Some(obs) = ctx.obs() {
        crate::obs::trace_tuple(obs, row, &report, cache_stats);
    }
    (report, recorder.take())
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure4_rules, table1_dirty};
    use crate::repair::fast::fast_repair;
    use dr_kb::fixtures::nobel_mini_kb;

    #[test]
    fn parallel_matches_sequential_on_table1() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);

        let mut sequential = table1_dirty();
        let seq_report = fast_repair(&ctx, &rules, &mut sequential, &ApplyOptions::default());

        for threads in [1, 2, 4] {
            let mut parallel = table1_dirty();
            let par_report = parallel_repair(
                &ctx,
                &rules,
                &mut parallel,
                &ParallelOptions {
                    threads,
                    ..Default::default()
                },
            );
            for cell in sequential.cell_refs() {
                assert_eq!(
                    sequential.value(cell),
                    parallel.value(cell),
                    "{threads} threads diverged at {cell:?}"
                );
                assert_eq!(
                    sequential.tuple(cell.row).is_positive(cell.attr),
                    parallel.tuple(cell.row).is_positive(cell.attr),
                );
            }
            assert_eq!(
                seq_report.total_applications(),
                par_report.total_applications()
            );
            // Reports line up row for row.
            assert_eq!(seq_report.tuples.len(), par_report.tuples.len());
            for (a, b) in seq_report.tuples.iter().zip(&par_report.tuples) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn empty_relation_is_fine() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = dr_relation::Relation::new(crate::fixtures::nobel_schema());
        let report = parallel_repair(&ctx, &rules, &mut relation, &ParallelOptions::default());
        assert!(report.tuples.is_empty());
    }

    #[test]
    fn single_row_uses_sequential_path() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = dr_relation::Relation::new(crate::fixtures::nobel_schema());
        relation.push(table1_dirty().tuple(0).clone());
        let report = parallel_repair(&ctx, &rules, &mut relation, &ParallelOptions::default());
        assert_eq!(report.tuples.len(), 1);
        assert_eq!(report.tuples[0].steps.len(), 4);
    }

    /// Duplicated rows make the shared `ValueCache` pay off across tuples:
    /// the second copy of a row resolves its element checks from the cache.
    #[test]
    fn duplicate_rows_hit_the_shared_cache() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = dr_relation::Relation::new(crate::fixtures::nobel_schema());
        let base = table1_dirty();
        for _ in 0..4 {
            for t in base.tuples() {
                relation.push(t.clone());
            }
        }
        let report = parallel_repair(
            &ctx,
            &rules,
            &mut relation,
            &ParallelOptions {
                threads: 4,
                ..Default::default()
            },
        );
        assert!(
            report.cache.hits() > 0,
            "duplicate rows must produce cross-tuple cache hits: {:?}",
            report.cache
        );
        // The four duplicated copies converge on the same repaired values.
        let n = table1_dirty().len();
        for cell in relation.cell_refs() {
            let base = dr_relation::CellRef {
                row: cell.row % n,
                attr: cell.attr,
            };
            assert_eq!(relation.value(cell), relation.value(base));
        }
        // Prewarm happened before the repair loop: every index the rule set
        // needs exists, and the timing phases are populated.
        assert!(ctx.index_count() > 0);
        assert!(report.timing.repair > std::time::Duration::ZERO);
    }

    /// Batch claiming must be invisible in results: k=1 and k=8 claiming
    /// agree on every tuple report and on the aggregated totals the
    /// `PhaseTimings`/cache counters are derived over.
    #[test]
    fn batch_claiming_agrees_with_single_row_claiming() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = dr_relation::Relation::new(crate::fixtures::nobel_schema());
        let base = table1_dirty();
        for _ in 0..6 {
            for t in base.tuples() {
                relation.push(t.clone());
            }
        }

        let run = |batch_claim: bool, batch_size: usize| {
            let mut working = relation.clone();
            let report = parallel_repair(
                &ctx,
                &rules,
                &mut working,
                &ParallelOptions {
                    threads: 4,
                    batch_claim,
                    batch_size,
                    ..Default::default()
                },
            );
            (working, report)
        };

        let (rel_k1, rep_k1) = run(false, 0);
        for (label, batch_claim, batch_size) in [
            ("k=8", true, 8),
            ("k=auto", true, 0),
            ("k>rows", true, 1000),
        ] {
            let (rel_k, rep_k) = run(batch_claim, batch_size);
            for cell in rel_k1.cell_refs() {
                assert_eq!(
                    rel_k1.value(cell),
                    rel_k.value(cell),
                    "{label} diverged at {cell:?}"
                );
            }
            assert_eq!(rep_k1.tuples, rep_k.tuples, "{label}: reports differ");
            assert_eq!(
                rep_k1.total_applications(),
                rep_k.total_applications(),
                "{label}: totals differ"
            );
            assert_eq!(rep_k1.total_changes(), rep_k.total_changes());
            // Timing phases are populated either way (values are wall-clock
            // and machine-dependent, but the aggregation shape is fixed).
            assert!(rep_k.timing.repair > std::time::Duration::ZERO);
        }
    }

    /// Auto-tuned batch size scales inversely with relation width and stays
    /// within [1, 8].
    #[test]
    fn batch_size_auto_tunes_from_width() {
        let narrow = dr_relation::Relation::new(dr_relation::Schema::new("N", &["A", "B"]));
        let nobel = dr_relation::Relation::new(crate::fixtures::nobel_schema()); // 6 cols
        let wide_schema: Vec<String> = (0..40).map(|i| format!("C{i}")).collect();
        let wide_refs: Vec<&str> = wide_schema.iter().map(String::as_str).collect();
        let wide = dr_relation::Relation::new(dr_relation::Schema::new("W", &wide_refs));

        let off = ParallelOptions::default();
        assert_eq!(off.effective_batch(&nobel), 1, "flag off: single-row");

        let auto = ParallelOptions {
            batch_claim: true,
            ..Default::default()
        };
        assert_eq!(auto.effective_batch(&narrow), 8);
        assert_eq!(auto.effective_batch(&nobel), 5);
        assert_eq!(auto.effective_batch(&wide), 1);

        let fixed = ParallelOptions {
            batch_claim: true,
            batch_size: 3,
            ..Default::default()
        };
        assert_eq!(fixed.effective_batch(&wide), 3);
    }

    /// A delta that touches nothing any row read selects zero rows: the
    /// selective path splices every tuple and report from the prior run
    /// byte for byte.
    #[test]
    fn selective_with_disjoint_delta_reuses_every_row() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let opts = ParallelOptions {
            threads: 4,
            ..Default::default()
        };

        let mut prior_repaired = table1_dirty();
        let prior = parallel_repair(&ctx, &rules, &mut prior_repaired, &opts);
        assert_eq!(prior.footprints.len(), prior_repaired.len());
        assert!(
            prior.footprints.iter().any(|fp| !fp.is_empty()),
            "table1 rows read the KB, so footprints must be recorded"
        );

        let mut again = table1_dirty();
        let report = parallel_repair_selective(
            &ctx,
            &rules,
            &mut again,
            &opts,
            &prior,
            &prior_repaired,
            &KbFootprint::default(),
        );
        assert_eq!(report.selected_rows, Some(0));
        assert_eq!(report.tuples, prior.tuples);
        for cell in again.cell_refs() {
            assert_eq!(again.value(cell), prior_repaired.value(cell));
            assert_eq!(
                again.tuple(cell.row).is_positive(cell.attr),
                prior_repaired.tuple(cell.row).is_positive(cell.attr),
            );
        }
    }

    /// A taxonomy-wide delta (`all_classes`) intersects every class-reading
    /// row: the selective result still matches a full re-repair exactly.
    #[test]
    fn selective_with_global_delta_matches_full_rerepair() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let opts = ParallelOptions {
            threads: 4,
            ..Default::default()
        };

        let mut prior_repaired = table1_dirty();
        let prior = parallel_repair(&ctx, &rules, &mut prior_repaired, &opts);

        let mut full = table1_dirty();
        let full_report = parallel_repair(&ctx, &rules, &mut full, &opts);

        let delta_fp = KbFootprint {
            all_classes: true,
            ..Default::default()
        };
        let mut selective = table1_dirty();
        let report = parallel_repair_selective(
            &ctx,
            &rules,
            &mut selective,
            &opts,
            &prior,
            &prior_repaired,
            &delta_fp,
        );
        let selected = report.selected_rows.expect("selective sets the count");
        assert!(selected > 0, "class-reading rows must be re-selected");
        assert_eq!(report.tuples, full_report.tuples);
        for cell in full.cell_refs() {
            assert_eq!(selective.value(cell), full.value(cell));
        }
    }

    /// A prior report with no footprints (e.g. from a build predating the
    /// incremental subsystem) degrades to a full re-repair.
    #[test]
    fn selective_without_footprints_falls_back_to_full() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let opts = ParallelOptions::default();

        let mut prior_repaired = table1_dirty();
        let mut prior = parallel_repair(&ctx, &rules, &mut prior_repaired, &opts);
        prior.footprints.clear();

        let mut again = table1_dirty();
        let report = parallel_repair_selective(
            &ctx,
            &rules,
            &mut again,
            &opts,
            &prior,
            &prior_repaired,
            &KbFootprint::default(),
        );
        assert_eq!(report.selected_rows, Some(again.len()));
        assert_eq!(report.tuples, prior.tuples);
    }

    /// More workers than rows: the claim counter just runs out early.
    #[test]
    fn more_threads_than_rows() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = table1_dirty();
        let report = parallel_repair(
            &ctx,
            &rules,
            &mut relation,
            &ParallelOptions {
                threads: 64,
                ..Default::default()
            },
        );
        assert_eq!(report.tuples.len(), table1_dirty().len());
        assert!(report.tuples.iter().all(|t| !t.steps.is_empty()));
    }
}
