//! Parallel relation repair.
//!
//! The paper's scalability argument (§V summary) is that "repairing one
//! tuple is irrelevant to any other tuple": tuples share nothing but the
//! immutable KB and indexes. This module exploits that with scoped threads —
//! rows are split into contiguous chunks, each chunk repaired independently
//! with its own element cache, and the per-tuple reports stitched back in
//! row order. Results are bit-identical to the sequential
//! [`FastRepairer`].

use crate::context::MatchContext;
use crate::repair::basic::{RelationReport, TupleReport};
use crate::repair::fast::FastRepairer;
use crate::rule::apply::ApplyOptions;
use crate::rule::DetectiveRule;
use dr_relation::{Relation, Tuple};

/// Parallel repair configuration.
#[derive(Debug, Clone, Default)]
pub struct ParallelOptions {
    /// Rule-application options.
    pub apply: ApplyOptions,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

/// Repairs `relation` with `threads` workers. Equivalent to
/// [`FastRepairer::repair_relation`], row for row.
pub fn parallel_repair(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    relation: &mut Relation,
    opts: &ParallelOptions,
) -> RelationReport {
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    };
    let repairer = FastRepairer::new(rules);
    if threads <= 1 || relation.len() < 2 {
        return repairer.repair_relation(ctx, relation, &opts.apply);
    }

    // Pre-warm the shared (lock-guarded) match indexes so workers don't
    // race to build them: repair one tuple up front.
    let mut reports: Vec<TupleReport> = Vec::with_capacity(relation.len());
    {
        let first = relation.tuple_mut(0);
        reports.push(repairer.repair_tuple(ctx, first, &opts.apply));
    }

    let rest = &mut relation.tuples_mut()[1..];
    let chunk_size = rest.len().div_ceil(threads).max(1);
    let mut chunk_reports: Vec<Vec<TupleReport>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = rest
            .chunks_mut(chunk_size)
            .map(|chunk: &mut [Tuple]| {
                let repairer = &repairer;
                let apply = &opts.apply;
                scope.spawn(move |_| {
                    chunk
                        .iter_mut()
                        .map(|tuple| repairer.repair_tuple(ctx, tuple, apply))
                        .collect::<Vec<TupleReport>>()
                })
            })
            .collect();
        for handle in handles {
            chunk_reports.push(handle.join().expect("worker panicked"));
        }
    })
    .expect("crossbeam scope");

    for chunk in chunk_reports {
        reports.extend(chunk);
    }
    RelationReport { tuples: reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure4_rules, table1_dirty};
    use crate::repair::fast::fast_repair;
    use dr_kb::fixtures::nobel_mini_kb;

    #[test]
    fn parallel_matches_sequential_on_table1() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);

        let mut sequential = table1_dirty();
        let seq_report = fast_repair(&ctx, &rules, &mut sequential, &ApplyOptions::default());

        for threads in [1, 2, 4] {
            let mut parallel = table1_dirty();
            let par_report = parallel_repair(
                &ctx,
                &rules,
                &mut parallel,
                &ParallelOptions {
                    threads,
                    ..Default::default()
                },
            );
            for cell in sequential.cell_refs() {
                assert_eq!(
                    sequential.value(cell),
                    parallel.value(cell),
                    "{threads} threads diverged at {cell:?}"
                );
                assert_eq!(
                    sequential.tuple(cell.row).is_positive(cell.attr),
                    parallel.tuple(cell.row).is_positive(cell.attr),
                );
            }
            assert_eq!(
                seq_report.total_applications(),
                par_report.total_applications()
            );
            // Reports line up row for row.
            assert_eq!(seq_report.tuples.len(), par_report.tuples.len());
            for (a, b) in seq_report.tuples.iter().zip(&par_report.tuples) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn empty_relation_is_fine() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = dr_relation::Relation::new(crate::fixtures::nobel_schema());
        let report = parallel_repair(&ctx, &rules, &mut relation, &ParallelOptions::default());
        assert!(report.tuples.is_empty());
    }

    #[test]
    fn single_row_uses_sequential_path() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = dr_relation::Relation::new(crate::fixtures::nobel_schema());
        relation.push(table1_dirty().tuple(0).clone());
        let report = parallel_repair(&ctx, &rules, &mut relation, &ParallelOptions::default());
        assert_eq!(report.tuples.len(), 1);
        assert_eq!(report.tuples[0].steps.len(), 4);
    }
}
