//! Parallel relation repair.
//!
//! The paper's scalability argument (§V summary) is that "repairing one
//! tuple is irrelevant to any other tuple": tuples share nothing mutable —
//! only the immutable KB, the [`MatchContext`] indexes (prewarmed up front
//! so workers never stall on an index build), and a relation-scoped
//! [`ValueCache`] whose value-keyed entries are pure functions of the KB.
//!
//! Scheduling is work-stealing by atomic counter: every worker claims the
//! next unclaimed row with a `fetch_add`, so a worker that lands on cheap
//! rows simply claims more of them — no fixed partitioning, no stragglers
//! pinned to an expensive chunk. Per-tuple reports are written into
//! row-indexed slots, so the stitched report is in row order and the whole
//! result is bit-identical to the sequential [`FastRepairer`].

use crate::context::MatchContext;
use crate::repair::basic::{PhaseTimings, RelationReport, TupleReport};
use crate::repair::fast::FastRepairer;
use crate::repair::value_cache::ValueCache;
use crate::rule::apply::ApplyOptions;
use crate::rule::DetectiveRule;
use dr_relation::{Relation, Tuple};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Parallel repair configuration.
#[derive(Debug, Clone, Default)]
pub struct ParallelOptions {
    /// Rule-application options.
    pub apply: ApplyOptions,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

/// Repairs `relation` with `threads` workers. Equivalent to
/// [`FastRepairer::repair_relation`], row for row.
pub fn parallel_repair(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    relation: &mut Relation,
    opts: &ParallelOptions,
) -> RelationReport {
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    };
    let repairer = FastRepairer::new(rules);
    if threads <= 1 || relation.len() < 2 {
        return repairer.repair_relation(ctx, relation, &opts.apply);
    }

    let prewarm_start = Instant::now();
    ctx.prewarm(rules);
    let prewarm = prewarm_start.elapsed();

    let shared = ValueCache::new();
    let repair_start = Instant::now();
    // Each row index is claimed exactly once via `fetch_add`, so the
    // per-row mutexes are never contended — they exist to hand a `&mut
    // Tuple` through a `Sync` type. A claimed row's report lands in its
    // row-indexed slot, keeping the stitched report in row order.
    let rows: Vec<Mutex<&mut Tuple>> = relation.tuples_mut().iter_mut().map(Mutex::new).collect();
    let slots: Vec<Mutex<Option<TupleReport>>> =
        (0..rows.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(rows.len()) {
            scope.spawn(|| loop {
                let row = next.fetch_add(1, Ordering::Relaxed);
                if row >= rows.len() {
                    break;
                }
                let mut tuple = rows[row].lock();
                let report = repairer.repair_tuple_shared(ctx, &mut tuple, &opts.apply, &shared);
                *slots[row].lock() = Some(report);
            });
        }
    });

    RelationReport {
        tuples: slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every row claimed and repaired"))
            .collect(),
        cache: shared.stats(),
        timing: PhaseTimings {
            prewarm,
            repair: repair_start.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure4_rules, table1_dirty};
    use crate::repair::fast::fast_repair;
    use dr_kb::fixtures::nobel_mini_kb;

    #[test]
    fn parallel_matches_sequential_on_table1() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);

        let mut sequential = table1_dirty();
        let seq_report = fast_repair(&ctx, &rules, &mut sequential, &ApplyOptions::default());

        for threads in [1, 2, 4] {
            let mut parallel = table1_dirty();
            let par_report = parallel_repair(
                &ctx,
                &rules,
                &mut parallel,
                &ParallelOptions {
                    threads,
                    ..Default::default()
                },
            );
            for cell in sequential.cell_refs() {
                assert_eq!(
                    sequential.value(cell),
                    parallel.value(cell),
                    "{threads} threads diverged at {cell:?}"
                );
                assert_eq!(
                    sequential.tuple(cell.row).is_positive(cell.attr),
                    parallel.tuple(cell.row).is_positive(cell.attr),
                );
            }
            assert_eq!(
                seq_report.total_applications(),
                par_report.total_applications()
            );
            // Reports line up row for row.
            assert_eq!(seq_report.tuples.len(), par_report.tuples.len());
            for (a, b) in seq_report.tuples.iter().zip(&par_report.tuples) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn empty_relation_is_fine() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = dr_relation::Relation::new(crate::fixtures::nobel_schema());
        let report = parallel_repair(&ctx, &rules, &mut relation, &ParallelOptions::default());
        assert!(report.tuples.is_empty());
    }

    #[test]
    fn single_row_uses_sequential_path() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = dr_relation::Relation::new(crate::fixtures::nobel_schema());
        relation.push(table1_dirty().tuple(0).clone());
        let report = parallel_repair(&ctx, &rules, &mut relation, &ParallelOptions::default());
        assert_eq!(report.tuples.len(), 1);
        assert_eq!(report.tuples[0].steps.len(), 4);
    }

    /// Duplicated rows make the shared `ValueCache` pay off across tuples:
    /// the second copy of a row resolves its element checks from the cache.
    #[test]
    fn duplicate_rows_hit_the_shared_cache() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = dr_relation::Relation::new(crate::fixtures::nobel_schema());
        let base = table1_dirty();
        for _ in 0..4 {
            for t in base.tuples() {
                relation.push(t.clone());
            }
        }
        let report = parallel_repair(
            &ctx,
            &rules,
            &mut relation,
            &ParallelOptions {
                threads: 4,
                ..Default::default()
            },
        );
        assert!(
            report.cache.hits() > 0,
            "duplicate rows must produce cross-tuple cache hits: {:?}",
            report.cache
        );
        // The four duplicated copies converge on the same repaired values.
        let n = table1_dirty().len();
        for cell in relation.cell_refs() {
            let base = dr_relation::CellRef {
                row: cell.row % n,
                attr: cell.attr,
            };
            assert_eq!(relation.value(cell), relation.value(base));
        }
        // Prewarm happened before the repair loop: every index the rule set
        // needs exists, and the timing phases are populated.
        assert!(ctx.index_count() > 0);
        assert!(report.timing.repair > std::time::Duration::ZERO);
    }

    /// More workers than rows: the claim counter just runs out early.
    #[test]
    fn more_threads_than_rows() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut relation = table1_dirty();
        let report = parallel_repair(
            &ctx,
            &rules,
            &mut relation,
            &ParallelOptions {
                threads: 64,
                ..Default::default()
            },
        );
        assert_eq!(report.tuples.len(), table1_dirty().len());
        assert!(report.tuples.iter().all(|t| !t.steps.is_empty()));
    }
}
