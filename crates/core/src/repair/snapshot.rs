//! On-disk snapshots of [`ValueCache`](crate::repair::value_cache::ValueCache)
//! contents — the persistence half of the caching hierarchy's level 0
//! (DESIGN.md §4a).
//!
//! A snapshot file holds a bounded set of `(schema-node, value) → candidates`
//! and `(edge-sig, value, value) → connected` entries, keyed on disk by
//! `(KB content hash, schema fingerprint)`. The content hash
//! ([`dr_kb::content_hash`]) pins down the KB's exact id assignment, so the
//! raw [`Node`] ids inside the entries are meaningful to any process whose KB
//! hashes identically; any other process simply never opens the file.
//!
//! ## Format (version 2, little-endian)
//!
//! ```text
//! magic            [u8; 4] = b"DRVC"
//! version          u32
//! kb content hash  u64
//! schema fp        u64
//! node count       u32
//! edge count       u32
//! node entries     { SchemaNode, value: str, candidates: [Node] } × n
//! edge entries     { SchemaNode, PredId, SchemaNode, from: str, to: str,
//!                    ok: u8, probed: u32 count + [u32 instance id] } × m
//! checksum         u64  (FxHash of every preceding byte)
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes; `SchemaNode` is
//! `{col: u32, ty: tag u8 + u32, sim: tag u8 + u32}`; `Node` is a tag byte
//! plus a `u32` id. Version 2 added the per-edge `probed` instance list —
//! the hit-attribution record footprint-based invalidation needs
//! ([`EdgeEntry`](crate::repair::value_cache::EdgeEntry)); version-1 files
//! are rejected as [`SnapshotError::BadVersion`] and degrade to a cold
//! start like any other unusable snapshot.
//!
//! ## Safety model
//!
//! Snapshots are an *optimization*, never a source of truth. Every load
//! failure — missing file, short read, bad magic, unknown version, checksum
//! mismatch, malformed entry, out-of-bounds id — degrades to a cold cache
//! with a [`SnapshotError`] diagnostic; no partial state is ever installed.
//! Writes go through a temp file in the same directory followed by an atomic
//! rename, so readers never observe a half-written snapshot.

use crate::graph::schema::{NodeType, SchemaNode};
use crate::repair::value_cache::EdgeSig;
use dr_kb::hash::FxHasher;
use dr_kb::{ClassId, InstanceId, KbRef, LiteralId, Node, PredId};
use dr_relation::{AttrId, Schema};
use dr_simmatch::SimFn;
use std::fmt;
use std::hash::Hasher;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// File magic: "DR value cache".
pub const MAGIC: [u8; 4] = *b"DRVC";

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 2;

/// File extension used for snapshot files.
pub const EXTENSION: &str = "drsnap";

/// Disk identity of a snapshot: unlike the in-process
/// [`CacheKey`](crate::repair::registry::CacheKey), the KB half is the
/// process-independent content hash, not the generation id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapshotKey {
    /// The KB's deterministic content hash ([`KbRef::content_hash`]) the
    /// entries were computed against.
    pub kb_content_hash: u64,
    /// [`Schema::fingerprint`] of the relation schema.
    pub schema_fingerprint: u64,
}

impl SnapshotKey {
    /// The disk identity for `(kb, schema)` — either KB backend.
    pub fn for_pair<'a>(kb: impl Into<KbRef<'a>>, schema: &Schema) -> Self {
        Self {
            kb_content_hash: kb.into().content_hash(),
            schema_fingerprint: schema.fingerprint(),
        }
    }

    /// The file this key lives at under `dir`.
    pub fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(format!(
            "vc-{:016x}-{:016x}.{EXTENSION}",
            self.kb_content_hash, self.schema_fingerprint
        ))
    }
}

/// The portable contents of one value cache: an explicit list of node and
/// edge entries, hottest first (the export order decides what survives a
/// bounded persist).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotPayload {
    /// `(schema node, cell value) → candidate nodes`.
    pub nodes: Vec<(SchemaNode, String, Vec<Node>)>,
    /// `(edge signature, from value, to value) → (connected, probed
    /// instances)` — the probed list is the entry's invalidation footprint.
    pub edges: Vec<(EdgeSig, String, String, bool, Vec<InstanceId>)>,
}

impl SnapshotPayload {
    /// Total entries across both maps.
    pub fn len(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }

    /// Whether the payload holds no entries.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// Checks every id embedded in the payload against the live `(kb,
    /// schema)` pair. A snapshot that passes the key check can still be a
    /// hash collision or a forged file; ids out of range would index out of
    /// bounds much later, so reject the whole payload up front.
    pub fn validate<'a>(
        &self,
        kb: impl Into<KbRef<'a>>,
        schema: &Schema,
    ) -> Result<(), SnapshotError> {
        let kb = kb.into();
        let attrs = schema.arity();
        let node_ok = |n: &Node| match *n {
            Node::Instance(i) => i.index() < kb.num_instances(),
            Node::Literal(l) => l.index() < kb.num_literals(),
        };
        let schema_node_ok = |sn: &SchemaNode| {
            sn.col.index() < attrs
                && match sn.ty {
                    NodeType::Class(c) => c.index() < kb.num_classes(),
                    NodeType::Literal => true,
                }
        };
        for (sn, _, cands) in &self.nodes {
            if !schema_node_ok(sn) || !cands.iter().all(node_ok) {
                return Err(SnapshotError::Malformed("node entry id out of bounds"));
            }
        }
        for ((from, rel, to), _, _, _, probed) in &self.edges {
            if !schema_node_ok(from) || !schema_node_ok(to) || rel.index() >= kb.num_preds() {
                return Err(SnapshotError::Malformed("edge entry id out of bounds"));
            }
            if !probed.iter().all(|i| i.index() < kb.num_instances()) {
                return Err(SnapshotError::Malformed("probed instance id out of bounds"));
            }
        }
        Ok(())
    }
}

/// Why a snapshot failed to load (or save). Every variant degrades to a cold
/// cache; none aborts a repair.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error (including "no snapshot yet" — see
    /// [`SnapshotError::is_absence`]).
    Io(io::Error),
    /// File shorter than the fixed header + checksum.
    TooShort(usize),
    /// Leading magic bytes are not `DRVC`.
    BadMagic([u8; 4]),
    /// Written by an unknown (newer or older) format version.
    BadVersion(u32),
    /// Stored checksum does not match the bytes — torn write or bit rot.
    ChecksumMismatch {
        /// Checksum recorded in the file trailer.
        stored: u64,
        /// Checksum recomputed over the preceding bytes.
        computed: u64,
    },
    /// Header key does not match the `(kb, schema)` the caller asked for.
    KeyMismatch {
        /// Key recorded in the file header.
        found: SnapshotKey,
        /// Key the caller expected.
        expected: SnapshotKey,
    },
    /// Body ended mid-entry or an entry failed structural validation.
    Malformed(&'static str),
}

impl SnapshotError {
    /// Whether this is the benign "no snapshot file exists" case — a routine
    /// cold start rather than a corruption event worth a diagnostic.
    pub fn is_absence(&self) -> bool {
        matches!(self, SnapshotError::Io(e) if e.kind() == io::ErrorKind::NotFound)
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o: {e}"),
            SnapshotError::TooShort(n) => write!(f, "file too short ({n} bytes)"),
            SnapshotError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch (stored {stored:#x}, computed {computed:#x})"
                )
            }
            SnapshotError::KeyMismatch { found, expected } => write!(
                f,
                "key mismatch (found kb={:#x} schema={:#x}, expected kb={:#x} schema={:#x})",
                found.kb_content_hash,
                found.schema_fingerprint,
                expected.kb_content_hash,
                expected.schema_fingerprint
            ),
            SnapshotError::Malformed(what) => write!(f, "malformed body: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

// ----- encoding -----------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_sim(buf: &mut Vec<u8>, sim: SimFn) {
    let (tag, arg) = match sim {
        SimFn::Equal => (0u8, 0u32),
        SimFn::EditDistance(k) => (1, k),
        SimFn::Jaccard(pm) => (2, u32::from(pm)),
        SimFn::Cosine(pm) => (3, u32::from(pm)),
    };
    buf.push(tag);
    put_u32(buf, arg);
}

fn put_schema_node(buf: &mut Vec<u8>, sn: &SchemaNode) {
    put_u32(buf, sn.col.index() as u32);
    match sn.ty {
        NodeType::Literal => {
            buf.push(0);
            put_u32(buf, 0);
        }
        NodeType::Class(c) => {
            buf.push(1);
            put_u32(buf, c.index() as u32);
        }
    }
    put_sim(buf, sn.sim);
}

fn put_node(buf: &mut Vec<u8>, n: Node) {
    match n {
        Node::Instance(i) => {
            buf.push(0);
            put_u32(buf, i.index() as u32);
        }
        Node::Literal(l) => {
            buf.push(1);
            put_u32(buf, l.index() as u32);
        }
    }
}

/// Serializes `payload` under `key` into the version-1 byte format,
/// checksum included.
pub fn encode(key: SnapshotKey, payload: &SnapshotPayload) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + payload.len() * 48);
    buf.extend_from_slice(&MAGIC);
    put_u32(&mut buf, FORMAT_VERSION);
    put_u64(&mut buf, key.kb_content_hash);
    put_u64(&mut buf, key.schema_fingerprint);
    put_u32(&mut buf, payload.nodes.len() as u32);
    put_u32(&mut buf, payload.edges.len() as u32);
    for (sn, value, cands) in &payload.nodes {
        put_schema_node(&mut buf, sn);
        put_str(&mut buf, value);
        put_u32(&mut buf, cands.len() as u32);
        for &c in cands {
            put_node(&mut buf, c);
        }
    }
    for ((from, rel, to), from_value, to_value, ok, probed) in &payload.edges {
        put_schema_node(&mut buf, from);
        put_u32(&mut buf, rel.index() as u32);
        put_schema_node(&mut buf, to);
        put_str(&mut buf, from_value);
        put_str(&mut buf, to_value);
        buf.push(u8::from(*ok));
        put_u32(&mut buf, probed.len() as u32);
        for i in probed {
            put_u32(&mut buf, i.index() as u32);
        }
    }
    let mut h = FxHasher::default();
    h.write(&buf);
    let checksum = h.finish();
    put_u64(&mut buf, checksum);
    buf
}

// ----- decoding -----------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Malformed("body truncated mid-entry"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not UTF-8"))
    }

    fn sim(&mut self) -> Result<SimFn, SnapshotError> {
        let tag = self.u8()?;
        let arg = self.u32()?;
        Ok(match tag {
            0 => SimFn::Equal,
            1 => SimFn::EditDistance(arg),
            2 => SimFn::Jaccard(
                u16::try_from(arg).map_err(|_| SnapshotError::Malformed("sim arg overflow"))?,
            ),
            3 => SimFn::Cosine(
                u16::try_from(arg).map_err(|_| SnapshotError::Malformed("sim arg overflow"))?,
            ),
            _ => return Err(SnapshotError::Malformed("unknown sim tag")),
        })
    }

    fn schema_node(&mut self) -> Result<SchemaNode, SnapshotError> {
        let col = self.u32()? as usize;
        let ty_tag = self.u8()?;
        let ty_arg = self.u32()? as usize;
        let ty = match ty_tag {
            0 => NodeType::Literal,
            1 => NodeType::Class(ClassId::from_index(ty_arg)),
            _ => return Err(SnapshotError::Malformed("unknown node-type tag")),
        };
        if col > usize::from(u16::MAX) {
            return Err(SnapshotError::Malformed("column id overflow"));
        }
        let sim = self.sim()?;
        Ok(SchemaNode::new(AttrId::from_index(col), ty, sim))
    }

    fn node(&mut self) -> Result<Node, SnapshotError> {
        let tag = self.u8()?;
        let id = self.u32()? as usize;
        Ok(match tag {
            0 => Node::Instance(InstanceId::from_index(id)),
            1 => Node::Literal(LiteralId::from_index(id)),
            _ => return Err(SnapshotError::Malformed("unknown node tag")),
        })
    }
}

/// Minimum plausible file: header (4+4+8+8+4+4) + trailing checksum (8).
const MIN_LEN: usize = 40;

/// Decodes a snapshot byte image, verifying magic, version, checksum, and
/// the expected key before parsing the body. The `expected` key is the one
/// derived from the live `(kb, schema)` pair; a file whose header disagrees
/// is treated exactly like corruption (cold start).
pub fn decode(bytes: &[u8], expected: SnapshotKey) -> Result<SnapshotPayload, SnapshotError> {
    if bytes.len() < MIN_LEN {
        return Err(SnapshotError::TooShort(bytes.len()));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let mut h = FxHasher::default();
    h.write(body);
    let computed = h.finish();
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }

    let mut cur = Cursor {
        bytes: body,
        pos: 0,
    };
    let magic: [u8; 4] = cur.take(4)?.try_into().expect("4-byte magic");
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = cur.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let found = SnapshotKey {
        kb_content_hash: cur.u64()?,
        schema_fingerprint: cur.u64()?,
    };
    if found != expected {
        return Err(SnapshotError::KeyMismatch { found, expected });
    }
    let node_count = cur.u32()? as usize;
    let edge_count = cur.u32()? as usize;

    let mut payload = SnapshotPayload::default();
    for _ in 0..node_count {
        let sn = cur.schema_node()?;
        let value = cur.string()?;
        let n_cands = cur.u32()? as usize;
        // Each candidate costs 5 bytes on disk; a count the remaining bytes
        // cannot hold is corrupt (checksum collisions are the only way here).
        if n_cands > (cur.bytes.len() - cur.pos) / 5 {
            return Err(SnapshotError::Malformed("candidate count exceeds body"));
        }
        let mut cands = Vec::with_capacity(n_cands);
        for _ in 0..n_cands {
            cands.push(cur.node()?);
        }
        payload.nodes.push((sn, value, cands));
    }
    for _ in 0..edge_count {
        let from = cur.schema_node()?;
        let rel = PredId::from_index(cur.u32()? as usize);
        let to = cur.schema_node()?;
        let from_value = cur.string()?;
        let to_value = cur.string()?;
        let ok = match cur.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed("edge flag not 0/1")),
        };
        let n_probed = cur.u32()? as usize;
        // Each probed id costs 4 bytes on disk; reject counts the remaining
        // bytes cannot hold before allocating.
        if n_probed > (cur.bytes.len() - cur.pos) / 4 {
            return Err(SnapshotError::Malformed("probed count exceeds body"));
        }
        let mut probed = Vec::with_capacity(n_probed);
        for _ in 0..n_probed {
            probed.push(InstanceId::from_index(cur.u32()? as usize));
        }
        payload
            .edges
            .push(((from, rel, to), from_value, to_value, ok, probed));
    }
    if cur.pos != cur.bytes.len() {
        return Err(SnapshotError::Malformed("trailing bytes after entries"));
    }
    Ok(payload)
}

// ----- file i/o -----------------------------------------------------------

/// Writes `payload` under `key` into `dir`, atomically: the bytes go to a
/// write-unique temp file first and are renamed over the final path, so a
/// concurrent reader sees either the old snapshot or the new one, never a
/// torn write. The temp name carries the pid *and* a process-global write
/// counter: two concurrent persists of the same key — two processes, or two
/// in-process callers (the server persists after every repair request) —
/// each own their temp file, so neither can truncate the other mid-write
/// and rename a torn snapshot. Creates `dir` if missing.
pub fn write_snapshot(
    dir: &Path,
    key: SnapshotKey,
    payload: &SnapshotPayload,
) -> Result<PathBuf, SnapshotError> {
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::fs::create_dir_all(dir)?;
    let final_path = key.path_in(dir);
    let tmp_path = dir.join(format!(
        ".vc-{:016x}-{:016x}.{}.{}.tmp",
        key.kb_content_hash,
        key.schema_fingerprint,
        std::process::id(),
        WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let bytes = encode(key, payload);
    {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp_path, &final_path) {
        let _ = std::fs::remove_file(&tmp_path);
        return Err(e.into());
    }
    Ok(final_path)
}

/// Reads and decodes the snapshot for `key` from `dir`. A missing file is
/// reported as `SnapshotError::Io(NotFound)` ([`SnapshotError::is_absence`]);
/// everything else means the file existed but could not be trusted.
pub fn read_snapshot(dir: &Path, key: SnapshotKey) -> Result<SnapshotPayload, SnapshotError> {
    let bytes = std::fs::read(key.path_in(dir))?;
    decode(&bytes, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::nobel_schema;
    use dr_kb::fixtures::{names, nobel_mini_kb};
    use dr_kb::KnowledgeBase;

    fn sample_key() -> SnapshotKey {
        SnapshotKey {
            kb_content_hash: 0xDEAD_BEEF_0BAD_F00D,
            schema_fingerprint: 0x0123_4567_89AB_CDEF,
        }
    }

    fn sample_payload(kb: &KnowledgeBase, schema: &Schema) -> SnapshotPayload {
        let city = SchemaNode::new(
            schema.attr_expect("City"),
            NodeType::Class(kb.class_named(names::CITY).expect("city class")),
            SimFn::Equal,
        );
        let name = SchemaNode::new(
            schema.attr_expect("Name"),
            NodeType::Class(kb.class_named(names::LAUREATE).expect("laureate class")),
            SimFn::EditDistance(2),
        );
        let works_at = kb.pred_named(names::WORKS_AT).expect("worksAt");
        let haifa = kb.instances_labeled("Haifa")[0];
        SnapshotPayload {
            nodes: vec![
                (city, "Haifa".into(), vec![Node::Instance(haifa)]),
                (name, "Nobody".into(), vec![]),
            ],
            edges: vec![
                (
                    (name, works_at, city),
                    "A".into(),
                    "B".into(),
                    false,
                    vec![],
                ),
                (
                    (city, works_at, name),
                    "Haifa".into(),
                    "X".into(),
                    true,
                    vec![haifa],
                ),
            ],
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let payload = sample_payload(&kb, &schema);
        let key = sample_key();
        let bytes = encode(key, &payload);
        let back = decode(&bytes, key).expect("roundtrip");
        assert_eq!(back, payload);
        assert_eq!(back.len(), 4);
        assert!(!back.is_empty());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let key = sample_key();
        let bytes = encode(key, &SnapshotPayload::default());
        assert_eq!(bytes.len(), MIN_LEN);
        assert!(decode(&bytes, key).expect("empty").is_empty());
    }

    #[test]
    fn key_mismatch_is_rejected() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let bytes = encode(sample_key(), &sample_payload(&kb, &schema));
        let other = SnapshotKey {
            kb_content_hash: 1,
            schema_fingerprint: 2,
        };
        assert!(matches!(
            decode(&bytes, other),
            Err(SnapshotError::KeyMismatch { .. })
        ));
    }

    #[test]
    fn file_roundtrip_and_absence() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let dir = std::env::temp_dir().join(format!("drsnap-unit-{}", std::process::id()));
        let key = SnapshotKey::for_pair(&kb, &schema);
        assert!(read_snapshot(&dir, key).expect_err("missing").is_absence());
        let payload = sample_payload(&kb, &schema);
        let path = write_snapshot(&dir, key, &payload).expect("write");
        assert_eq!(path, key.path_in(&dir));
        let back = read_snapshot(&dir, key).expect("read");
        assert_eq!(back, payload);
        back.validate(&kb, &schema).expect("ids in bounds");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rejects_out_of_bounds_ids() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let mut payload = sample_payload(&kb, &schema);
        payload.nodes[0]
            .2
            .push(Node::Instance(InstanceId::from_index(kb.num_instances())));
        assert!(matches!(
            payload.validate(&kb, &schema),
            Err(SnapshotError::Malformed(_))
        ));

        let mut payload = sample_payload(&kb, &schema);
        payload.edges[0].0 .1 = PredId::from_index(kb.num_preds());
        assert!(payload.validate(&kb, &schema).is_err());

        let mut payload = sample_payload(&kb, &schema);
        payload.edges[1]
            .4
            .push(InstanceId::from_index(kb.num_instances()));
        assert!(payload.validate(&kb, &schema).is_err());

        let mut payload = sample_payload(&kb, &schema);
        payload.nodes[0].0.col = AttrId::from_index(schema.arity());
        assert!(payload.validate(&kb, &schema).is_err());
    }

    /// A pre-probed-list (version 1) file is rejected as `BadVersion` — the
    /// registry turns that into a capped diagnostic and a cold start.
    #[test]
    fn version_1_files_are_rejected() {
        let key = sample_key();
        let mut bytes = encode(key, &SnapshotPayload::default());
        // Rewrite the version field (bytes 4..8) and re-checksum.
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let body_len = bytes.len() - 8;
        let mut h = FxHasher::default();
        h.write(&bytes[..body_len]);
        let checksum = h.finish();
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        let err = decode(&bytes, key).expect_err("v1 must be rejected");
        assert!(matches!(err, SnapshotError::BadVersion(1)));
        assert!(!err.is_absence());
    }

    #[test]
    fn errors_render_diagnostics() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let key = sample_key();
        let bytes = encode(key, &sample_payload(&kb, &schema));
        let mut flipped = bytes.clone();
        flipped[0] ^= 0xFF;
        let err = decode(&flipped, key).expect_err("corrupt");
        assert!(err.to_string().contains("checksum"), "{err}");
        assert!(!err.is_absence());
    }
}
