//! Deterministic fault injection for the parallel repair scheduler
//! (DESIGN.md §4c; compiled only with the `fault-injection` feature).
//!
//! A [`FaultPlan`] maps row indexes to [`Fault`]s and is executed by
//! [`parallel_repair`](crate::repair::parallel::parallel_repair) at the
//! moment a worker claims the row — *before* the row's tuple is touched, so
//! a panicked or exhausted row is left exactly as loaded and every other
//! row must come out bit-identical to a fault-free run. Plans built with
//! [`FaultPlan::seeded`] are pure functions of `(seed, rows, spec)`:
//! recovery tests replay the exact same faults on every run and across
//! thread counts.
//!
//! This module is test infrastructure shipped in the library (the recovery
//! proptests and any downstream chaos harness drive the real scheduler, not
//! a mock), but it is feature-gated so production builds carry none of it.

use crate::repair::budget::BudgetMeter;
use dr_kb::{FxHashMap, FxHashSet};
use parking_lot::Mutex;
use rand::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// What to inject at one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic in the worker (with a recognizable payload) before the row's
    /// repair starts. The scheduler must isolate it as
    /// [`TupleOutcome::Failed`](crate::repair::resilience::TupleOutcome).
    ///
    /// Fires on *every* trigger, including the scheduler's retry pass, so
    /// it models a deterministic per-row bug: the row stays `Failed` even
    /// after a retry.
    Panic,
    /// Panic on the row's *first* trigger only; subsequent triggers (the
    /// scheduler's retry on a fresh worker) are no-ops. Models a transient
    /// fault — a row that heals on retry and must come out bit-identical
    /// to a fault-free run.
    PanicOnce,
    /// Sleep before repairing, simulating a straggler row. The row still
    /// completes; work stealing must route around it.
    Slow(Duration),
    /// Force the row's [`BudgetMeter`] into exhaustion, simulating a
    /// pathological tuple hitting its step cap; the row degrades.
    ExhaustBudget,
}

/// Payload prefix of injected panics, so tests (and panic hooks) can tell
/// an injected fault from a genuine bug.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault: panic at row";

/// Per-fault-kind injection rates for [`FaultPlan::seeded`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSpec {
    /// Fraction of rows that panic (deterministically, on every attempt).
    pub panic_rate: f64,
    /// Fraction of rows that panic once and then heal on retry.
    pub panic_once_rate: f64,
    /// Fraction of rows that run slow.
    pub slow_rate: f64,
    /// Sleep injected into slow rows.
    pub slow_duration: Duration,
    /// Fraction of rows whose budget is force-exhausted.
    pub exhaust_rate: f64,
}

impl FaultSpec {
    /// A spec that only panics, at `rate`.
    pub fn panics(rate: f64) -> Self {
        Self {
            panic_rate: rate,
            ..Default::default()
        }
    }

    /// A spec that only injects one-shot (healing) panics, at `rate`.
    pub fn panics_once(rate: f64) -> Self {
        Self {
            panic_once_rate: rate,
            ..Default::default()
        }
    }
}

/// A deterministic schedule of per-row faults.
///
/// Clones share the [`Fault::PanicOnce`] fired-set (it lives behind an
/// `Arc`): a one-shot fault fires once per *plan*, not once per clone —
/// which is what the retry pass needs, since the scheduler triggers the
/// same plan instance on both attempts.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: FxHashMap<usize, Fault>,
    /// Rows whose `PanicOnce` has already fired.
    fired: Arc<Mutex<FxHashSet<usize>>>,
}

impl FaultPlan {
    /// An empty plan (inject nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `fault` at `row` (builder style).
    pub fn with_fault(mut self, row: usize, fault: Fault) -> Self {
        self.faults.insert(row, fault);
        self
    }

    /// Builds a plan over `rows` rows where each row independently draws
    /// its fate from `spec` using a seeded RNG. Deterministic: the same
    /// `(seed, rows, spec)` always yields the same plan.
    pub fn seeded(seed: u64, rows: usize, spec: FaultSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::new();
        for row in 0..rows {
            // One draw per fate keeps each row's outcome independent and
            // the rates composable (first matching fate wins).
            let roll: f64 = rng.gen_range(0.0..1.0);
            let once_edge = spec.panic_rate + spec.panic_once_rate;
            if roll < spec.panic_rate {
                plan.faults.insert(row, Fault::Panic);
            } else if roll < once_edge {
                plan.faults.insert(row, Fault::PanicOnce);
            } else if roll < once_edge + spec.exhaust_rate {
                plan.faults.insert(row, Fault::ExhaustBudget);
            } else if roll < once_edge + spec.exhaust_rate + spec.slow_rate {
                plan.faults.insert(row, Fault::Slow(spec.slow_duration));
            }
        }
        plan
    }

    /// The fault planned for `row`, if any.
    pub fn fault_at(&self, row: usize) -> Option<Fault> {
        self.faults.get(&row).copied()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// All rows with a planned fault, sorted.
    pub fn affected_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.faults.keys().copied().collect();
        rows.sort_unstable();
        rows
    }

    /// Rows planned to panic on every attempt, sorted.
    pub fn panicking_rows(&self) -> Vec<usize> {
        self.rows_with(|f| matches!(f, Fault::Panic))
    }

    /// Rows planned to panic once and heal on retry, sorted.
    pub fn healing_rows(&self) -> Vec<usize> {
        self.rows_with(|f| matches!(f, Fault::PanicOnce))
    }

    /// Rows planned for forced budget exhaustion, sorted.
    pub fn exhausted_rows(&self) -> Vec<usize> {
        self.rows_with(|f| matches!(f, Fault::ExhaustBudget))
    }

    /// Rows whose repaired value may legitimately differ from a fault-free
    /// run (panicked or degraded rows), sorted. Slow rows complete
    /// normally and one-shot panics heal on retry, so neither is included.
    pub fn disturbed_rows(&self) -> Vec<usize> {
        self.rows_with(|f| !matches!(f, Fault::Slow(_) | Fault::PanicOnce))
    }

    fn rows_with(&self, pred: impl Fn(Fault) -> bool) -> Vec<usize> {
        let mut rows: Vec<usize> = self
            .faults
            .iter()
            .filter(|(_, &f)| pred(f))
            .map(|(&r, _)| r)
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Executes the fault planned for `row` (no-op without one). Called by
    /// the scheduler inside its per-row `catch_unwind`, before the row's
    /// tuple is locked.
    ///
    /// # Panics
    ///
    /// On purpose, when the planned fault is [`Fault::Panic`].
    pub fn trigger(&self, row: usize, meter: &BudgetMeter) {
        match self.fault_at(row) {
            Some(Fault::Panic) => panic!("{INJECTED_PANIC_PREFIX} {row}"),
            // `insert` is the atomic test-and-set: exactly one trigger per
            // row sees `true`, even under concurrent claims.
            Some(Fault::PanicOnce) if self.fired.lock().insert(row) => {
                panic!("{INJECTED_PANIC_PREFIX} {row}");
            }
            Some(Fault::PanicOnce) => {}
            Some(Fault::Slow(d)) => std::thread::sleep(d),
            Some(Fault::ExhaustBudget) => meter.force_exhaust(),
            None => {}
        }
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// report for injected panics — recognized by [`INJECTED_PANIC_PREFIX`] —
/// and delegates everything else to the previously installed hook.
/// Recovery tests call this so hundreds of *expected* panics don't bury
/// real failures in stderr noise.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with(INJECTED_PANIC_PREFIX));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let spec = FaultSpec {
            panic_rate: 0.2,
            panic_once_rate: 0.1,
            exhaust_rate: 0.2,
            slow_rate: 0.1,
            slow_duration: Duration::from_millis(1),
        };
        let a = FaultPlan::seeded(99, 500, spec);
        let b = FaultPlan::seeded(99, 500, spec);
        assert_eq!(a.affected_rows(), b.affected_rows());
        assert_eq!(a.panicking_rows(), b.panicking_rows());
        assert_eq!(a.exhausted_rows(), b.exhausted_rows());
        assert!(!a.is_empty());
        let c = FaultPlan::seeded(100, 500, spec);
        assert_ne!(
            a.affected_rows(),
            c.affected_rows(),
            "different seed, different plan"
        );
    }

    #[test]
    fn seeded_rates_are_roughly_respected() {
        let plan = FaultPlan::seeded(7, 10_000, FaultSpec::panics(0.10));
        let hit = plan.panicking_rows().len();
        assert!((600..=1400).contains(&hit), "~10% of 10k rows, got {hit}");
        assert!(plan.exhausted_rows().is_empty());
    }

    #[test]
    fn trigger_exhausts_and_panics() {
        silence_injected_panics();
        let plan = FaultPlan::new()
            .with_fault(3, Fault::ExhaustBudget)
            .with_fault(5, Fault::Panic);
        let meter = BudgetMeter::unbounded();
        plan.trigger(0, &meter); // no-op
        plan.trigger(3, &meter);
        assert!(meter.is_exhausted());
        assert_eq!(plan.disturbed_rows(), vec![3, 5]);

        let result = std::panic::catch_unwind(|| {
            plan.trigger(5, &BudgetMeter::unbounded());
        });
        let payload = result.expect_err("row 5 panics");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.starts_with(INJECTED_PANIC_PREFIX), "{message}");
    }

    #[test]
    fn panic_once_fires_exactly_once_per_row() {
        silence_injected_panics();
        let plan = FaultPlan::new().with_fault(2, Fault::PanicOnce);
        let meter = BudgetMeter::unbounded();
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.trigger(2, &meter);
        }));
        assert!(first.is_err(), "first trigger panics");
        plan.trigger(2, &meter); // heals: no panic
        plan.clone().trigger(2, &meter); // clones share the fired memory
        assert_eq!(plan.healing_rows(), vec![2]);
        assert!(
            plan.disturbed_rows().is_empty(),
            "healed rows end bit-identical"
        );
        assert_eq!(plan.affected_rows(), vec![2]);
    }

    #[test]
    fn seeded_panic_once_rate_draws_healing_rows() {
        let plan = FaultPlan::seeded(7, 10_000, FaultSpec::panics_once(0.10));
        let hit = plan.healing_rows().len();
        assert!((600..=1400).contains(&hit), "~10% of 10k rows, got {hit}");
        assert!(plan.panicking_rows().is_empty());
        assert!(plan.disturbed_rows().is_empty());
    }
}
