//! The fast repair algorithm — Algorithm 2 of the paper (§IV-B).
//!
//! Three optimizations over the basic chase, all observable in the Exp-3
//! benchmarks:
//!
//! 1. **Rule order selection** — rules are checked in a topological order of
//!    the [`RuleGraph`] condensation, so a rule
//!    outside a dependency cycle is checked exactly once instead of being
//!    re-scanned after every application.
//! 2. **Efficient instance matching** — all node lookups go through the
//!    [`MatchContext`] signature indexes (hash for `=`, PASS-JOIN for
//!    `ED,k`).
//! 3. **Shared computation** — node and edge checks are memoized in an
//!    [`ElementCache`] keyed by `(col, type, sim)` signatures, shared across
//!    rules; entries are invalidated only when a repair rewrites their
//!    column.

use crate::context::{FootprintRecorder, MatchContext};
use crate::repair::basic::{PhaseTimings, RelationReport, RepairStep, TupleReport};
use crate::repair::budget::BudgetMeter;
use crate::repair::cache::ElementCache;
use crate::repair::resilience::TupleOutcome;
use crate::repair::rule_graph::RuleGraph;
use crate::repair::value_cache::ValueCache;
use crate::rule::apply::{apply_rule_metered, ApplyOptions, RuleApplication};
use crate::rule::DetectiveRule;
use dr_relation::{Relation, Tuple};
use std::time::Instant;

/// A prepared fast repairer: rule set + precomputed check order.
///
/// Construction sorts the rules once (`O(|Σ| + |Er|)`); the order is reused
/// for every tuple.
pub struct FastRepairer<'r> {
    rules: &'r [DetectiveRule],
    order: Vec<Vec<usize>>,
}

impl<'r> FastRepairer<'r> {
    /// Prepares the repairer: builds the rule graph and its topological
    /// check order.
    pub fn new(rules: &'r [DetectiveRule]) -> Self {
        let order = RuleGraph::build(rules).check_order();
        Self { rules, order }
    }

    /// The SCC check order (diagnostics / tests).
    pub fn check_order(&self) -> &[Vec<usize>] {
        &self.order
    }

    /// Repairs one tuple, sharing element checks across rules.
    pub fn repair_tuple(
        &self,
        ctx: &MatchContext<'_>,
        tuple: &mut Tuple,
        opts: &ApplyOptions,
    ) -> TupleReport {
        let meter = ctx.budget().meter();
        self.repair_tuple_with(ctx, tuple, opts, &mut ElementCache::new(), &meter)
    }

    /// [`Self::repair_tuple`] with the per-tuple overlay backed by a
    /// relation-scoped [`ValueCache`], so element checks also share across
    /// tuples (and across threads — see
    /// [`parallel_repair`](crate::repair::parallel::parallel_repair)).
    pub fn repair_tuple_shared(
        &self,
        ctx: &MatchContext<'_>,
        tuple: &mut Tuple,
        opts: &ApplyOptions,
        shared: &ValueCache,
    ) -> TupleReport {
        let meter = ctx.budget().meter();
        self.repair_tuple_shared_metered(ctx, tuple, opts, shared, &meter)
    }

    /// [`Self::repair_tuple_shared`] spending a caller-owned
    /// [`BudgetMeter`] — the entry point for callers that need to observe
    /// or pre-trip the meter (the parallel scheduler, fault injection).
    pub fn repair_tuple_shared_metered(
        &self,
        ctx: &MatchContext<'_>,
        tuple: &mut Tuple,
        opts: &ApplyOptions,
        shared: &ValueCache,
        meter: &BudgetMeter,
    ) -> TupleReport {
        self.repair_tuple_with(
            ctx,
            tuple,
            opts,
            &mut ElementCache::with_shared(shared),
            meter,
        )
    }

    /// Innermost entry point: repairs one tuple through a caller-owned
    /// element cache. Crate-visible so relation-level drivers (the loop
    /// below, the parallel scheduler) can keep the cache after the call and
    /// read its per-tuple [`level_stats`](ElementCache::level_stats) for
    /// trace events.
    pub(crate) fn repair_tuple_with(
        &self,
        ctx: &MatchContext<'_>,
        tuple: &mut Tuple,
        opts: &ApplyOptions,
        cache: &mut ElementCache<'_>,
        meter: &BudgetMeter,
    ) -> TupleReport {
        let mut report = TupleReport::default();
        for group in &self.order {
            if group.len() == 1 {
                if self
                    .try_rule(ctx, group[0], tuple, opts, cache, meter, &mut report)
                    .is_err()
                {
                    return report;
                }
            } else {
                // A dependency cycle: re-scan the group until no member
                // fires. Each rule still applies at most once.
                let mut remaining = group.clone();
                loop {
                    let mut fired = None;
                    for (pos, &ri) in remaining.iter().enumerate() {
                        match self.try_rule(ctx, ri, tuple, opts, cache, meter, &mut report) {
                            Ok(true) => {
                                fired = Some(pos);
                                break;
                            }
                            Ok(false) => {}
                            Err(()) => return report,
                        }
                    }
                    match fired {
                        Some(pos) => {
                            remaining.remove(pos);
                        }
                        None => break,
                    }
                }
            }
        }
        report
    }

    /// Applies rule `ri` if applicable; maintains cache invalidation.
    /// `Ok(fired)` normally; `Err(())` when the budget ran out — the
    /// degraded outcome is already recorded on `report` and the caller
    /// must stop this tuple.
    #[allow(clippy::too_many_arguments)] // internal helper threading the meter
    fn try_rule(
        &self,
        ctx: &MatchContext<'_>,
        ri: usize,
        tuple: &mut Tuple,
        opts: &ApplyOptions,
        cache: &mut ElementCache<'_>,
        meter: &BudgetMeter,
        report: &mut TupleReport,
    ) -> Result<bool, ()> {
        // A live rule span per check — only on *detailed* (forced) traces:
        // this is the innermost loop, and speculative captures must stay
        // inside the exp_trace_overhead budget. The `result` attribute
        // mirrors the JSONL `rule.outcome` label, with `budget_exhausted`
        // marking the check that tripped the meter.
        let mut rule_span = ctx.span().filter(|s| s.detailed()).map(|s| {
            let mut sp = s.child("rule");
            sp.attr("name", self.rules[ri].name());
            sp
        });
        let application = match apply_rule_metered(ctx, &self.rules[ri], tuple, opts, cache, meter)
        {
            Ok(application) => application,
            Err(reason) => {
                if let Some(mut sp) = rule_span.take() {
                    sp.attr_static("result", "budget_exhausted");
                    sp.finish();
                }
                report.outcome = TupleOutcome::Degraded { reason };
                return Err(());
            }
        };
        if let Some(mut sp) = rule_span.take() {
            sp.attr_static("result", crate::obs::application_kind(&application));
            sp.finish();
        }
        if !application.applied() {
            return Ok(false);
        }
        // Invalidate cache entries for every column whose value changed.
        match &application {
            RuleApplication::Repaired {
                col, normalized, ..
            } => {
                cache.invalidate_col(*col);
                for n in normalized {
                    cache.invalidate_col(n.col);
                }
            }
            RuleApplication::ProofPositive { normalized, .. } => {
                for n in normalized {
                    cache.invalidate_col(n.col);
                }
            }
            RuleApplication::DetectedWrong { .. } => {} // marks only, no rewrites
            RuleApplication::NotApplicable => unreachable!("checked applied() above"),
        }
        report.steps.push(RepairStep {
            rule_index: ri,
            rule_name: self.rules[ri].name().to_owned(),
            application,
        });
        Ok(true)
    }

    /// Repairs every tuple of `relation`, sharing a relation-scoped
    /// [`ValueCache`] across tuples: identical cell values recur across rows
    /// (duplicate-heavy columns), and their element checks are computed
    /// once. When the context carries a
    /// [`CacheRegistry`](crate::repair::registry::CacheRegistry), the cache
    /// is the registry's persistent, schema-keyed instance and this repair
    /// warm-starts from earlier same-schema relations. The cache counters
    /// (this repair's delta, not the cache's lifetime totals) and per-phase
    /// timings land in the report.
    pub fn repair_relation(
        &self,
        ctx: &MatchContext<'_>,
        relation: &mut Relation,
        opts: &ApplyOptions,
    ) -> RelationReport {
        let shared = ctx.value_cache_for(relation.schema());
        self.repair_relation_with_cache(ctx, relation, opts, &shared)
    }

    /// [`Self::repair_relation`] against an explicit shared cache (the
    /// building block the parallel repairer and benches drive directly).
    pub fn repair_relation_with_cache(
        &self,
        ctx: &MatchContext<'_>,
        relation: &mut Relation,
        opts: &ApplyOptions,
        shared: &ValueCache,
    ) -> RelationReport {
        let obs = ctx.obs();
        let tracer = obs.and_then(|o| o.tracer());
        // Live span surface, mirroring the parallel scheduler's topology:
        // prewarm and repair phase spans under the request, one row span
        // per tuple, rule spans beneath (opened inside `try_rule`).
        let live = ctx.span().cloned();
        if let Some(t) = tracer {
            crate::obs::trace_relation_start(t, "fast", relation.len(), self.rules.len());
            crate::obs::trace_phase(t, "prewarm", true);
        }
        let tuple_hist = obs.map(|o| {
            (
                o.metrics().histogram("repair_tuple_seconds", &[]),
                o.metrics()
                    .window_histogram("repair_tuple_seconds_window", &[]),
            )
        });
        let before = shared.stats();
        let prewarm_span = live.as_ref().map(|s| s.child("prewarm"));
        let prewarm_start = Instant::now();
        match &prewarm_span {
            Some(sp) => ctx.fork().with_span(sp.ctx()).prewarm(self.rules),
            None => ctx.prewarm(self.rules),
        }
        let prewarm = prewarm_start.elapsed();
        if let Some(sp) = prewarm_span {
            sp.finish();
        }
        if let Some(t) = tracer {
            crate::obs::trace_phase(t, "prewarm", false);
            crate::obs::trace_phase(t, "repair", true);
        }
        let repair_span = live.as_ref().map(|s| s.child("repair"));
        let row_parent = repair_span.as_ref().map(|s| s.ctx());
        // Speculative captures (tail sampling armed, not forced) keep the
        // row path to two clock reads: spans are recorded retroactively
        // and only for rows above `SPECULATIVE_ROW_FLOOR`. Forced captures
        // open a full guard per row with attributes and rule children.
        let detailed = live.as_ref().is_some_and(|s| s.detailed());
        let repair_start = Instant::now();
        let mut report = RelationReport::default();
        for row in 0..relation.len() {
            let meter = ctx.budget().meter();
            let mut cache = ElementCache::with_shared(shared);
            // A fresh recorder per row captures this tuple's KB reads as its
            // footprint — the provenance selective re-repair intersects with
            // later KB deltas.
            let recorder = std::sync::Arc::new(FootprintRecorder::new());
            let row_span = if detailed {
                row_parent.as_ref().map(|s| {
                    let mut sp = s.child("row");
                    sp.attr_num("row", row as u64);
                    sp
                })
            } else {
                None
            };
            let spec_row_start = match (&row_parent, detailed) {
                (Some(_), false) => Some(Instant::now()),
                _ => None,
            };
            let row_ctx = ctx
                .fork()
                .with_recorder(std::sync::Arc::clone(&recorder))
                .with_span_opt(row_span.as_ref().map(|s| s.ctx()));
            let started = tuple_hist.as_ref().map(|_| Instant::now());
            let tuple_report =
                self.repair_tuple_with(&row_ctx, relation.tuple_mut(row), opts, &mut cache, &meter);
            if let (Some((hist, window)), Some(started)) = (&tuple_hist, started) {
                let elapsed = started.elapsed();
                hist.record(elapsed);
                window.record(elapsed);
            }
            if let Some(mut sp) = row_span {
                let cache_stats = cache.level_stats();
                sp.attr_static("outcome", crate::obs::outcome_label(&tuple_report.outcome));
                sp.attr_num("steps", tuple_report.steps.len() as u64);
                sp.attr_num(
                    "cache_hits",
                    (cache_stats.local_hits + cache_stats.shared_hits) as u64,
                );
                sp.attr_num(
                    "cache_misses",
                    (cache_stats.local_misses + cache_stats.shared_misses) as u64,
                );
                sp.finish();
            } else if let (Some(parent), Some(started)) = (&row_parent, spec_row_start) {
                let took = started.elapsed();
                if took >= crate::obs::SPECULATIVE_ROW_FLOOR {
                    parent.record_completed("row", started, took);
                }
            }
            if let Some(o) = obs {
                crate::obs::trace_tuple(o, row, &tuple_report, Some(cache.level_stats()));
            }
            report.tuples.push(tuple_report);
            report.footprints.push(recorder.take());
        }
        if let Some(mut sp) = repair_span {
            sp.attr_num("rows", relation.len() as u64);
            sp.attr_num("value_cache_entries", shared.len() as u64);
            sp.finish();
        }
        report.cache = shared.stats().delta_since(&before);
        report.timing = PhaseTimings {
            prewarm,
            repair: repair_start.elapsed(),
        };
        report.tally_resilience();
        if let Some(obs) = obs {
            crate::obs::record_relation(obs, "fast", &report);
        }
        if let Some(t) = tracer {
            crate::obs::trace_phase(t, "repair", false);
            crate::obs::trace_relation_end(t, relation.len());
        }
        report
    }
}

/// One-shot convenience: prepare a [`FastRepairer`] and repair `relation`.
pub fn fast_repair(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    relation: &mut Relation,
    opts: &ApplyOptions,
) -> RelationReport {
    FastRepairer::new(rules).repair_relation(ctx, relation, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure4_rules, nobel_schema, table1_clean, table1_dirty};
    use crate::repair::basic::basic_repair;
    use crate::rule::apply::apply_rule_cached;
    use dr_kb::fixtures::nobel_mini_kb;
    use dr_relation::GroundTruth;

    /// Example 9: fRepair fixes r3 completely (Prize and Country repaired,
    /// everything marked).
    #[test]
    fn example9_r3() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let repairer = FastRepairer::new(&rules);
        let mut r3 = table1_dirty().tuple(2).clone();
        let report = repairer.repair_tuple(&ctx, &mut r3, &ApplyOptions::default());
        assert_eq!(report.steps.len(), 4);

        let expect = [
            ("Name", "Roald Hoffmann"),
            ("DOB", "1937-07-18"),
            ("Country", "United States"),
            ("Prize", "Nobel Prize in Chemistry"),
            ("Institution", "Cornell University"),
            ("City", "Ithaca"),
        ];
        for (col, value) in expect {
            let attr = schema.attr_expect(col);
            assert_eq!(r3.get(attr), value, "column {col}");
            assert!(r3.is_positive(attr), "column {col} marked");
        }
    }

    /// fRepair and bRepair compute identical results on Table I.
    #[test]
    fn equivalent_to_basic_on_table1() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let opts = ApplyOptions::default();

        let mut basic = table1_dirty();
        basic_repair(&ctx, &rules, &mut basic, &opts);
        let mut fast = table1_dirty();
        fast_repair(&ctx, &rules, &mut fast, &opts);

        for cell in basic.cell_refs() {
            assert_eq!(basic.value(cell), fast.value(cell), "value at {cell:?}");
            assert_eq!(
                basic.tuple(cell.row).is_positive(cell.attr),
                fast.tuple(cell.row).is_positive(cell.attr),
                "mark at {cell:?}"
            );
        }
    }

    /// The fast repairer reaches the clean table.
    #[test]
    fn table1_repairs_to_clean() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut dirty = table1_dirty();
        fast_repair(&ctx, &rules, &mut dirty, &ApplyOptions::default());
        let gt = GroundTruth::new(table1_clean());
        assert_eq!(gt.error_count(&dirty), 0);
    }

    /// Rules outside cycles are checked following the precomputed order:
    /// shuffled input yields the same result.
    #[test]
    fn input_order_does_not_matter() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let opts = ApplyOptions::default();
        let mut baseline = table1_dirty();
        fast_repair(&ctx, &rules, &mut baseline, &opts);

        let shuffled: Vec<_> = [3, 1, 0, 2].iter().map(|&i| rules[i].clone()).collect();
        let mut relation = table1_dirty();
        fast_repair(&ctx, &shuffled, &mut relation, &opts);
        for cell in baseline.cell_refs() {
            assert_eq!(baseline.value(cell), relation.value(cell));
        }
    }

    /// A registry-backed context warm-starts the second repair of a
    /// same-schema relation — and produces bit-identical results.
    #[test]
    fn registry_warm_start_is_transparent() {
        use crate::repair::registry::CacheRegistry;
        use std::sync::Arc;

        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let opts = ApplyOptions::default();

        let cold_ctx = MatchContext::new(&kb);
        let mut cold = table1_dirty();
        let cold_report = fast_repair(&cold_ctx, &rules, &mut cold, &opts);

        let registry = Arc::new(CacheRegistry::default());
        let ctx = MatchContext::with_registry(&kb, Arc::clone(&registry));
        let mut first = table1_dirty();
        let first_report = fast_repair(&ctx, &rules, &mut first, &opts);
        let mut second = table1_dirty();
        let second_report = fast_repair(&ctx, &rules, &mut second, &opts);

        // Bit-identical relations and traces, cold or warm.
        for cell in cold.cell_refs() {
            assert_eq!(cold.value(cell), first.value(cell));
            assert_eq!(cold.value(cell), second.value(cell));
        }
        assert_eq!(cold_report.tuples, first_report.tuples);
        assert_eq!(cold_report.tuples, second_report.tuples);

        // The second pass ran against the warm cache: every lookup the
        // first pass computed is now a hit, and the report's counters are
        // the per-repair delta (its misses don't double-count the first's).
        assert_eq!(registry.stats().warm_hits, 1);
        assert!(first_report.cache.misses() > 0, "cold pass computes");
        assert!(second_report.cache.hits() > 0, "warm pass reuses");
        assert_eq!(second_report.cache.misses(), 0, "{:?}", second_report.cache);
    }

    /// The element cache produces hits across rules sharing nodes.
    #[test]
    fn cache_is_shared_across_rules() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let repairer = FastRepairer::new(&rules);
        let mut r1 = table1_dirty().tuple(0).clone();
        let mut cache = ElementCache::new();
        // Drive the rules manually through one shared cache.
        for group in repairer.check_order() {
            for &ri in group {
                let _ = apply_rule_cached(
                    &ctx,
                    &rules[ri],
                    &mut r1,
                    &ApplyOptions::default(),
                    &mut cache,
                );
            }
        }
        let (hits, _) = cache.stats();
        assert!(hits > 0, "the Name node is shared by all four rules");
    }
}
