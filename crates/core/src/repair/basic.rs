//! The basic repair algorithm — Algorithm 1 of the paper (§IV-A).
//!
//! A chase: repeatedly pick any rule applicable to the tuple, apply it, and
//! remove it from the working set (each rule applies at most once). With a
//! consistent rule set the chase is Church–Rosser — every application order
//! reaches the same fixpoint. Termination is structural: every application
//! strictly grows the set of positively marked attributes, so at most `|R|`
//! rules can fire.

use crate::context::MatchContext;
use crate::repair::cache::ElementCache;
use crate::repair::resilience::{ResilienceReport, TupleOutcome};
use crate::rule::apply::{apply_rule_metered, ApplyOptions, RuleApplication};
use crate::rule::DetectiveRule;
use dr_relation::{AttrId, Relation, Tuple};

/// One applied rule in a tuple's repair trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairStep {
    /// Index of the rule in the rule slice passed to the repairer.
    pub rule_index: usize,
    /// Name of the rule.
    pub rule_name: String,
    /// What the rule did.
    pub application: RuleApplication,
}

/// The repair trace of one tuple.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TupleReport {
    /// Applied rules, in application order.
    pub steps: Vec<RepairStep>,
    /// How the repair ended ([`TupleOutcome::Completed`] unless the
    /// tuple's budget ran out or its worker panicked — DESIGN.md §4c).
    pub outcome: TupleOutcome,
}

impl TupleReport {
    /// Number of value rewrites (repairs + normalizations).
    pub fn changes(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match &s.application {
                RuleApplication::Repaired { normalized, .. } => 1 + normalized.len(),
                RuleApplication::ProofPositive { normalized, .. } => normalized.len(),
                RuleApplication::DetectedWrong { .. } | RuleApplication::NotApplicable => 0,
            })
            .sum()
    }

    /// Every `(col, old, new)` rewrite in order.
    pub fn rewrites(&self) -> Vec<(AttrId, String, String)> {
        let mut out = Vec::new();
        for step in &self.steps {
            match &step.application {
                RuleApplication::Repaired {
                    col,
                    old,
                    new,
                    normalized,
                    ..
                } => {
                    for n in normalized {
                        out.push((n.col, n.old.clone(), n.new.clone()));
                    }
                    out.push((*col, old.clone(), new.clone()));
                }
                RuleApplication::ProofPositive { normalized, .. } => {
                    for n in normalized {
                        out.push((n.col, n.old.clone(), n.new.clone()));
                    }
                }
                RuleApplication::DetectedWrong { .. } | RuleApplication::NotApplicable => {}
            }
        }
        out
    }
}

/// Wall-clock phase timings of a relation repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Time spent building the `(type, sim)` match indexes up front
    /// ([`MatchContext::prewarm`]). Zero when the repairer did not prewarm.
    pub prewarm: std::time::Duration,
    /// Time spent in the per-tuple repair loop proper.
    pub repair: std::time::Duration,
}

impl std::ops::AddAssign for PhaseTimings {
    /// Phase-wise accumulation — used by experiment harnesses summing
    /// per-table reports into one row.
    fn add_assign(&mut self, rhs: Self) {
        self.prewarm += rhs.prewarm;
        self.repair += rhs.repair;
    }
}

/// The repair trace of a relation.
#[derive(Debug, Clone, Default)]
pub struct RelationReport {
    /// Per-tuple traces, indexed by row.
    pub tuples: Vec<TupleReport>,
    /// Relation-scoped [`ValueCache`](crate::repair::value_cache::ValueCache)
    /// counters; all-zero for repairers that do not share one (e.g. the
    /// basic chase).
    pub cache: crate::repair::value_cache::CacheStats,
    /// Per-phase wall-clock timings; zero for the basic chase unless an
    /// observability handle is attached (the metrics need real numbers).
    pub timing: PhaseTimings,
    /// Degraded/failed/quarantined counters plus the budget-exhaustion
    /// histogram; all-zero on a healthy run (DESIGN.md §4c).
    pub resilience: ResilienceReport,
    /// Per-row KB read footprints, indexed like [`Self::tuples`] — what
    /// selective re-repair intersects with a delta's footprint to decide
    /// which rows to re-run. Empty for repairers that do not record
    /// (the basic chase).
    pub footprints: Vec<dr_kb::KbFootprint>,
    /// `Some(n)` when this report came from
    /// [`parallel_repair_selective`](crate::repair::parallel::parallel_repair_selective):
    /// `n` rows were actually re-repaired, the rest reused prior results.
    /// `None` on full repairs.
    pub selected_rows: Option<usize>,
}

impl RelationReport {
    /// Total rules applied across all tuples.
    pub fn total_applications(&self) -> usize {
        self.tuples.iter().map(|t| t.steps.len()).sum()
    }

    /// Total value rewrites across all tuples.
    pub fn total_changes(&self) -> usize {
        self.tuples.iter().map(TupleReport::changes).sum()
    }

    /// Recomputes [`Self::resilience`] from the per-tuple outcomes (loader
    /// quarantine and scheduler retry counts are preserved — neither is
    /// derivable from the tuples).
    pub fn tally_resilience(&mut self) {
        let quarantined = self.resilience.quarantined;
        let retried = self.resilience.retried;
        self.resilience = ResilienceReport::tally(&self.tuples);
        self.resilience.quarantined = quarantined;
        self.resilience.retried = retried;
    }
}

/// Repairs one tuple with Algorithm 1: scan the remaining rules for an
/// applicable one, apply it, repeat to fixpoint.
///
/// The element cache is local to the call (the basic algorithm re-derives
/// candidates per rule, which is exactly the cost the fast variant removes —
/// see [`fast`](crate::repair::fast)); correctness is identical.
pub fn basic_repair_tuple(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    tuple: &mut Tuple,
    opts: &ApplyOptions,
) -> TupleReport {
    let meter = ctx.budget().meter();
    let mut remaining: Vec<usize> = (0..rules.len()).collect();
    let mut report = TupleReport::default();
    loop {
        let mut fired: Option<usize> = None;
        // Basic algorithm: no shared cache — every rule check recomputes its
        // element matches (a fresh cache per check).
        for (pos, &ri) in remaining.iter().enumerate() {
            let mut cache = ElementCache::new();
            match apply_rule_metered(ctx, &rules[ri], tuple, opts, &mut cache, &meter) {
                Ok(application) if application.applied() => {
                    report.steps.push(RepairStep {
                        rule_index: ri,
                        rule_name: rules[ri].name().to_owned(),
                        application,
                    });
                    fired = Some(pos);
                    break;
                }
                Ok(_) => {}
                Err(reason) => {
                    // Budget exhausted: keep the completed applications,
                    // skip the remaining rules, degrade the tuple.
                    report.outcome = TupleOutcome::Degraded { reason };
                    return report;
                }
            }
        }
        match fired {
            Some(pos) => {
                remaining.remove(pos);
            }
            None => break,
        }
    }
    report
}

/// Repairs every tuple of `relation` with Algorithm 1.
pub fn basic_repair(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    relation: &mut Relation,
    opts: &ApplyOptions,
) -> RelationReport {
    let obs = ctx.obs();
    let tracer = obs.and_then(|o| o.tracer());
    if let Some(t) = tracer {
        crate::obs::trace_relation_start(t, "basic", relation.len(), rules.len());
        crate::obs::trace_phase(t, "repair", true);
    }
    let tuple_hist = obs.map(|o| o.metrics().histogram("repair_tuple_seconds", &[]));
    let repair_start = std::time::Instant::now();
    let mut report = RelationReport::default();
    for row in 0..relation.len() {
        let tuple = relation.tuple_mut(row);
        let started = tuple_hist.as_ref().map(|_| std::time::Instant::now());
        let tuple_report = basic_repair_tuple(ctx, rules, tuple, opts);
        if let (Some(hist), Some(started)) = (&tuple_hist, started) {
            hist.record(started.elapsed());
        }
        if let Some(o) = obs {
            crate::obs::trace_tuple(o, row, &tuple_report, None);
        }
        report.tuples.push(tuple_report);
    }
    report.tally_resilience();
    if let Some(obs) = obs {
        report.timing.repair = repair_start.elapsed();
        crate::obs::record_relation(obs, "basic", &report);
    }
    if let Some(t) = tracer {
        crate::obs::trace_phase(t, "repair", false);
        crate::obs::trace_relation_end(t, relation.len());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure4_rules, nobel_schema, table1_clean, table1_dirty};
    use dr_kb::fixtures::nobel_mini_kb;
    use dr_relation::GroundTruth;

    /// Example 7: the fixpoint of r1 under all four rules is the fully
    /// repaired, fully marked tuple.
    #[test]
    fn example7_r1_reaches_fixpoint() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let mut r1 = table1_dirty().tuple(0).clone();

        let report = basic_repair_tuple(&ctx, &rules, &mut r1, &ApplyOptions::default());
        assert_eq!(report.steps.len(), 4, "all four rules fire on r1");

        let expect = [
            ("Name", "Avram Hershko"),
            ("DOB", "1937-12-31"),
            ("Country", "Israel"),
            ("Prize", "Nobel Prize in Chemistry"),
            ("Institution", "Israel Institute of Technology"),
            ("City", "Haifa"),
        ];
        for (col, value) in expect {
            let attr = schema.attr_expect(col);
            assert_eq!(r1.get(attr), value, "column {col}");
            assert!(r1.is_positive(attr), "column {col} marked positive");
        }
    }

    /// Whole-table repair of Table I reaches the published clean table
    /// (Calvin resolves to the UC Berkeley variant via candidate ordering).
    #[test]
    fn table1_repairs_to_clean() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut dirty = table1_dirty();
        let report = basic_repair(&ctx, &rules, &mut dirty, &ApplyOptions::default());
        assert!(report.total_applications() >= 12);

        let gt = GroundTruth::new(table1_clean());
        let leftover = gt.erroneous_cells(&dirty);
        assert!(
            leftover.is_empty(),
            "unrepaired cells: {:?} (values {:?})",
            leftover,
            leftover.iter().map(|&c| dirty.value(c)).collect::<Vec<_>>()
        );
    }

    /// Rule application order within the chase does not change the fixpoint
    /// (Church–Rosser for a consistent rule set).
    #[test]
    fn chase_is_order_insensitive_on_table1() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let opts = ApplyOptions::default();

        let mut baseline = table1_dirty();
        basic_repair(&ctx, &rules, &mut baseline, &opts);

        // All 24 permutations of the four rules.
        let perms = permutations(rules.len());
        for perm in perms {
            let reordered: Vec<_> = perm.iter().map(|&i| rules[i].clone()).collect();
            let mut relation = table1_dirty();
            basic_repair(&ctx, &reordered, &mut relation, &opts);
            for cell in relation.cell_refs() {
                assert_eq!(
                    relation.value(cell),
                    baseline.value(cell),
                    "order {perm:?} diverged at {cell:?}"
                );
            }
        }
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut items: Vec<usize> = (0..n).collect();
        heap_permute(&mut items, n, &mut out);
        out
    }

    fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap_permute(items, k - 1, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }

    /// An empty rule set leaves the relation untouched.
    #[test]
    fn empty_rules_do_nothing() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let mut dirty = table1_dirty();
        let report = basic_repair(&ctx, &[], &mut dirty, &ApplyOptions::default());
        assert_eq!(report.total_applications(), 0);
        assert_eq!(dirty.positive_count(), 0);
    }

    /// The trace records the rewrites actually performed.
    #[test]
    fn report_rewrites_match_diff() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let before = table1_dirty();
        let mut after = before.clone();
        let report = basic_repair(&ctx, &rules, &mut after, &ApplyOptions::default());
        for (row, tuple_report) in report.tuples.iter().enumerate() {
            for (col, old, new) in tuple_report.rewrites() {
                assert_eq!(before.tuple(row).get(col), old);
                // `new` must either persist or have been further repaired —
                // marks forbid the latter, so it persists.
                assert_eq!(after.tuple(row).get(col), new);
            }
        }
    }
}
