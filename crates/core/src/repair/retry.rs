//! Configurable retry of `Failed` rows in the parallel scheduler
//! (DESIGN.md §9).
//!
//! The original resilience layer retried a panicked row exactly once, with
//! no delay — the right default for in-process transients (a poisoned
//! thread-local heals immediately), but not a policy a service can tune.
//! [`RetryPolicy`] generalizes it: a bounded number of attempts per row
//! and an exponential backoff between attempts whose jitter is drawn from
//! a seeded splitmix64 stream, so two runs with the same policy sleep the
//! same schedule — retries stay inside the repo's determinism discipline
//! (the same discipline as [`FaultPlan`](crate::repair::fault) seeding and
//! the trace sampler).
//!
//! The scheduler ([`parallel_repair`](crate::repair::parallel)) drives the
//! policy: after each pass drains, rows still `Failed` are re-claimed by
//! fresh workers until they heal or the attempt cap is reached. Every
//! retry attempt is counted in
//! [`ResilienceReport::retried`](crate::repair::resilience::ResilienceReport)
//! and in the `retry_attempts_total{attempt}` metric, which therefore
//! reconcile exactly.

use std::time::Duration;

/// Retry/backoff configuration for `Failed` rows.
///
/// The default reproduces the pre-policy behavior bit for bit: two total
/// attempts (one retry) with zero backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per row, including the first (min 1 — `0` is
    /// normalized to 1, i.e. no retry at all).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles every further attempt.
    /// `ZERO` (the default) sleeps never, whatever the attempt count.
    pub base_backoff: Duration,
    /// Hard ceiling on any single backoff sleep (applied before jitter).
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::from_secs(1),
            seed: 0,
        }
    }
}

/// Fixed jitter fraction: a backoff sleeps between 100% and 150% of its
/// exponential target. Enough spread to de-correlate retry stampedes,
/// small enough that the cap in [`RetryPolicy::max_backoff`] stays
/// meaningful (the ceiling after jitter is 1.5 × `max_backoff`).
const JITTER_FRACTION: f64 = 0.5;

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// A policy with `max_attempts` total attempts and no backoff.
    pub fn with_attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            ..Self::default()
        }
    }

    /// Builder: exponential backoff starting at `base` (doubling per
    /// attempt, capped at `max`).
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// Builder: jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total attempts, normalized to at least one.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// How many retry passes this policy allows beyond the first attempt.
    pub fn max_retries(&self) -> u32 {
        self.attempts() - 1
    }

    /// The backoff to sleep before re-running `row` on attempt `attempt`
    /// (attempts are 1-based; the first retry is attempt 2). Pure function
    /// of `(policy, row, attempt)`: exponential doubling from
    /// [`base_backoff`](Self::base_backoff), capped at
    /// [`max_backoff`](Self::max_backoff), plus 0–50% deterministic jitter
    /// drawn from the seeded splitmix64 stream.
    pub fn backoff(&self, row: usize, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() || attempt < 2 {
            return Duration::ZERO;
        }
        let doublings = (attempt - 2).min(32);
        let target = self
            .base_backoff
            .saturating_mul(1u32 << doublings.min(31))
            .min(self.max_backoff);
        // splitmix64 over (seed, row, attempt): reproducible jitter that
        // still differs per row and per attempt.
        let word = splitmix64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(row as u64)
                .wrapping_add((attempt as u64) << 32),
        );
        let frac = (word >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        target.mul_f64(1.0 + JITTER_FRACTION * frac)
    }
}

/// The splitmix64 mixer (same constants as the trace sampler in `dr-obs`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_legacy_one_shot_retry() {
        let p = RetryPolicy::default();
        assert_eq!(p.attempts(), 2);
        assert_eq!(p.max_retries(), 1);
        assert_eq!(p.backoff(7, 2), Duration::ZERO, "zero base never sleeps");
    }

    #[test]
    fn zero_attempts_normalizes_to_one() {
        let p = RetryPolicy::with_attempts(0);
        assert_eq!(p.attempts(), 1);
        assert_eq!(p.max_retries(), 0);
        assert!(RetryPolicy::none().max_retries() == 0);
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy::with_attempts(6)
            .with_backoff(Duration::from_millis(10), Duration::from_millis(80))
            .with_seed(42);
        for attempt in 2..=6 {
            for row in [0usize, 3, 999] {
                assert_eq!(
                    p.backoff(row, attempt),
                    p.backoff(row, attempt),
                    "same (seed,row,attempt) must sleep the same"
                );
                // Never below the exponential target, never above cap + 50%.
                let floor = Duration::from_millis(10 << (attempt - 2).min(3));
                let floor = floor.min(Duration::from_millis(80));
                let b = p.backoff(row, attempt);
                assert!(b >= floor, "attempt {attempt} row {row}: {b:?} < {floor:?}");
                assert!(b <= Duration::from_millis(120), "{b:?} breaches cap*1.5");
            }
        }
        // Different seeds give different jitter (with overwhelming odds).
        let q = p.with_seed(43);
        assert_ne!(p.backoff(1, 2), q.backoff(1, 2));
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let p = RetryPolicy::with_attempts(8)
            .with_backoff(Duration::from_millis(4), Duration::from_secs(60));
        // Strip jitter by comparing lower bounds: the target doubles.
        let floor = |attempt: u32| Duration::from_millis(4u64 << (attempt - 2));
        for attempt in 2..=5 {
            let b = p.backoff(0, attempt);
            assert!(b >= floor(attempt), "attempt {attempt}: {b:?}");
            assert!(b < floor(attempt).mul_f64(1.5) + Duration::from_nanos(1));
        }
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let p = RetryPolicy::with_attempts(u32::MAX)
            .with_backoff(Duration::from_secs(1), Duration::from_secs(5));
        let b = p.backoff(usize::MAX, u32::MAX);
        assert!(b <= Duration::from_millis(7500));
    }
}
