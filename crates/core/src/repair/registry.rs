//! Persistent, schema-keyed registry of shared [`ValueCache`]s — level 0 of
//! the caching hierarchy (DESIGN.md §4a).
//!
//! A [`ValueCache`]'s entries are pure functions of one immutable KB, keyed
//! by cell values of one schema's columns. Server-style workloads repair
//! *streams* of relations over the same schema (batches of rows, repeated
//! uploads, partitioned tables), and every batch re-derives the same
//! candidate sets from scratch when the cache dies with the relation. The
//! `CacheRegistry` keeps those caches alive across relations: callers ask
//! for the cache belonging to `(KB generation, schema fingerprint)` and get
//! the same warm instance back for as long as both stay live.
//!
//! Invalidation is by construction rather than by scanning:
//!
//! * **KB generation** — every finalized [`KnowledgeBase`] carries a
//!   process-unique generation id, and it is part of the cache key. A
//!   rebuilt (even byte-identical) KB has a new generation, so entries
//!   computed against a stale KB can never be served — they are simply
//!   unreachable under the new key.
//! * **Schema fingerprint** — hash of the relation name and ordered
//!   attribute names; schema changes re-key the cache the same way.
//!
//! A [`dr_kb::KbDelta`] applied *in place* is the one mutation that should
//! NOT cold-start everything: [`CacheRegistry::apply_delta`] re-keys the old
//! generation's caches to the new generation, sweeping only the entries
//! whose recorded footprint intersects the delta's [`KbFootprint`]
//! ([`ValueCache::invalidate`]); everything else stays warm across the
//! generation bump.
//!
//! Memory is bounded twice: each `ValueCache` evicts entries under its own
//! budget (clock over per-shard entry counts, see
//! [`ValueCacheConfig`]), and the registry itself retains at most
//! `max_caches` distinct caches, dropping the least recently used whole
//! cache beyond that.
//!
//! ## Disk snapshots (cross-process warm starts)
//!
//! With a [`RegistryConfig::cache_dir`], the registry adds a persistence
//! tier below the in-process pool (see [`crate::repair::snapshot`] for the
//! file format). Disk files are keyed by `(KB content hash, schema
//! fingerprint)` — the *content* hash, not the process-local generation —
//! so a later process that rebuilds the same KB warm-starts from the files
//! an earlier process left behind:
//!
//! * a **cold miss** first tries the snapshot file for the key; a valid one
//!   seeds the fresh cache (`snapshot.warm_loads`), anything else — missing
//!   file, corruption, key mismatch, out-of-range ids — degrades to a cold
//!   cache with a capped diagnostic (`snapshot_diagnostics`), never an
//!   error;
//! * **eviction writes back**: a cache dropped by LRU pressure or
//!   [`CacheRegistry::evict_stale`] is snapshotted to disk first, so its
//!   working set survives its in-memory death;
//! * [`CacheRegistry::persist`] flushes every live cache, bounded by
//!   [`RegistryConfig::max_persist_entries`] hottest entries each (the
//!   clock/second-chance bits decide what is hot).

use crate::repair::snapshot::{self, SnapshotKey, SnapshotPayload};
use crate::repair::value_cache::{ValueCache, ValueCacheConfig};
use dr_kb::{FxHashMap, KbFootprint, KbRef};
use dr_obs::{Counter, MetricRegistry};
use dr_relation::Schema;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

/// Cache identity: (KB generation, schema fingerprint).
pub type CacheKey = (u64, u64);

/// Most diagnostics retained by the snapshot ledger; later ones are counted
/// but dropped (same discipline as [`dr_kb::LenientOptions`]).
const MAX_SNAPSHOT_DIAGNOSTICS: usize = 64;

/// Sizing knobs for a [`CacheRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Entry budget for each retained [`ValueCache`] (`0` = unbounded).
    pub max_entries_per_cache: usize,
    /// Shard count per cache (`0` = derive from `threads`).
    pub shards: usize,
    /// Worker-count hint used to size shards when `shards == 0`.
    pub threads: usize,
    /// Distinct `(KB, schema)` caches retained; beyond this the least
    /// recently used cache is dropped. Must be at least 1.
    pub max_caches: usize,
    /// Directory for cross-process cache snapshots. `None` (the default)
    /// disables persistence entirely.
    pub cache_dir: Option<PathBuf>,
    /// Entry budget per persisted snapshot (`0` = persist everything). The
    /// hottest entries per shard — by the clock referenced bit — are kept.
    pub max_persist_entries: usize,
    /// Garbage collection of the snapshot directory, run by
    /// [`CacheRegistry::persist`].
    pub gc: SnapshotGcConfig,
}

/// Bounds on the snapshot directory, enforced after every
/// [`CacheRegistry::persist`]. A cache dir accretes files forever
/// otherwise: every distinct `(KB content, schema)` pair leaves a
/// `.drsnap` behind, and a crashed writer leaves `.tmp` orphans that no
/// rename will ever claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotGcConfig {
    /// Retain at most this many `.drsnap` files; beyond it the oldest
    /// (by mtime) files not belonging to a live in-memory cache are
    /// removed. `0` disables GC entirely.
    pub max_snapshots: usize,
    /// Never remove a `.drsnap` younger than this, even over the count
    /// cap — a concurrent writer's fresh output is not an orphan.
    pub min_prune_age: Duration,
    /// Remove `.tmp` write leftovers (`.vc-*.tmp`, `*.drkb.tmp`) older
    /// than this; younger ones may still be mid-rename in another
    /// process.
    pub max_tmp_age: Duration,
}

impl Default for SnapshotGcConfig {
    fn default() -> Self {
        Self {
            max_snapshots: 256,
            min_prune_age: Duration::from_secs(300),
            max_tmp_age: Duration::from_secs(3600),
        }
    }
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            max_entries_per_cache: 0,
            shards: 0,
            threads: 0,
            max_caches: 8,
            cache_dir: None,
            max_persist_entries: 1 << 16,
            gc: SnapshotGcConfig::default(),
        }
    }
}

impl RegistryConfig {
    /// Returns the config with snapshot persistence rooted at `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Returns the config with the given snapshot-directory GC policy.
    #[must_use]
    pub fn with_gc(mut self, gc: SnapshotGcConfig) -> Self {
        self.gc = gc;
        self
    }

    /// The per-cache [`ValueCacheConfig`] this registry hands out.
    fn cache_config(&self) -> ValueCacheConfig {
        let base = if self.shards != 0 {
            ValueCacheConfig {
                shards: self.shards,
                max_entries: 0,
            }
        } else {
            let threads = if self.threads != 0 {
                self.threads
            } else {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            };
            ValueCacheConfig::for_threads(threads)
        };
        base.with_max_entries(self.max_entries_per_cache)
    }
}

/// Disk-snapshot counters, nested in [`RegistryStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Fresh caches successfully seeded from a disk snapshot.
    pub warm_loads: u64,
    /// Fresh caches that found no usable snapshot (missing or rejected).
    pub cold_loads: u64,
    /// Snapshots that existed but were rejected (corrupt, key-mismatched,
    /// or holding out-of-range ids) — a subset of `cold_loads`.
    pub rejected: u64,
    /// Snapshots written to disk (explicit persists and eviction
    /// write-backs).
    pub saves: u64,
    /// Snapshot-directory files removed by GC (`.drsnap` pruned over the
    /// count cap plus orphaned `.tmp` leftovers).
    pub gc_removed: u64,
}

impl SnapshotStats {
    /// Counter deltas since an `earlier` snapshot of the same registry.
    #[must_use]
    pub fn delta_since(&self, earlier: &SnapshotStats) -> SnapshotStats {
        SnapshotStats {
            warm_loads: self.warm_loads.saturating_sub(earlier.warm_loads),
            cold_loads: self.cold_loads.saturating_sub(earlier.cold_loads),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            saves: self.saves.saturating_sub(earlier.saves),
            gc_removed: self.gc_removed.saturating_sub(earlier.gc_removed),
        }
    }
}

impl std::ops::AddAssign for SnapshotStats {
    fn add_assign(&mut self, rhs: Self) {
        self.warm_loads += rhs.warm_loads;
        self.cold_loads += rhs.cold_loads;
        self.rejected += rhs.rejected;
        self.saves += rhs.saves;
        self.gc_removed += rhs.gc_removed;
    }
}

/// Registry-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Lookups that found a live cache for the key (warm starts).
    pub warm_hits: u64,
    /// Lookups that created a fresh cache (cold starts).
    pub cold_misses: u64,
    /// Whole caches dropped to stay under `max_caches`.
    pub evicted_caches: u64,
    /// Entries swept by footprint intersection across all
    /// [`CacheRegistry::apply_delta`] calls.
    pub invalidated_entries: u64,
    /// Caches currently retained.
    pub live_caches: usize,
    /// Total entries across all retained caches.
    pub live_entries: usize,
    /// Disk-snapshot activity (all zeros without a `cache_dir`).
    pub snapshot: SnapshotStats,
}

impl RegistryStats {
    /// Counter deltas since an `earlier` snapshot of the same registry;
    /// the point-in-time gauges (`live_caches`, `live_entries`) keep their
    /// later values.
    #[must_use]
    pub fn delta_since(&self, earlier: &RegistryStats) -> RegistryStats {
        RegistryStats {
            warm_hits: self.warm_hits.saturating_sub(earlier.warm_hits),
            cold_misses: self.cold_misses.saturating_sub(earlier.cold_misses),
            evicted_caches: self.evicted_caches.saturating_sub(earlier.evicted_caches),
            invalidated_entries: self
                .invalidated_entries
                .saturating_sub(earlier.invalidated_entries),
            live_caches: self.live_caches,
            live_entries: self.live_entries,
            snapshot: self.snapshot.delta_since(&earlier.snapshot),
        }
    }
}

struct Slot {
    cache: Arc<ValueCache>,
    last_used: u64,
    /// Disk identity, captured at creation when persistence is on. `None`
    /// for slots created without a live KB in hand (or with persistence
    /// off): they are never written to disk.
    disk_key: Option<SnapshotKey>,
}

/// A process-lifetime pool of schema-keyed [`ValueCache`]s.
pub struct CacheRegistry {
    config: RegistryConfig,
    slots: Mutex<FxHashMap<CacheKey, Slot>>,
    clock: AtomicU64,
    // `dr_obs::Counter` cells, so an attached observability registry can
    // expose the same storage [`Self::stats`] reads (see
    // [`Self::register_metrics`]) — no dual bookkeeping.
    warm_hits: Counter,
    cold_misses: Counter,
    evicted_caches: Counter,
    invalidated_entries: Counter,
    snapshot_warm_loads: Counter,
    snapshot_cold_loads: Counter,
    snapshot_rejected: Counter,
    snapshot_saves: Counter,
    snapshot_gc_removed: Counter,
    snapshot_diagnostics: Mutex<Vec<String>>,
}

impl Default for CacheRegistry {
    fn default() -> Self {
        Self::new(RegistryConfig::default())
    }
}

impl CacheRegistry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        assert!(config.max_caches >= 1, "max_caches must be at least 1");
        Self {
            config,
            slots: Mutex::new(FxHashMap::default()),
            clock: AtomicU64::new(0),
            warm_hits: Counter::new(),
            cold_misses: Counter::new(),
            evicted_caches: Counter::new(),
            invalidated_entries: Counter::new(),
            snapshot_warm_loads: Counter::new(),
            snapshot_cold_loads: Counter::new(),
            snapshot_rejected: Counter::new(),
            snapshot_saves: Counter::new(),
            snapshot_gc_removed: Counter::new(),
            snapshot_diagnostics: Mutex::new(Vec::new()),
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Attaches this registry's counter cells to `metrics` under the
    /// `cache_registry_*` / `snapshot_*` metric names. Idempotent; live
    /// caches register their own cells as they are handed out (see
    /// [`crate::context::MatchContext::value_cache_for`]).
    pub fn register_metrics(&self, metrics: &MetricRegistry) {
        metrics.register_counter("cache_registry_warm_hits_total", &[], &self.warm_hits);
        metrics.register_counter("cache_registry_cold_misses_total", &[], &self.cold_misses);
        metrics.register_counter(
            "cache_registry_evicted_caches_total",
            &[],
            &self.evicted_caches,
        );
        metrics.register_counter(
            "cache_invalidated_entries_total",
            &[],
            &self.invalidated_entries,
        );
        metrics.register_counter("snapshot_warm_loads_total", &[], &self.snapshot_warm_loads);
        metrics.register_counter("snapshot_cold_loads_total", &[], &self.snapshot_cold_loads);
        metrics.register_counter("snapshot_rejected_total", &[], &self.snapshot_rejected);
        metrics.register_counter("snapshot_saves_total", &[], &self.snapshot_saves);
        metrics.register_counter("snapshot_gc_removed_total", &[], &self.snapshot_gc_removed);
    }

    /// The shared cache for `(kb, schema)`, creating (and, beyond
    /// `max_caches`, evicting the least recently used) as needed. Repeated
    /// calls with the same live KB and an equal schema return the same warm
    /// instance.
    ///
    /// With a [`RegistryConfig::cache_dir`], a newly created cache is first
    /// seeded from the disk snapshot keyed by `(kb content hash, schema
    /// fingerprint)` when a valid one exists; missing or corrupt snapshots
    /// degrade to a cold start and leave a diagnostic, never an error.
    pub fn cache_for<'a>(&self, kb: impl Into<KbRef<'a>>, schema: &Schema) -> Arc<ValueCache> {
        let kb = kb.into();
        let disk_key = self
            .config
            .cache_dir
            .is_some()
            .then(|| SnapshotKey::for_pair(kb, schema));
        let (cache, created) =
            self.lookup_or_create((kb.generation(), schema.fingerprint()), disk_key);
        if created {
            if let (Some(dir), Some(key)) = (self.config.cache_dir.as_deref(), disk_key) {
                self.seed_from_disk(dir, key, kb, schema, &cache);
            }
        }
        cache
    }

    /// Returns the cache for `key` and whether this call created it.
    /// Evicted LRU victims are written back to disk (outside the pool lock).
    fn lookup_or_create(
        &self,
        key: CacheKey,
        disk_key: Option<SnapshotKey>,
    ) -> (Arc<ValueCache>, bool) {
        let stamp = self.clock.fetch_add(1, Relaxed) + 1;
        let mut victims: Vec<(SnapshotKey, Arc<ValueCache>)> = Vec::new();
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.get_mut(&key) {
            slot.last_used = stamp;
            self.warm_hits.inc();
            return (Arc::clone(&slot.cache), false);
        }
        self.cold_misses.inc();
        while slots.len() >= self.config.max_caches {
            let lru = slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(&k, _)| k);
            match lru {
                Some(k) => {
                    if let Some(slot) = slots.remove(&k) {
                        if let Some(dk) = slot.disk_key {
                            victims.push((dk, slot.cache));
                        }
                    }
                    self.evicted_caches.inc();
                }
                None => break,
            }
        }
        let cache = Arc::new(ValueCache::with_config(self.config.cache_config()));
        slots.insert(
            key,
            Slot {
                cache: Arc::clone(&cache),
                last_used: stamp,
                disk_key,
            },
        );
        drop(slots);
        self.write_back(victims);
        (cache, true)
    }

    /// Migrates every cache of `old_generation` across a KB delta: sweeps
    /// the entries whose recorded footprint intersects `fp`
    /// ([`ValueCache::invalidate`]), re-keys the cache under
    /// `new_generation`, and re-points its disk identity at
    /// `new_content_hash` so later persists land under the post-delta KB's
    /// key. Returns the number of entries swept (also accumulated into the
    /// `cache_invalidated_entries_total` metric).
    ///
    /// Everything the delta did not touch survives warm — this is the whole
    /// point of footprint-based invalidation; compare
    /// [`Self::evict_stale`], which drops stale caches wholesale.
    pub fn apply_delta(
        &self,
        old_generation: u64,
        new_generation: u64,
        new_content_hash: u64,
        fp: &KbFootprint,
    ) -> u64 {
        let mut invalidated = 0u64;
        let mut slots = self.slots.lock();
        let keys: Vec<CacheKey> = slots
            .keys()
            .filter(|&&(generation, _)| generation == old_generation)
            .copied()
            .collect();
        for key in keys {
            let Some(mut slot) = slots.remove(&key) else {
                continue;
            };
            invalidated += slot.cache.invalidate(fp);
            if let Some(dk) = slot.disk_key.as_mut() {
                dk.kb_content_hash = new_content_hash;
            }
            slots.insert((new_generation, key.1), slot);
        }
        drop(slots);
        if invalidated > 0 {
            self.invalidated_entries.add(invalidated);
        }
        invalidated
    }

    /// Drops every cache belonging to `generation` — the unload path: a KB
    /// removed from a serving pool releases its cache memory immediately.
    /// Evicted caches with a disk identity are snapshotted first, exactly
    /// like LRU victims. Returns how many caches were dropped.
    pub fn evict_generation(&self, generation: u64) -> usize {
        let mut victims: Vec<(SnapshotKey, Arc<ValueCache>)> = Vec::new();
        let mut slots = self.slots.lock();
        let before = slots.len();
        slots.retain(|&(g, _), slot| {
            let keep = g != generation;
            if !keep {
                if let Some(dk) = slot.disk_key {
                    victims.push((dk, Arc::clone(&slot.cache)));
                }
            }
            keep
        });
        let dropped = before - slots.len();
        if dropped > 0 {
            self.evicted_caches.add(dropped as u64);
        }
        drop(slots);
        self.write_back(victims);
        dropped
    }

    /// Drops every cache not belonging to `live_generation` — for
    /// server-style workloads that rebuild their KB in place and want the
    /// stale caches' memory back immediately instead of waiting for LRU
    /// pressure. (Correctness never depends on this: stale generations are
    /// unreachable through [`Self::cache_for`] regardless.) Evicted caches
    /// with a disk identity are snapshotted to disk first.
    pub fn evict_stale(&self, live_generation: u64) {
        let mut victims: Vec<(SnapshotKey, Arc<ValueCache>)> = Vec::new();
        let mut slots = self.slots.lock();
        let before = slots.len();
        slots.retain(|&(generation, _), slot| {
            let keep = generation == live_generation;
            if !keep {
                if let Some(dk) = slot.disk_key {
                    victims.push((dk, Arc::clone(&slot.cache)));
                }
            }
            keep
        });
        let dropped = (before - slots.len()) as u64;
        if dropped > 0 {
            self.evicted_caches.add(dropped);
        }
        drop(slots);
        self.write_back(victims);
    }

    /// Writes every live cache that has a disk identity to the cache
    /// directory, bounded by [`RegistryConfig::max_persist_entries`] hottest
    /// entries each, then garbage-collects the snapshot directory (see
    /// [`SnapshotGcConfig`]). Returns the number of snapshots written. A
    /// no-op (returning 0) without a `cache_dir`.
    pub fn persist(&self) -> usize {
        let targets: Vec<(SnapshotKey, Arc<ValueCache>)> = {
            let slots = self.slots.lock();
            slots
                .values()
                .filter_map(|s| s.disk_key.map(|k| (k, Arc::clone(&s.cache))))
                .collect()
        };
        let saved = self.write_back(targets);
        self.gc_snapshots();
        saved
    }

    /// Enforces [`SnapshotGcConfig`] on the cache directory: removes aged
    /// `.tmp` write leftovers, then prunes the oldest `.drsnap` files over
    /// the count cap — skipping files that back a live in-memory cache and
    /// files younger than `min_prune_age`, so a concurrent writer's output
    /// is never reaped. Unreadable directories and racing deletes are
    /// ignored: GC is best-effort by design.
    fn gc_snapshots(&self) {
        let Some(dir) = self.config.cache_dir.as_deref() else {
            return;
        };
        let gc = self.config.gc;
        if gc.max_snapshots == 0 {
            return;
        }
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let now = SystemTime::now();
        let age_of = |mtime: SystemTime| now.duration_since(mtime).unwrap_or_default();
        let live: std::collections::HashSet<PathBuf> = {
            let slots = self.slots.lock();
            slots
                .values()
                .filter_map(|s| s.disk_key.map(|k| k.path_in(dir)))
                .collect()
        };
        let mut snaps: Vec<(PathBuf, SystemTime)> = Vec::new();
        let mut removed = 0u64;
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Ok(meta) = entry.metadata() else {
                continue;
            };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(now);
            let orphan_tmp = name.ends_with(".tmp")
                && (name.starts_with(".vc-")
                    || name.ends_with(format!(".{}.tmp", dr_kb::image::EXTENSION).as_str()));
            if orphan_tmp {
                if age_of(mtime) >= gc.max_tmp_age && std::fs::remove_file(&path).is_ok() {
                    removed += 1;
                }
            } else if name.ends_with(&format!(".{}", snapshot::EXTENSION)) {
                snaps.push((path, mtime));
            }
        }
        if snaps.len() > gc.max_snapshots {
            snaps.sort_by_key(|&(_, mtime)| mtime);
            let mut excess = snaps.len() - gc.max_snapshots;
            for (path, mtime) in snaps {
                if excess == 0 {
                    break;
                }
                if live.contains(&path) || age_of(mtime) < gc.min_prune_age {
                    continue;
                }
                if std::fs::remove_file(&path).is_ok() {
                    removed += 1;
                    excess -= 1;
                }
            }
        }
        if removed > 0 {
            self.snapshot_gc_removed.add(removed);
        }
    }

    /// Saves `(key, cache)` pairs to disk; shared by [`Self::persist`] and
    /// the eviction paths. Empty caches are skipped.
    fn write_back(&self, targets: Vec<(SnapshotKey, Arc<ValueCache>)>) -> usize {
        let Some(dir) = self.config.cache_dir.as_deref() else {
            return 0;
        };
        let mut saved = 0;
        for (key, cache) in targets {
            let payload = cache.export_hottest(self.config.max_persist_entries);
            if payload.is_empty() {
                continue;
            }
            match snapshot::write_snapshot(dir, key, &payload) {
                Ok(_) => {
                    self.snapshot_saves.inc();
                    saved += 1;
                }
                Err(e) => self.record_diagnostic(format!(
                    "snapshot save kb={:#x} schema={:#x}: {e}",
                    key.kb_content_hash, key.schema_fingerprint
                )),
            }
        }
        saved
    }

    /// Seeds a freshly created cache from its disk snapshot, if a usable one
    /// exists. Every failure mode is a cold start; corruption (as opposed to
    /// simple absence) additionally counts as `rejected` and leaves a
    /// diagnostic.
    fn seed_from_disk(
        &self,
        dir: &Path,
        key: SnapshotKey,
        kb: KbRef<'_>,
        schema: &Schema,
        cache: &ValueCache,
    ) {
        let loaded = snapshot::read_snapshot(dir, key)
            .and_then(|payload| payload.validate(kb, schema).map(|()| payload));
        match loaded {
            Ok(payload) => {
                cache.import(&payload);
                self.snapshot_warm_loads.inc();
            }
            Err(e) => {
                cache.mark_snapshot_cold();
                self.snapshot_cold_loads.inc();
                if !e.is_absence() {
                    self.snapshot_rejected.inc();
                    self.record_diagnostic(format!(
                        "snapshot load kb={:#x} schema={:#x}: {e}",
                        key.kb_content_hash, key.schema_fingerprint
                    ));
                }
            }
        }
    }

    fn record_diagnostic(&self, message: String) {
        let mut diags = self.snapshot_diagnostics.lock();
        if diags.len() < MAX_SNAPSHOT_DIAGNOSTICS {
            diags.push(message);
        }
    }

    /// Quarantine-style ledger of snapshot load/save failures (capped at
    /// [`MAX_SNAPSHOT_DIAGNOSTICS`]; absence of a snapshot file is routine
    /// and never recorded).
    pub fn snapshot_diagnostics(&self) -> Vec<String> {
        self.snapshot_diagnostics.lock().clone()
    }

    /// Exports the portable payload for `(kb, schema)`'s live cache —
    /// what [`Self::persist`] would write for it. Mostly for tests and
    /// tooling; `None` when no live cache exists for the pair.
    pub fn export_payload<'a>(
        &self,
        kb: impl Into<KbRef<'a>>,
        schema: &Schema,
    ) -> Option<SnapshotPayload> {
        let key = (kb.into().generation(), schema.fingerprint());
        let slots = self.slots.lock();
        slots
            .get(&key)
            .map(|s| s.cache.export_hottest(self.config.max_persist_entries))
    }

    /// Snapshot of the registry counters.
    pub fn stats(&self) -> RegistryStats {
        let slots = self.slots.lock();
        RegistryStats {
            warm_hits: self.warm_hits.get(),
            cold_misses: self.cold_misses.get(),
            evicted_caches: self.evicted_caches.get(),
            invalidated_entries: self.invalidated_entries.get(),
            live_caches: slots.len(),
            live_entries: slots.values().map(|s| s.cache.len()).sum(),
            snapshot: SnapshotStats {
                warm_loads: self.snapshot_warm_loads.get(),
                cold_loads: self.snapshot_cold_loads.get(),
                rejected: self.snapshot_rejected.get(),
                saves: self.snapshot_saves.get(),
                gc_removed: self.snapshot_gc_removed.get(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MatchContext;
    use crate::fixtures::nobel_schema;
    use crate::graph::schema::{NodeType, SchemaNode};
    use dr_kb::fixtures::{names, nobel_mini_kb};
    use dr_kb::KnowledgeBase;
    use dr_simmatch::SimFn;

    fn city_node(kb: &KnowledgeBase) -> SchemaNode {
        SchemaNode::new(
            nobel_schema().attr_expect("City"),
            NodeType::Class(kb.class_named(names::CITY).unwrap()),
            SimFn::Equal,
        )
    }

    #[test]
    fn same_kb_and_schema_warm_start() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let registry = CacheRegistry::default();
        let a = registry.cache_for(&kb, &schema);
        let b = registry.cache_for(&kb, &schema);
        assert!(Arc::ptr_eq(&a, &b), "same key must return the same cache");
        let stats = registry.stats();
        assert_eq!((stats.warm_hits, stats.cold_misses), (1, 1));
        assert_eq!(stats.live_caches, 1);
    }

    #[test]
    fn entries_persist_across_lookups() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let ctx = MatchContext::new(&kb);
        let registry = CacheRegistry::default();
        let node = city_node(&kb);

        let warm = registry.cache_for(&kb, &schema);
        let _ = warm.candidates(&ctx, &node, "Haifa");
        drop(warm);

        // A later "relation" of the same schema sees the warm entry.
        let again = registry.cache_for(&kb, &schema);
        let _ = again.candidates(&ctx, &node, "Haifa");
        assert_eq!(again.stats().node_hits, 1);
        assert!(registry.stats().live_entries >= 1);
    }

    /// A rebuilt KB (new generation) must never be served entries computed
    /// against the old one — the key changes, so the old cache is invisible.
    #[test]
    fn stale_kb_generation_is_never_served() {
        let schema = nobel_schema();
        let registry = CacheRegistry::default();

        let kb1 = nobel_mini_kb();
        let node = city_node(&kb1);
        {
            let ctx = MatchContext::new(&kb1);
            let cache = registry.cache_for(&kb1, &schema);
            let _ = cache.candidates(&ctx, &node, "Haifa");
            assert_eq!(cache.stats().node_misses, 1);
        }

        // Same content, new generation: a fresh, empty cache.
        let kb2 = nobel_mini_kb();
        assert_ne!(kb1.generation(), kb2.generation());
        let cache = registry.cache_for(&kb2, &schema);
        assert!(cache.is_empty(), "stale entries must be unreachable");
        let stats = cache.stats();
        assert_eq!((stats.node_hits, stats.node_misses), (0, 0));
        assert_eq!(registry.stats().cold_misses, 2);
    }

    #[test]
    fn distinct_schemas_get_distinct_caches() {
        let kb = nobel_mini_kb();
        let registry = CacheRegistry::default();
        let a = registry.cache_for(&kb, &nobel_schema());
        let b = registry.cache_for(&kb, &dr_relation::Schema::new("Other", &["X", "Y"]));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(registry.stats().live_caches, 2);
    }

    #[test]
    fn lru_cache_eviction_beyond_max_caches() {
        let kb = nobel_mini_kb();
        let registry = CacheRegistry::new(RegistryConfig {
            max_caches: 2,
            ..Default::default()
        });
        let s1 = dr_relation::Schema::new("R1", &["A"]);
        let s2 = dr_relation::Schema::new("R2", &["A"]);
        let s3 = dr_relation::Schema::new("R3", &["A"]);
        let c1 = registry.cache_for(&kb, &s1);
        let _c2 = registry.cache_for(&kb, &s2);
        // Touch R1 so R2 is the LRU, then overflow.
        let _ = registry.cache_for(&kb, &s1);
        let _c3 = registry.cache_for(&kb, &s3);
        let stats = registry.stats();
        assert_eq!(stats.live_caches, 2);
        assert_eq!(stats.evicted_caches, 1);
        // R1 survived (same instance), R2 did not: re-asking for R1 is warm
        // (cold misses stay at the three creations), re-asking for R2 is not.
        assert!(Arc::ptr_eq(&c1, &registry.cache_for(&kb, &s1)));
        assert_eq!(registry.stats().cold_misses, 3);
        let _ = registry.cache_for(&kb, &s2);
        assert_eq!(registry.stats().cold_misses, 4);
    }

    #[test]
    fn evict_stale_drops_dead_generations() {
        let schema = nobel_schema();
        let registry = CacheRegistry::default();
        let kb1 = nobel_mini_kb();
        let kb2 = nobel_mini_kb();
        let _ = registry.cache_for(&kb1, &schema);
        let _ = registry.cache_for(&kb2, &schema);
        assert_eq!(registry.stats().live_caches, 2);
        registry.evict_stale(kb2.generation());
        let stats = registry.stats();
        assert_eq!(stats.live_caches, 1);
        assert_eq!(stats.evicted_caches, 1);
        // The survivor is kb2's cache.
        let survivor = registry.cache_for(&kb2, &schema);
        assert_eq!(registry.stats().warm_hits, 1);
        drop(survivor);
    }

    /// apply_delta migrates the cache to the new generation, sweeping only
    /// the entries the footprint touches; untouched entries survive warm
    /// under the *new* key while the old key becomes a cold miss.
    #[test]
    fn apply_delta_rekeys_and_sweeps_intersecting_entries() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let registry = CacheRegistry::default();
        let ctx = MatchContext::new(&kb);
        let city = city_node(&kb);
        let country = SchemaNode::new(
            nobel_schema().attr_expect("Country"),
            NodeType::Class(kb.class_named(names::COUNTRY).unwrap()),
            SimFn::Equal,
        );
        let cache = registry.cache_for(&kb, &schema);
        let _ = cache.candidates(&ctx, &city, "Haifa");
        let _ = cache.candidates(&ctx, &country, "Israel");
        assert_eq!(cache.len(), 2);

        let mut fp = KbFootprint::new();
        fp.classes.insert(kb.class_named(names::CITY).unwrap());
        let new_gen = kb.generation() + 1_000_000; // simulated bump
        let swept = registry.apply_delta(kb.generation(), new_gen, 0xFEED, &fp);
        assert_eq!(swept, 1, "only the city entry intersects");
        assert_eq!(registry.stats().invalidated_entries, 1);
        assert_eq!(registry.stats().live_caches, 1);
        assert_eq!(cache.len(), 1, "country entry survives the sweep");
        // The old generation no longer resolves to the migrated cache.
        let old_key_cache = registry.cache_for(&kb, &schema);
        assert!(!Arc::ptr_eq(&cache, &old_key_cache));
        assert_eq!(registry.stats().cold_misses, 2);
    }

    #[test]
    fn evict_generation_drops_only_that_generation() {
        let schema = nobel_schema();
        let registry = CacheRegistry::default();
        let kb1 = nobel_mini_kb();
        let kb2 = nobel_mini_kb();
        let _ = registry.cache_for(&kb1, &schema);
        let survivor = registry.cache_for(&kb2, &schema);
        assert_eq!(registry.evict_generation(kb1.generation()), 1);
        let stats = registry.stats();
        assert_eq!(stats.live_caches, 1);
        assert_eq!(stats.evicted_caches, 1);
        assert!(Arc::ptr_eq(&survivor, &registry.cache_for(&kb2, &schema)));
        assert_eq!(registry.evict_generation(kb1.generation()), 0);
    }

    #[test]
    #[should_panic(expected = "max_caches")]
    fn zero_max_caches_is_rejected() {
        let _ = CacheRegistry::new(RegistryConfig {
            max_caches: 0,
            ..Default::default()
        });
    }

    // ----- disk snapshots -------------------------------------------------

    /// A unique throwaway directory per test (std-only tempdir).
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU32;
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dr-registry-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn persisting_registry(dir: &std::path::Path) -> CacheRegistry {
        CacheRegistry::new(RegistryConfig::default().with_cache_dir(dir))
    }

    /// persist() → fresh registry (simulating a new process) → warm load:
    /// the same entries answer as hits, and both sides count it.
    #[test]
    fn persisted_snapshot_warms_a_fresh_registry() {
        let dir = scratch_dir("warm");
        let schema = nobel_schema();
        let kb = nobel_mini_kb();
        let node = city_node(&kb);

        let first = persisting_registry(&dir);
        {
            let ctx = MatchContext::new(&kb);
            let cache = first.cache_for(&kb, &schema);
            let _ = cache.candidates(&ctx, &node, "Haifa");
            let _ = cache.candidates(&ctx, &node, "Karcag");
        }
        assert_eq!(first.persist(), 1);
        let s = first.stats();
        assert_eq!(s.snapshot.saves, 1);
        assert_eq!(s.snapshot.cold_loads, 1, "first process started cold");

        // A brand-new registry *and* a rebuilt KB: the generation differs,
        // the content hash does not, so the snapshot applies.
        let kb2 = nobel_mini_kb();
        assert_ne!(kb.generation(), kb2.generation());
        let second = persisting_registry(&dir);
        let cache = second.cache_for(&kb2, &schema);
        assert_eq!(cache.stats().snapshot_warm, 2, "both entries seeded");
        let ctx = MatchContext::new(&kb2);
        let node2 = city_node(&kb2);
        let _ = cache.candidates(&ctx, &node2, "Haifa");
        assert_eq!(cache.stats().node_hits, 1);
        assert_eq!(cache.stats().node_misses, 0);
        let s = second.stats();
        assert_eq!(s.snapshot.warm_loads, 1);
        assert_eq!(s.snapshot.rejected, 0);
        assert!(second.snapshot_diagnostics().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A corrupt snapshot file degrades to a cold cache with a diagnostic —
    /// never an error, never partial state.
    #[test]
    fn corrupt_snapshot_degrades_to_cold_with_diagnostic() {
        let dir = scratch_dir("corrupt");
        let schema = nobel_schema();
        let kb = nobel_mini_kb();
        let node = city_node(&kb);
        {
            let first = persisting_registry(&dir);
            let ctx = MatchContext::new(&kb);
            let cache = first.cache_for(&kb, &schema);
            let _ = cache.candidates(&ctx, &node, "Haifa");
            assert_eq!(first.persist(), 1);
        }
        let key = crate::repair::snapshot::SnapshotKey::for_pair(&kb, &schema);
        let path = key.path_in(&dir);
        let mut bytes = std::fs::read(&path).expect("snapshot exists");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite");

        let second = persisting_registry(&dir);
        let cache = second.cache_for(&kb, &schema);
        assert!(cache.is_empty(), "no partial state from a corrupt file");
        assert_eq!(cache.stats().snapshot_cold, 1);
        let s = second.stats();
        assert_eq!(s.snapshot.warm_loads, 0);
        assert_eq!(s.snapshot.cold_loads, 1);
        assert_eq!(s.snapshot.rejected, 1);
        let diags = second.snapshot_diagnostics();
        assert_eq!(diags.len(), 1);
        assert!(
            diags[0].contains("checksum"),
            "diagnostic names the cause: {diags:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// LRU eviction writes the victim back to disk, so its working set
    /// survives in-memory death and warms the next cold miss.
    #[test]
    fn lru_eviction_writes_back_to_disk() {
        let dir = scratch_dir("evict");
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let node = city_node(&kb);
        let registry = CacheRegistry::new(
            RegistryConfig {
                max_caches: 1,
                ..Default::default()
            }
            .with_cache_dir(&dir),
        );
        let s1 = dr_relation::Schema::new("R1", &["City"]);
        let s2 = dr_relation::Schema::new("R2", &["City"]);
        // The cached entry must be keyed by a column of *s1* — snapshot
        // validation checks ids against the owning schema on reload.
        let node = SchemaNode::new(s1.attr_expect("City"), node.ty, node.sim);
        {
            let cache = registry.cache_for(&kb, &s1);
            let _ = cache.candidates(&ctx, &node, "Haifa");
        }
        // Asking for R2 evicts R1's cache, snapshotting it on the way out.
        let _ = registry.cache_for(&kb, &s2);
        assert_eq!(registry.stats().snapshot.saves, 1);
        assert!(registry.snapshot_diagnostics().is_empty());
        // R1 comes back warm from disk.
        let back = registry.cache_for(&kb, &s1);
        assert_eq!(back.stats().snapshot_warm, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Without a cache_dir nothing touches the filesystem and persist is a
    /// no-op.
    #[test]
    fn no_cache_dir_means_no_persistence() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let registry = CacheRegistry::default();
        let _ = registry.cache_for(&kb, &schema);
        assert_eq!(registry.persist(), 0);
        let s = registry.stats();
        assert_eq!(s.snapshot, SnapshotStats::default());
    }

    // ----- snapshot-directory GC ------------------------------------------

    /// Backdates a file's mtime so GC age thresholds see it as old.
    fn backdate(path: &std::path::Path, by: Duration) {
        let old = SystemTime::now() - by;
        let f = std::fs::File::options()
            .append(true)
            .open(path)
            .expect("open for set_times");
        f.set_times(std::fs::FileTimes::new().set_modified(old))
            .expect("set mtime");
    }

    /// An eagerly-pruning GC policy: no age grace for snapshots or temps.
    fn eager_gc(max_snapshots: usize) -> SnapshotGcConfig {
        SnapshotGcConfig {
            max_snapshots,
            min_prune_age: Duration::ZERO,
            max_tmp_age: Duration::ZERO,
        }
    }

    /// Two writers share a cache dir. Writer B persisted snapshots that
    /// writer A has no live cache for (dead generations); over the count
    /// cap, GC reaps B's oldest orphans but never a file backing one of
    /// A's live caches — even when the live file's mtime is the oldest of
    /// all.
    #[test]
    fn gc_prunes_orphans_but_never_live_snapshots() {
        let dir = scratch_dir("gc-two-writer");
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);

        // Writer B: three schemas, persisted, then dropped entirely — its
        // snapshot files are orphans from writer A's point of view.
        {
            let writer_b = persisting_registry(&dir);
            for name in ["B1", "B2", "B3"] {
                let schema = dr_relation::Schema::new(name, &["City"]);
                let node = SchemaNode::new(
                    schema.attr_expect("City"),
                    city_node(&kb).ty,
                    city_node(&kb).sim,
                );
                let cache = writer_b.cache_for(&kb, &schema);
                let _ = cache.candidates(&ctx, &node, "Haifa");
            }
            assert_eq!(writer_b.persist(), 3);
        }

        // Writer A: one live schema, GC capped at 2 files total.
        let writer_a = CacheRegistry::new(
            RegistryConfig::default()
                .with_cache_dir(&dir)
                .with_gc(eager_gc(2)),
        );
        let schema_a = dr_relation::Schema::new("A1", &["City"]);
        let node_a = SchemaNode::new(
            schema_a.attr_expect("City"),
            city_node(&kb).ty,
            city_node(&kb).sim,
        );
        let live_path = SnapshotKey::for_pair(&kb, &schema_a).path_in(&dir);
        {
            let cache = writer_a.cache_for(&kb, &schema_a);
            let _ = cache.candidates(&ctx, &node_a, "Haifa");
        }
        assert_eq!(writer_a.persist(), 1);
        // Make A's live file the OLDEST on disk: a naive oldest-first
        // reaper would pick it first.
        backdate(&live_path, Duration::from_secs(7200));

        assert_eq!(writer_a.persist(), 1);
        assert!(live_path.exists(), "live snapshot must never be reaped");
        let remaining: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            remaining.len(),
            2,
            "pruned down to max_snapshots: {remaining:?}"
        );
        assert_eq!(writer_a.stats().snapshot.gc_removed, 2);

        // The reaped keys come back cold but intact — a prune is an
        // eviction from disk, not corruption.
        let schema_b1 = dr_relation::Schema::new("B1", &["City"]);
        let cache = writer_a.cache_for(&kb, &schema_b1);
        assert_eq!(cache.stats().snapshot_warm + cache.stats().snapshot_cold, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Orphaned `.tmp` files from crashed writers are reaped once old
    /// enough; fresh ones (possibly mid-rename in another process) are not.
    #[test]
    fn gc_reaps_aged_tmp_orphans_only() {
        let dir = scratch_dir("gc-tmp");
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let registry = CacheRegistry::new(RegistryConfig::default().with_cache_dir(&dir).with_gc(
            SnapshotGcConfig {
                max_tmp_age: Duration::from_secs(60),
                ..eager_gc(8)
            },
        ));
        let ctx = MatchContext::new(&kb);
        let node = city_node(&kb);
        {
            let cache = registry.cache_for(&kb, &schema);
            let _ = cache.candidates(&ctx, &node, "Haifa");
        }

        let old_vc = dir.join(".vc-dead-writer.0.0.tmp");
        let old_img = dir.join(".nobel.999.0.drkb.tmp");
        let fresh = dir.join(".vc-fresh-writer.1.0.tmp");
        let unrelated = dir.join("notes.txt");
        for p in [&old_vc, &old_img, &fresh, &unrelated] {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(p, b"leftover").unwrap();
        }
        backdate(&old_vc, Duration::from_secs(3600));
        backdate(&old_img, Duration::from_secs(3600));

        assert_eq!(registry.persist(), 1);
        assert!(!old_vc.exists(), "aged .vc tmp reaped");
        assert!(!old_img.exists(), "aged .drkb tmp reaped");
        assert!(fresh.exists(), "fresh tmp kept — may be mid-rename");
        assert!(unrelated.exists(), "non-snapshot files are never touched");
        assert_eq!(registry.stats().snapshot.gc_removed, 2);

        // GC off (max_snapshots = 0) leaves even aged orphans alone.
        backdate(&fresh, Duration::from_secs(3600));
        let off = CacheRegistry::new(RegistryConfig::default().with_cache_dir(&dir).with_gc(
            SnapshotGcConfig {
                max_snapshots: 0,
                ..eager_gc(0)
            },
        ));
        let _ = off.cache_for(&kb, &schema);
        let _ = off.persist();
        assert!(fresh.exists(), "disabled GC removes nothing");
        assert_eq!(off.stats().snapshot.gc_removed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_stats_delta_subtracts_counters() {
        let earlier = RegistryStats {
            warm_hits: 2,
            cold_misses: 1,
            evicted_caches: 0,
            invalidated_entries: 1,
            live_caches: 1,
            live_entries: 10,
            snapshot: SnapshotStats {
                warm_loads: 1,
                cold_loads: 1,
                rejected: 0,
                saves: 2,
                gc_removed: 1,
            },
        };
        let later = RegistryStats {
            warm_hits: 5,
            cold_misses: 2,
            evicted_caches: 1,
            invalidated_entries: 4,
            live_caches: 2,
            live_entries: 30,
            snapshot: SnapshotStats {
                warm_loads: 2,
                cold_loads: 2,
                rejected: 1,
                saves: 2,
                gc_removed: 4,
            },
        };
        let d = later.delta_since(&earlier);
        assert_eq!((d.warm_hits, d.cold_misses, d.evicted_caches), (3, 1, 1));
        assert_eq!(d.invalidated_entries, 3);
        assert_eq!(
            (d.live_caches, d.live_entries),
            (2, 30),
            "gauges keep later values"
        );
        assert_eq!(
            d.snapshot,
            SnapshotStats {
                warm_loads: 1,
                cold_loads: 1,
                rejected: 1,
                saves: 0,
                gc_removed: 3,
            }
        );
    }
}
