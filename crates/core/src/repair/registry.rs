//! Persistent, schema-keyed registry of shared [`ValueCache`]s — level 0 of
//! the caching hierarchy (DESIGN.md §4a).
//!
//! A [`ValueCache`]'s entries are pure functions of one immutable KB, keyed
//! by cell values of one schema's columns. Server-style workloads repair
//! *streams* of relations over the same schema (batches of rows, repeated
//! uploads, partitioned tables), and every batch re-derives the same
//! candidate sets from scratch when the cache dies with the relation. The
//! `CacheRegistry` keeps those caches alive across relations: callers ask
//! for the cache belonging to `(KB generation, schema fingerprint)` and get
//! the same warm instance back for as long as both stay live.
//!
//! Invalidation is by construction rather than by scanning:
//!
//! * **KB generation** — every finalized [`KnowledgeBase`] carries a
//!   process-unique generation id, and it is part of the cache key. A
//!   rebuilt (even byte-identical) KB has a new generation, so entries
//!   computed against a stale KB can never be served — they are simply
//!   unreachable under the new key.
//! * **Schema fingerprint** — hash of the relation name and ordered
//!   attribute names; schema changes re-key the cache the same way.
//!
//! Memory is bounded twice: each `ValueCache` evicts entries under its own
//! budget (clock over per-shard entry counts, see
//! [`ValueCacheConfig`]), and the registry itself retains at most
//! `max_caches` distinct caches, dropping the least recently used whole
//! cache beyond that.

use crate::repair::value_cache::{ValueCache, ValueCacheConfig};
use dr_kb::{FxHashMap, KnowledgeBase};
use dr_relation::Schema;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Cache identity: (KB generation, schema fingerprint).
pub type CacheKey = (u64, u64);

/// Sizing knobs for a [`CacheRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Entry budget for each retained [`ValueCache`] (`0` = unbounded).
    pub max_entries_per_cache: usize,
    /// Shard count per cache (`0` = derive from `threads`).
    pub shards: usize,
    /// Worker-count hint used to size shards when `shards == 0`.
    pub threads: usize,
    /// Distinct `(KB, schema)` caches retained; beyond this the least
    /// recently used cache is dropped. Must be at least 1.
    pub max_caches: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            max_entries_per_cache: 0,
            shards: 0,
            threads: 0,
            max_caches: 8,
        }
    }
}

impl RegistryConfig {
    /// The per-cache [`ValueCacheConfig`] this registry hands out.
    fn cache_config(&self) -> ValueCacheConfig {
        let base = if self.shards != 0 {
            ValueCacheConfig {
                shards: self.shards,
                max_entries: 0,
            }
        } else {
            let threads = if self.threads != 0 {
                self.threads
            } else {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            };
            ValueCacheConfig::for_threads(threads)
        };
        base.with_max_entries(self.max_entries_per_cache)
    }
}

/// Registry-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Lookups that found a live cache for the key (warm starts).
    pub warm_hits: u64,
    /// Lookups that created a fresh cache (cold starts).
    pub cold_misses: u64,
    /// Whole caches dropped to stay under `max_caches`.
    pub evicted_caches: u64,
    /// Caches currently retained.
    pub live_caches: usize,
    /// Total entries across all retained caches.
    pub live_entries: usize,
}

struct Slot {
    cache: Arc<ValueCache>,
    last_used: u64,
}

/// A process-lifetime pool of schema-keyed [`ValueCache`]s.
pub struct CacheRegistry {
    config: RegistryConfig,
    slots: Mutex<FxHashMap<CacheKey, Slot>>,
    clock: AtomicU64,
    warm_hits: AtomicU64,
    cold_misses: AtomicU64,
    evicted_caches: AtomicU64,
}

impl Default for CacheRegistry {
    fn default() -> Self {
        Self::new(RegistryConfig::default())
    }
}

impl CacheRegistry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        assert!(config.max_caches >= 1, "max_caches must be at least 1");
        Self {
            config,
            slots: Mutex::new(FxHashMap::default()),
            clock: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            cold_misses: AtomicU64::new(0),
            evicted_caches: AtomicU64::new(0),
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// The shared cache for `(kb, schema)`, creating (and, beyond
    /// `max_caches`, evicting the least recently used) as needed. Repeated
    /// calls with the same live KB and an equal schema return the same warm
    /// instance.
    pub fn cache_for(&self, kb: &KnowledgeBase, schema: &Schema) -> Arc<ValueCache> {
        self.cache_for_key((kb.generation(), schema.fingerprint()))
    }

    fn cache_for_key(&self, key: CacheKey) -> Arc<ValueCache> {
        let stamp = self.clock.fetch_add(1, Relaxed) + 1;
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.get_mut(&key) {
            slot.last_used = stamp;
            self.warm_hits.fetch_add(1, Relaxed);
            return Arc::clone(&slot.cache);
        }
        self.cold_misses.fetch_add(1, Relaxed);
        while slots.len() >= self.config.max_caches {
            let lru = slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(&k, _)| k);
            match lru {
                Some(k) => {
                    slots.remove(&k);
                    self.evicted_caches.fetch_add(1, Relaxed);
                }
                None => break,
            }
        }
        let cache = Arc::new(ValueCache::with_config(self.config.cache_config()));
        slots.insert(
            key,
            Slot {
                cache: Arc::clone(&cache),
                last_used: stamp,
            },
        );
        cache
    }

    /// Drops every cache not belonging to `live_generation` — for
    /// server-style workloads that rebuild their KB in place and want the
    /// stale caches' memory back immediately instead of waiting for LRU
    /// pressure. (Correctness never depends on this: stale generations are
    /// unreachable through [`Self::cache_for`] regardless.)
    pub fn evict_stale(&self, live_generation: u64) {
        let mut slots = self.slots.lock();
        let before = slots.len();
        slots.retain(|&(generation, _), _| generation == live_generation);
        let dropped = (before - slots.len()) as u64;
        if dropped > 0 {
            self.evicted_caches.fetch_add(dropped, Relaxed);
        }
    }

    /// Snapshot of the registry counters.
    pub fn stats(&self) -> RegistryStats {
        let slots = self.slots.lock();
        RegistryStats {
            warm_hits: self.warm_hits.load(Relaxed),
            cold_misses: self.cold_misses.load(Relaxed),
            evicted_caches: self.evicted_caches.load(Relaxed),
            live_caches: slots.len(),
            live_entries: slots.values().map(|s| s.cache.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MatchContext;
    use crate::fixtures::nobel_schema;
    use crate::graph::schema::{NodeType, SchemaNode};
    use dr_kb::fixtures::{names, nobel_mini_kb};
    use dr_simmatch::SimFn;

    fn city_node(kb: &KnowledgeBase) -> SchemaNode {
        SchemaNode::new(
            nobel_schema().attr_expect("City"),
            NodeType::Class(kb.class_named(names::CITY).unwrap()),
            SimFn::Equal,
        )
    }

    #[test]
    fn same_kb_and_schema_warm_start() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let registry = CacheRegistry::default();
        let a = registry.cache_for(&kb, &schema);
        let b = registry.cache_for(&kb, &schema);
        assert!(Arc::ptr_eq(&a, &b), "same key must return the same cache");
        let stats = registry.stats();
        assert_eq!((stats.warm_hits, stats.cold_misses), (1, 1));
        assert_eq!(stats.live_caches, 1);
    }

    #[test]
    fn entries_persist_across_lookups() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let ctx = MatchContext::new(&kb);
        let registry = CacheRegistry::default();
        let node = city_node(&kb);

        let warm = registry.cache_for(&kb, &schema);
        let _ = warm.candidates(&ctx, &node, "Haifa");
        drop(warm);

        // A later "relation" of the same schema sees the warm entry.
        let again = registry.cache_for(&kb, &schema);
        let _ = again.candidates(&ctx, &node, "Haifa");
        assert_eq!(again.stats().node_hits, 1);
        assert!(registry.stats().live_entries >= 1);
    }

    /// A rebuilt KB (new generation) must never be served entries computed
    /// against the old one — the key changes, so the old cache is invisible.
    #[test]
    fn stale_kb_generation_is_never_served() {
        let schema = nobel_schema();
        let registry = CacheRegistry::default();

        let kb1 = nobel_mini_kb();
        let node = city_node(&kb1);
        {
            let ctx = MatchContext::new(&kb1);
            let cache = registry.cache_for(&kb1, &schema);
            let _ = cache.candidates(&ctx, &node, "Haifa");
            assert_eq!(cache.stats().node_misses, 1);
        }

        // Same content, new generation: a fresh, empty cache.
        let kb2 = nobel_mini_kb();
        assert_ne!(kb1.generation(), kb2.generation());
        let cache = registry.cache_for(&kb2, &schema);
        assert!(cache.is_empty(), "stale entries must be unreachable");
        let stats = cache.stats();
        assert_eq!((stats.node_hits, stats.node_misses), (0, 0));
        assert_eq!(registry.stats().cold_misses, 2);
    }

    #[test]
    fn distinct_schemas_get_distinct_caches() {
        let kb = nobel_mini_kb();
        let registry = CacheRegistry::default();
        let a = registry.cache_for(&kb, &nobel_schema());
        let b = registry.cache_for(&kb, &dr_relation::Schema::new("Other", &["X", "Y"]));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(registry.stats().live_caches, 2);
    }

    #[test]
    fn lru_cache_eviction_beyond_max_caches() {
        let kb = nobel_mini_kb();
        let registry = CacheRegistry::new(RegistryConfig {
            max_caches: 2,
            ..Default::default()
        });
        let s1 = dr_relation::Schema::new("R1", &["A"]);
        let s2 = dr_relation::Schema::new("R2", &["A"]);
        let s3 = dr_relation::Schema::new("R3", &["A"]);
        let c1 = registry.cache_for(&kb, &s1);
        let _c2 = registry.cache_for(&kb, &s2);
        // Touch R1 so R2 is the LRU, then overflow.
        let _ = registry.cache_for(&kb, &s1);
        let _c3 = registry.cache_for(&kb, &s3);
        let stats = registry.stats();
        assert_eq!(stats.live_caches, 2);
        assert_eq!(stats.evicted_caches, 1);
        // R1 survived (same instance), R2 did not: re-asking for R1 is warm
        // (cold misses stay at the three creations), re-asking for R2 is not.
        assert!(Arc::ptr_eq(&c1, &registry.cache_for(&kb, &s1)));
        assert_eq!(registry.stats().cold_misses, 3);
        let _ = registry.cache_for(&kb, &s2);
        assert_eq!(registry.stats().cold_misses, 4);
    }

    #[test]
    fn evict_stale_drops_dead_generations() {
        let schema = nobel_schema();
        let registry = CacheRegistry::default();
        let kb1 = nobel_mini_kb();
        let kb2 = nobel_mini_kb();
        let _ = registry.cache_for(&kb1, &schema);
        let _ = registry.cache_for(&kb2, &schema);
        assert_eq!(registry.stats().live_caches, 2);
        registry.evict_stale(kb2.generation());
        let stats = registry.stats();
        assert_eq!(stats.live_caches, 1);
        assert_eq!(stats.evicted_caches, 1);
        // The survivor is kb2's cache.
        let survivor = registry.cache_for(&kb2, &schema);
        assert_eq!(registry.stats().warm_hits, 1);
        drop(survivor);
    }

    #[test]
    #[should_panic(expected = "max_caches")]
    fn zero_max_caches_is_rejected() {
        let _ = CacheRegistry::new(RegistryConfig {
            max_caches: 0,
            ..Default::default()
        });
    }
}
