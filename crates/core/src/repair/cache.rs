//! Per-tuple element cache (§IV-B(3)) — the innermost layer of the caching
//! hierarchy (see DESIGN.md).
//!
//! Rule nodes and edges recur across rules — `(Name, Nobel laureates in
//! Chemistry, =)` appears in all four rules of Figure 4. The fast repair
//! algorithm checks each distinct element once per tuple and shares the
//! result: this cache memoizes, per `(col, type, sim)` node signature, the
//! KB candidates matching the tuple's current cell value, and per edge
//! signature whether any candidate pair is connected. Entries touching a
//! column are invalidated when a repair (or typo normalization) rewrites
//! that column's value.
//!
//! The cache can optionally *overlay* a relation-scoped [`ValueCache`]: on a
//! local miss the shared, value-keyed cache is consulted before computing
//! from scratch, so identical values recur across tuples for free. Local
//! entries are keyed by signature only (the tuple's value is implicit), so
//! column invalidation stays local — the shared entries are value-keyed and
//! never go stale.

use crate::context::MatchContext;
use crate::graph::schema::SchemaNode;
use crate::repair::value_cache::{edge_connected, ValueCache};
use dr_kb::{FxHashMap, Node, PredId};
use dr_relation::{AttrId, Tuple};
use std::sync::Arc;

pub use crate::repair::value_cache::EdgeSig;

/// Hit/miss counters of one [`ElementCache`], split by source level:
/// `local_*` cover the per-tuple signature-keyed maps, `shared_*` cover the
/// probes a local miss forwarded to the relation-scoped [`ValueCache`]
/// overlay (always zero without one). Tuple trace events report these so a
/// trace can attribute each lookup to the level that answered it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElementCacheStats {
    /// Lookups answered by the per-tuple maps.
    pub local_hits: usize,
    /// Lookups the per-tuple maps could not answer.
    pub local_misses: usize,
    /// Forwarded probes the shared [`ValueCache`] answered.
    pub shared_hits: usize,
    /// Forwarded probes the shared cache had to compute.
    pub shared_misses: usize,
}

/// Memoized per-tuple element checks, shared across rules; optionally backed
/// by a relation-scoped [`ValueCache`].
#[derive(Default)]
pub struct ElementCache<'v> {
    shared: Option<&'v ValueCache>,
    nodes: FxHashMap<SchemaNode, Arc<Vec<Node>>>,
    edges: FxHashMap<EdgeSig, bool>,
    hits: usize,
    misses: usize,
    shared_hits: usize,
    shared_misses: usize,
}

impl ElementCache<'static> {
    /// An empty, standalone cache (no shared backing).
    pub fn new() -> Self {
        Self::default()
    }
}

impl<'v> ElementCache<'v> {
    /// An empty per-tuple overlay over the relation-scoped `shared` cache.
    pub fn with_shared(shared: &'v ValueCache) -> Self {
        Self {
            shared: Some(shared),
            ..Default::default()
        }
    }

    /// Candidates of `node` against the tuple's current value of
    /// `node.col`, memoized by node signature.
    pub fn candidates(
        &mut self,
        ctx: &MatchContext<'_>,
        tuple: &Tuple,
        node: &SchemaNode,
    ) -> Arc<Vec<Node>> {
        if let Some(cands) = self.nodes.get(node) {
            self.hits += 1;
            return Arc::clone(cands);
        }
        self.misses += 1;
        let cands = match self.shared {
            Some(shared) => {
                let (cands, hit) = shared.candidates_with_outcome(ctx, node, tuple.get(node.col));
                if hit {
                    self.shared_hits += 1;
                } else {
                    self.shared_misses += 1;
                }
                cands
            }
            None => Arc::new(ctx.candidates(node.ty, node.sim, tuple.get(node.col))),
        };
        self.nodes.insert(*node, Arc::clone(&cands));
        cands
    }

    /// Whether the tuple matches node `node` (has any candidate).
    pub fn node_ok(&mut self, ctx: &MatchContext<'_>, tuple: &Tuple, node: &SchemaNode) -> bool {
        !self.candidates(ctx, tuple, node).is_empty()
    }

    /// Whether some candidate pair of `(from, to)` is connected by `rel`,
    /// memoized by edge signature.
    pub fn edge_ok(
        &mut self,
        ctx: &MatchContext<'_>,
        tuple: &Tuple,
        from: &SchemaNode,
        rel: PredId,
        to: &SchemaNode,
    ) -> bool {
        let sig = (*from, rel, *to);
        if let Some(&ok) = self.edges.get(&sig) {
            self.hits += 1;
            return ok;
        }
        self.misses += 1;
        let ok = match self.shared {
            Some(shared) => {
                let (ok, hit) = shared.edge_ok_with_outcome(
                    ctx,
                    from,
                    rel,
                    to,
                    tuple.get(from.col),
                    tuple.get(to.col),
                );
                if hit {
                    self.shared_hits += 1;
                } else {
                    self.shared_misses += 1;
                }
                ok
            }
            None => {
                let from_cands = self.candidates(ctx, tuple, from);
                let to_cands = self.candidates(ctx, tuple, to);
                edge_connected(ctx, &from_cands, rel, &to_cands)
            }
        };
        self.edges.insert(sig, ok);
        ok
    }

    /// Drops every local entry whose signature involves `col` — called after
    /// the column's value changed. Shared entries are value-keyed and need no
    /// invalidation.
    pub fn invalidate_col(&mut self, col: AttrId) {
        self.nodes.retain(|n, _| n.col != col);
        self.edges
            .retain(|(f, _, t), _| f.col != col && t.col != col);
    }

    /// Clears everything local (new tuple).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.edges.clear();
    }

    /// `(hits, misses)` counters for diagnostics and ablation benches.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }

    /// Counters split by source level (local maps vs. shared overlay).
    pub fn level_stats(&self) -> ElementCacheStats {
        ElementCacheStats {
            local_hits: self.hits,
            local_misses: self.misses,
            shared_hits: self.shared_hits,
            shared_misses: self.shared_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{nobel_schema, table1_dirty};
    use crate::graph::schema::NodeType;
    use dr_kb::fixtures::{names, nobel_mini_kb};
    use dr_simmatch::SimFn;

    fn name_node(kb: &dr_kb::KnowledgeBase) -> SchemaNode {
        SchemaNode::new(
            nobel_schema().attr_expect("Name"),
            NodeType::Class(kb.class_named(names::LAUREATE).unwrap()),
            SimFn::Equal,
        )
    }

    #[test]
    fn node_candidates_are_memoized() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let tuple = table1_dirty().tuple(0).clone();
        let mut cache = ElementCache::new();
        let node = name_node(&kb);
        let a = cache.candidates(&ctx, &tuple, &node);
        let b = cache.candidates(&ctx, &tuple, &node);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn edge_check_and_memoization() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let tuple = table1_dirty().tuple(0).clone();
        let mut cache = ElementCache::new();
        let name = name_node(&kb);
        let inst = SchemaNode::new(
            schema.attr_expect("Institution"),
            NodeType::Class(kb.class_named(names::ORGANIZATION).unwrap()),
            SimFn::EditDistance(2),
        );
        let works_at = kb.pred_named(names::WORKS_AT).unwrap();
        let born_in = kb.pred_named(names::BORN_IN).unwrap();
        assert!(cache.edge_ok(&ctx, &tuple, &name, works_at, &inst));
        assert!(cache.edge_ok(&ctx, &tuple, &name, works_at, &inst)); // hit
        assert!(!cache.edge_ok(&ctx, &tuple, &name, born_in, &inst));
    }

    #[test]
    fn invalidation_is_column_scoped() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let mut tuple = table1_dirty().tuple(0).clone();
        let mut cache = ElementCache::new();
        let city = SchemaNode::new(
            schema.attr_expect("City"),
            NodeType::Class(kb.class_named(names::CITY).unwrap()),
            SimFn::Equal,
        );
        let name = name_node(&kb);
        assert_eq!(cache.candidates(&ctx, &tuple, &city).len(), 1); // Karcag
        let _ = cache.candidates(&ctx, &tuple, &name);

        // Repair City and invalidate: the city entry refreshes, name stays.
        tuple.set(schema.attr_expect("City"), "Haifa");
        cache.invalidate_col(schema.attr_expect("City"));
        let refreshed = cache.candidates(&ctx, &tuple, &city);
        assert_eq!(kb.node_value(refreshed[0]), "Haifa");
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (0, 3));
    }

    #[test]
    fn literal_source_edge_is_false() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let tuple = table1_dirty().tuple(0).clone();
        let mut cache = ElementCache::new();
        let dob = SchemaNode::new(schema.attr_expect("DOB"), NodeType::Literal, SimFn::Equal);
        let name = name_node(&kb);
        let born_on = kb.pred_named(names::BORN_ON_DATE).unwrap();
        // Literal → instance edges cannot exist.
        assert!(!cache.edge_ok(&ctx, &tuple, &dob, born_on, &name));
        // Instance → literal works.
        assert!(cache.edge_ok(&ctx, &tuple, &name, born_on, &dob));
    }

    #[test]
    fn overlay_pulls_from_shared_and_invalidation_stays_local() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let shared = ValueCache::new();
        let node = name_node(&kb);
        let mut tuple_a = table1_dirty().tuple(0).clone();
        let tuple_b = table1_dirty().tuple(0).clone(); // identical values

        let mut cache_a = ElementCache::with_shared(&shared);
        let a = cache_a.candidates(&ctx, &tuple_a, &node);
        assert_eq!(shared.stats().node_misses, 1);

        // A second per-tuple overlay sees the shared entry: cross-tuple hit.
        let mut cache_b = ElementCache::with_shared(&shared);
        let b = cache_b.candidates(&ctx, &tuple_b, &node);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(shared.stats().node_hits, 1);

        // Local invalidation refetches from shared without recomputing: the
        // value did not change, so the shared key still matches.
        cache_a.invalidate_col(node.col);
        let again = cache_a.candidates(&ctx, &tuple_a, &node);
        assert!(Arc::ptr_eq(&a, &again));
        assert_eq!(shared.stats().node_hits, 2);
        assert_eq!(shared.stats().node_misses, 1);

        // After an actual value change, the new value probes a new key.
        tuple_a.set(schema.attr_expect("Name"), "Marie Curie");
        cache_a.invalidate_col(node.col);
        let curie = cache_a.candidates(&ctx, &tuple_a, &node);
        assert_eq!(kb.node_value(curie[0]), "Marie Curie");
        assert_eq!(shared.stats().node_misses, 2);
    }
}
