//! Shared per-tuple element cache (§IV-B(3)).
//!
//! Rule nodes and edges recur across rules — `(Name, Nobel laureates in
//! Chemistry, =)` appears in all four rules of Figure 4. The fast repair
//! algorithm checks each distinct element once per tuple and shares the
//! result: this cache memoizes, per `(col, type, sim)` node signature, the
//! KB candidates matching the tuple's current cell value, and per edge
//! signature whether any candidate pair is connected. Entries touching a
//! column are invalidated when a repair (or typo normalization) rewrites
//! that column's value.

use crate::context::MatchContext;
use crate::graph::schema::SchemaNode;
use dr_kb::{FxHashMap, Node, PredId};
use dr_relation::{AttrId, Tuple};
use std::sync::Arc;

/// An edge signature: source node, predicate, target node.
pub type EdgeSig = (SchemaNode, PredId, SchemaNode);

/// Memoized per-tuple element checks, shared across rules.
#[derive(Default)]
pub struct ElementCache {
    nodes: FxHashMap<SchemaNode, Arc<Vec<Node>>>,
    edges: FxHashMap<EdgeSig, bool>,
    hits: usize,
    misses: usize,
}

impl ElementCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Candidates of `node` against the tuple's current value of
    /// `node.col`, memoized by node signature.
    pub fn candidates(
        &mut self,
        ctx: &MatchContext<'_>,
        tuple: &Tuple,
        node: &SchemaNode,
    ) -> Arc<Vec<Node>> {
        if let Some(cands) = self.nodes.get(node) {
            self.hits += 1;
            return Arc::clone(cands);
        }
        self.misses += 1;
        let cands = Arc::new(ctx.candidates(node.ty, node.sim, tuple.get(node.col)));
        self.nodes.insert(*node, Arc::clone(&cands));
        cands
    }

    /// Whether the tuple matches node `node` (has any candidate).
    pub fn node_ok(&mut self, ctx: &MatchContext<'_>, tuple: &Tuple, node: &SchemaNode) -> bool {
        !self.candidates(ctx, tuple, node).is_empty()
    }

    /// Whether some candidate pair of `(from, to)` is connected by `rel`,
    /// memoized by edge signature.
    pub fn edge_ok(
        &mut self,
        ctx: &MatchContext<'_>,
        tuple: &Tuple,
        from: &SchemaNode,
        rel: PredId,
        to: &SchemaNode,
    ) -> bool {
        let sig = (*from, rel, *to);
        if let Some(&ok) = self.edges.get(&sig) {
            self.hits += 1;
            return ok;
        }
        self.misses += 1;
        let from_cands = self.candidates(ctx, tuple, from);
        let to_cands = self.candidates(ctx, tuple, to);
        let kb = ctx.kb();
        let to_set: dr_kb::FxHashSet<Node> = to_cands.iter().copied().collect();
        let ok = from_cands.iter().any(|&f| match f {
            Node::Instance(i) => kb.objects(i, rel).iter().any(|o| to_set.contains(o)),
            Node::Literal(_) => false,
        });
        self.edges.insert(sig, ok);
        ok
    }

    /// Drops every entry whose signature involves `col` — called after the
    /// column's value changed.
    pub fn invalidate_col(&mut self, col: AttrId) {
        self.nodes.retain(|n, _| n.col != col);
        self.edges
            .retain(|(f, _, t), _| f.col != col && t.col != col);
    }

    /// Clears everything (new tuple).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.edges.clear();
    }

    /// `(hits, misses)` counters for diagnostics and ablation benches.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{nobel_schema, table1_dirty};
    use crate::graph::schema::NodeType;
    use dr_kb::fixtures::{names, nobel_mini_kb};
    use dr_simmatch::SimFn;

    fn name_node(kb: &dr_kb::KnowledgeBase) -> SchemaNode {
        SchemaNode::new(
            nobel_schema().attr_expect("Name"),
            NodeType::Class(kb.class_named(names::LAUREATE).unwrap()),
            SimFn::Equal,
        )
    }

    #[test]
    fn node_candidates_are_memoized() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let tuple = table1_dirty().tuple(0).clone();
        let mut cache = ElementCache::new();
        let node = name_node(&kb);
        let a = cache.candidates(&ctx, &tuple, &node);
        let b = cache.candidates(&ctx, &tuple, &node);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn edge_check_and_memoization() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let tuple = table1_dirty().tuple(0).clone();
        let mut cache = ElementCache::new();
        let name = name_node(&kb);
        let inst = SchemaNode::new(
            schema.attr_expect("Institution"),
            NodeType::Class(kb.class_named(names::ORGANIZATION).unwrap()),
            SimFn::EditDistance(2),
        );
        let works_at = kb.pred_named(names::WORKS_AT).unwrap();
        let born_in = kb.pred_named(names::BORN_IN).unwrap();
        assert!(cache.edge_ok(&ctx, &tuple, &name, works_at, &inst));
        assert!(cache.edge_ok(&ctx, &tuple, &name, works_at, &inst)); // hit
        assert!(!cache.edge_ok(&ctx, &tuple, &name, born_in, &inst));
    }

    #[test]
    fn invalidation_is_column_scoped() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let mut tuple = table1_dirty().tuple(0).clone();
        let mut cache = ElementCache::new();
        let city = SchemaNode::new(
            schema.attr_expect("City"),
            NodeType::Class(kb.class_named(names::CITY).unwrap()),
            SimFn::Equal,
        );
        let name = name_node(&kb);
        assert_eq!(cache.candidates(&ctx, &tuple, &city).len(), 1); // Karcag
        let _ = cache.candidates(&ctx, &tuple, &name);

        // Repair City and invalidate: the city entry refreshes, name stays.
        tuple.set(schema.attr_expect("City"), "Haifa");
        cache.invalidate_col(schema.attr_expect("City"));
        let refreshed = cache.candidates(&ctx, &tuple, &city);
        assert_eq!(kb.node_value(refreshed[0]), "Haifa");
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (0, 3));
    }

    #[test]
    fn literal_source_edge_is_false() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let tuple = table1_dirty().tuple(0).clone();
        let mut cache = ElementCache::new();
        let dob = SchemaNode::new(schema.attr_expect("DOB"), NodeType::Literal, SimFn::Equal);
        let name = name_node(&kb);
        let born_on = kb.pred_named(names::BORN_ON_DATE).unwrap();
        // Literal → instance edges cannot exist.
        assert!(!cache.edge_ok(&ctx, &tuple, &dob, born_on, &name));
        // Instance → literal works.
        assert!(cache.edge_ok(&ctx, &tuple, &name, born_on, &dob));
    }
}
