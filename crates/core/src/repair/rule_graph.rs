//! Rule order selection (§IV-B(1)).
//!
//! Applying rule ϕ can only affect rule ϕ′ if ϕ may rewrite a column that ϕ′
//! reads as evidence — i.e. `col(p_ϕ) ∈ col(V′e)`. The **rule graph** has an
//! edge ϕ → ϕ′ for each such pair; checking rules in a topological order of
//! its strongly-connected-component condensation means each rule outside a
//! cycle is checked exactly once. Cycles are collapsed into groups whose
//! members are re-scanned until quiescent.

use crate::rule::DetectiveRule;

/// The dependency graph over a rule set.
#[derive(Debug, Clone)]
pub struct RuleGraph {
    /// `succ[i]` = rules that must be checked after rule `i` (i.e. `i → j`).
    succ: Vec<Vec<usize>>,
}

impl RuleGraph {
    /// Builds the graph: edge `i → j` (`i ≠ j`) iff rule `i` can affect
    /// what rule `j` observes — some column rule `i` may **write**
    /// ([`DetectiveRule::write_cols`]: the repaired column `col(p_i)` plus
    /// its fuzzy-matched evidence columns, which get rewritten to canonical
    /// KB labels on success) is read by `j` as evidence (`∈ col(Ve_j)`, the
    /// paper's condition extended to normalization writes) or repaired by
    /// `j` (`= col(p_j)`): a repair by one freezes or rewrites the other's
    /// positive/negative column. Same-column writers are therefore mutually
    /// dependent and land in one SCC, which the repairer re-scans — keeping
    /// the fast algorithm chase-equivalent.
    ///
    /// Counting only `col(p_i)` as a write (the paper's literal condition)
    /// is unsound under fuzzy normalization: a rule whose evidence is
    /// matched with `ED,k` rewrites that evidence cell when it fires, which
    /// can enable an already-checked rule reading or repairing the same
    /// column. The missing back-edges let [`super::fast`] skip re-checks
    /// that [`super::basic`]'s rescan loop performs, so the two algorithms
    /// diverged on noisy fuzzy-heavy inputs.
    pub fn build(rules: &[DetectiveRule]) -> Self {
        let succ = rules
            .iter()
            .enumerate()
            .map(|(i, ri)| {
                let writes = ri.write_cols();
                rules
                    .iter()
                    .enumerate()
                    .filter(|&(j, rj)| {
                        i != j
                            && writes.iter().any(|&w| {
                                rj.evidence_cols().any(|c| c == w) || rj.repair_col() == w
                            })
                    })
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        Self { succ }
    }

    /// Successors of rule `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succ[i]
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Number of edges (diagnostics).
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Strongly connected components via Tarjan's algorithm (iterative).
    /// Components are returned in **reverse topological order** of the
    /// condensation (Tarjan's natural output order).
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.succ.len();
        const UNSET: usize = usize::MAX;
        let mut index = vec![UNSET; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();

        // Explicit DFS stack of (node, next-successor position).
        let mut call_stack: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != UNSET {
                continue;
            }
            call_stack.push((root, 0));
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
                if *pos < self.succ[v].len() {
                    let w = self.succ[v][*pos];
                    *pos += 1;
                    if index[w] == UNSET {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("SCC stack underflow");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        component.sort_unstable();
                        components.push(component);
                    }
                }
            }
        }
        components
    }

    /// Check groups in topological order of the condensation: each group is
    /// one SCC; singleton groups are rules checked exactly once, larger
    /// groups are cycles whose members the repairer re-scans.
    ///
    /// Deterministic: groups are emitted in topological order with ties
    /// broken by smallest member index.
    pub fn check_order(&self) -> Vec<Vec<usize>> {
        let sccs = self.sccs();
        let n_comp = sccs.len();
        // Map node -> component.
        let mut comp_of = vec![0usize; self.succ.len()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                comp_of[v] = ci;
            }
        }
        // Condensation edges + in-degrees.
        let mut cedges: Vec<dr_kb::FxHashSet<usize>> = vec![dr_kb::FxHashSet::default(); n_comp];
        let mut indeg = vec![0usize; n_comp];
        for (v, outs) in self.succ.iter().enumerate() {
            for &w in outs {
                let (cv, cw) = (comp_of[v], comp_of[w]);
                if cv != cw && cedges[cv].insert(cw) {
                    indeg[cw] += 1;
                }
            }
        }
        // Kahn with a min-heap keyed on the smallest rule index in the
        // component, for deterministic output.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> = (0..n_comp)
            .filter(|&c| indeg[c] == 0)
            .map(|c| Reverse((sccs[c][0], c)))
            .collect();
        let mut order = Vec::with_capacity(n_comp);
        while let Some(Reverse((_, c))) = heap.pop() {
            order.push(sccs[c].clone());
            for &w in &cedges[c] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    heap.push(Reverse((sccs[w][0], w)));
                }
            }
        }
        debug_assert_eq!(order.len(), n_comp, "condensation must be acyclic");
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure4_rules;
    use dr_kb::fixtures::nobel_mini_kb;

    /// Example 8, extended with normalization writes: ϕ1 → ϕ2 → ϕ3 as in
    /// the paper (Institution feeds ϕ2/ϕ3, City feeds ϕ3), plus back-edges
    /// because ϕ2 and ϕ3 match Institution fuzzily (`ED,2`) and therefore
    /// may rewrite it — re-enabling ϕ1 (repairs Institution) and each
    /// other. ϕ4 is independent.
    #[test]
    fn figure4_rule_graph() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let g = RuleGraph::build(&rules);
        assert_eq!(g.successors(0), &[1, 2]); // Institution feeds ϕ2 and ϕ3
        assert_eq!(g.successors(1), &[0, 2]); // City feeds ϕ3; Inst norm feeds ϕ1
        assert_eq!(g.successors(2), &[0, 1]); // Inst norm feeds ϕ1 and ϕ2
        assert_eq!(g.successors(3), &[] as &[usize]); // Prize feeds nobody
    }

    #[test]
    fn figure4_check_order_respects_dependencies() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let order = RuleGraph::build(&rules).check_order();
        // ϕ1–ϕ3 are mutually dependent through the fuzzy Institution
        // column and collapse into one re-scanned group; ϕ4 stays alone.
        assert_eq!(order, vec![vec![0, 1, 2], vec![3]]);
    }

    /// With all-exact similarities the paper's original picture holds:
    /// no normalization writes, so the graph is the plain
    /// `col(p) ∈ col(Ve')` DAG and every group is a singleton.
    #[test]
    fn exact_rules_keep_the_papers_dag() {
        let kb = nobel_mini_kb();
        let rules: Vec<_> = figure4_rules(&kb)
            .into_iter()
            .map(|r| {
                let mut evidence = r.evidence().to_vec();
                for n in &mut evidence {
                    n.sim = dr_simmatch::SimFn::Equal;
                }
                DetectiveRule::new(
                    "exact",
                    evidence,
                    *r.positive(),
                    *r.negative(),
                    r.edges().to_vec(),
                )
                .unwrap()
            })
            .collect();
        let g = RuleGraph::build(&rules);
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.successors(1), &[2]);
        assert_eq!(g.successors(2), &[] as &[usize]);
        assert_eq!(g.successors(3), &[] as &[usize]);
        let order = g.check_order();
        assert!(order.iter().all(|grp| grp.len() == 1));
        let flat: Vec<usize> = order.into_iter().flatten().collect();
        let pos = |r: usize| flat.iter().position(|&x| x == r).unwrap();
        assert!(pos(0) < pos(1), "ϕ1 before ϕ2");
        assert!(pos(1) < pos(2), "ϕ2 before ϕ3");
        assert_eq!(flat.len(), 4);
    }

    /// Two rules reading each other's repair columns form a cycle and are
    /// grouped into one SCC.
    #[test]
    fn cycle_collapses_into_group() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        // ϕ2 repairs City with Institution evidence. Craft ϕ2' repairing
        // Institution with City evidence → cycle {ϕ2, ϕ2'}.
        use crate::graph::schema::NodeType;
        use crate::rule::{node, DetectiveRule, RuleEdge, RuleNodeRef};
        use dr_simmatch::SimFn;
        let schema = crate::fixtures::nobel_schema();
        let city = NodeType::Class(kb.class_named("city").unwrap());
        let org = NodeType::Class(kb.class_named("organization").unwrap());
        let laureate = NodeType::Class(kb.class_named("Nobel laureates in Chemistry").unwrap());
        let phi2p = DetectiveRule::new(
            "phi2-prime",
            vec![
                node(schema.attr_expect("Name"), laureate, SimFn::Equal),
                node(schema.attr_expect("City"), city, SimFn::Equal),
            ],
            node(
                schema.attr_expect("Institution"),
                org,
                SimFn::EditDistance(2),
            ),
            node(
                schema.attr_expect("Institution"),
                org,
                SimFn::EditDistance(2),
            ),
            vec![
                RuleEdge {
                    from: RuleNodeRef::Evidence(0),
                    to: RuleNodeRef::Positive,
                    rel: kb.pred_named("worksAt").unwrap(),
                },
                RuleEdge {
                    from: RuleNodeRef::Positive,
                    to: RuleNodeRef::Evidence(1),
                    rel: kb.pred_named("locatedIn").unwrap(),
                },
                RuleEdge {
                    from: RuleNodeRef::Evidence(0),
                    to: RuleNodeRef::Negative,
                    rel: kb.pred_named("graduatedFrom").unwrap(),
                },
                RuleEdge {
                    from: RuleNodeRef::Negative,
                    to: RuleNodeRef::Evidence(1),
                    rel: kb.pred_named("locatedIn").unwrap(),
                },
            ],
        )
        .unwrap();
        let set = vec![rules[1].clone(), phi2p];
        let g = RuleGraph::build(&set);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![0, 1]);
        let order = g.check_order();
        assert_eq!(order, vec![vec![0, 1]]);
    }

    #[test]
    fn empty_and_singleton() {
        let g = RuleGraph::build(&[]);
        assert!(g.is_empty());
        assert!(g.check_order().is_empty());

        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let g = RuleGraph::build(&rules[3..4]);
        assert_eq!(g.check_order(), vec![vec![0]]);
    }

    /// Self-loop: a rule whose repaired column is its own evidence cannot
    /// exist (validation forbids it), but a rule writing a column read by
    /// itself through another rule chain still terminates via SCC grouping.
    #[test]
    fn long_chain_order() {
        // Figure-4 rules duplicated: the two ϕ1–ϕ3 chains touch the same
        // columns, so all six collapse into one re-scanned group, and the
        // two Prize writers (ϕ4, ϕ4') form a second group. Every rule
        // appears exactly once.
        let kb = nobel_mini_kb();
        let mut rules = figure4_rules(&kb);
        let extra = figure4_rules(&kb);
        rules.extend(extra);
        let order = RuleGraph::build(&rules).check_order();
        assert_eq!(order, vec![vec![0, 1, 2, 4, 5, 6], vec![3, 7]]);
    }
}
