//! Per-tuple repair budgets — the first pillar of the resilience layer
//! (DESIGN.md §4c).
//!
//! The matching graphs of §IV are searched by a backtracking solver whose
//! worst case is exponential in pattern size; a pathological tuple (a cell
//! matching thousands of KB nodes under a loose `ED,k`) can make one row
//! consume a whole relation's time budget. A [`RepairBudget`] caps the work
//! one tuple may spend: a **step counter** over candidate expansions in the
//! instance-graph search, plus an optional coarse **wall-clock deadline**.
//! Exhaustion never panics and never corrupts the tuple — rule application
//! aborts *before* any mutation of the current rule, earlier (complete)
//! rule applications stand, and the tuple's report carries a
//! [`TupleOutcome::Degraded`](crate::repair::resilience::TupleOutcome)
//! outcome with the reason.
//!
//! The budget is configuration ([`RepairBudget`], stored on the
//! [`MatchContext`](crate::context::MatchContext)); each tuple gets its own
//! [`BudgetMeter`] spending it. The default budget is unbounded, so
//! existing callers see bit-identical behavior.

use std::cell::Cell;
use std::time::{Duration, Instant};

/// How often (in charged steps) the meter polls the wall clock when a
/// deadline is set. Coarse on purpose: `Instant::now()` per candidate would
/// dominate the solver's inner loop.
const DEADLINE_POLL_STEPS: u64 = 1024;

/// Why a tuple's budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustCause {
    /// The candidate-expansion step counter hit
    /// [`RepairBudget::max_steps`].
    StepCap,
    /// The wall-clock deadline passed.
    Deadline,
    /// Exhaustion was forced externally (fault injection / cancellation).
    Forced,
}

impl std::fmt::Display for ExhaustCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustCause::StepCap => write!(f, "step cap"),
            ExhaustCause::Deadline => write!(f, "deadline"),
            ExhaustCause::Forced => write!(f, "forced"),
        }
    }
}

/// The terminal state of an exhausted [`BudgetMeter`]: how many steps were
/// spent and why the meter stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BudgetExhaustion {
    /// Steps charged up to (and including) the exhausting charge.
    pub steps: u64,
    /// What tripped.
    pub cause: ExhaustCause,
}

impl std::fmt::Display for BudgetExhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "budget exhausted ({} after {} steps)",
            self.cause, self.steps
        )
    }
}

/// Per-tuple work limits for the repair algorithms.
///
/// `max_steps` counts **candidate expansions** in the instance-graph search
/// (each node the backtracking solver considers binding), the unit that
/// actually scales with pathological inputs. `deadline` is a coarse
/// wall-clock cap checked every [`DEADLINE_POLL_STEPS`] steps. The
/// default — `max_steps == 0`, no deadline — is unbounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairBudget {
    /// Maximum candidate-expansion steps per tuple; `0` means unbounded.
    pub max_steps: u64,
    /// Wall-clock ceiling per tuple; `None` means no deadline.
    pub deadline: Option<Duration>,
}

impl RepairBudget {
    /// The unbounded budget (the default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A budget capped at `max_steps` candidate expansions per tuple.
    pub fn with_max_steps(max_steps: u64) -> Self {
        Self {
            max_steps,
            deadline: None,
        }
    }

    /// A budget with a per-tuple wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            max_steps: 0,
            deadline: Some(deadline),
        }
    }

    /// Whether this budget can never exhaust on its own.
    pub fn is_unbounded(&self) -> bool {
        self.max_steps == 0 && self.deadline.is_none()
    }

    /// Starts a fresh meter for one tuple. The deadline clock starts now.
    pub fn meter(&self) -> BudgetMeter {
        BudgetMeter {
            max_steps: self.max_steps,
            deadline: self.deadline.map(|d| Instant::now() + d),
            steps: Cell::new(0),
            until_poll: Cell::new(DEADLINE_POLL_STEPS),
            exhaustion: Cell::new(None),
        }
    }
}

/// One tuple's spend against a [`RepairBudget`].
///
/// The meter is intentionally `!Sync` (plain [`Cell`]s): a tuple is always
/// repaired by exactly one thread, and the solver charges it on every
/// candidate expansion — atomics would be pure overhead. Once exhausted the
/// meter stays exhausted; all further [`charge`](Self::charge) calls refuse.
#[derive(Debug)]
pub struct BudgetMeter {
    max_steps: u64,
    deadline: Option<Instant>,
    steps: Cell<u64>,
    until_poll: Cell<u64>,
    exhaustion: Cell<Option<BudgetExhaustion>>,
}

impl BudgetMeter {
    /// A meter that never exhausts on its own (used by the unmetered entry
    /// points so legacy callers pay one branch per charge and nothing else).
    pub fn unbounded() -> Self {
        RepairBudget::unbounded().meter()
    }

    /// Charges `n` steps. Returns `false` — permanently — once the budget
    /// is exhausted; the caller must stop expanding and unwind.
    pub fn charge(&self, n: u64) -> bool {
        if self.exhaustion.get().is_some() {
            return false;
        }
        let steps = self.steps.get().saturating_add(n);
        self.steps.set(steps);
        if self.max_steps != 0 && steps > self.max_steps {
            self.exhaust(ExhaustCause::StepCap);
            return false;
        }
        if let Some(deadline) = self.deadline {
            let until = self.until_poll.get().saturating_sub(n);
            if until == 0 {
                self.until_poll.set(DEADLINE_POLL_STEPS);
                if Instant::now() >= deadline {
                    self.exhaust(ExhaustCause::Deadline);
                    return false;
                }
            } else {
                self.until_poll.set(until);
            }
        }
        true
    }

    /// Exhausts the meter from outside (fault injection, cancellation).
    pub fn force_exhaust(&self) {
        if self.exhaustion.get().is_none() {
            self.exhaust(ExhaustCause::Forced);
        }
    }

    /// Steps charged so far.
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// The exhaustion record, once the meter has tripped.
    pub fn exhaustion(&self) -> Option<BudgetExhaustion> {
        self.exhaustion.get()
    }

    /// Whether the meter has tripped.
    pub fn is_exhausted(&self) -> bool {
        self.exhaustion.get().is_some()
    }

    /// `Err` with the exhaustion record if the meter has tripped.
    pub fn check(&self) -> Result<(), BudgetExhaustion> {
        match self.exhaustion.get() {
            Some(ex) => Err(ex),
            None => Ok(()),
        }
    }

    fn exhaust(&self, cause: ExhaustCause) {
        self.exhaustion.set(Some(BudgetExhaustion {
            steps: self.steps.get(),
            cause,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_meter_never_trips() {
        let meter = BudgetMeter::unbounded();
        for _ in 0..10_000 {
            assert!(meter.charge(1_000));
        }
        assert!(!meter.is_exhausted());
        assert_eq!(meter.steps(), 10_000_000);
        assert!(meter.check().is_ok());
    }

    #[test]
    fn step_cap_trips_and_stays_tripped() {
        let meter = RepairBudget::with_max_steps(10).meter();
        assert!(meter.charge(6));
        assert!(!meter.charge(6), "12 > 10 trips the cap");
        let ex = meter.exhaustion().expect("exhausted");
        assert_eq!(ex.cause, ExhaustCause::StepCap);
        assert_eq!(ex.steps, 12);
        // Permanently refused, steps frozen at the exhausting charge.
        assert!(!meter.charge(1));
        assert_eq!(meter.exhaustion().map(|e| e.steps), Some(12));
        assert_eq!(meter.check(), Err(ex));
    }

    #[test]
    fn elapsed_deadline_trips_at_poll_boundary() {
        let meter = RepairBudget::with_deadline(Duration::ZERO).meter();
        // Polling is coarse: the first DEADLINE_POLL_STEPS-1 steps pass.
        assert!(meter.charge(DEADLINE_POLL_STEPS - 1));
        assert!(!meter.charge(1), "poll boundary sees the elapsed deadline");
        assert_eq!(
            meter.exhaustion().map(|e| e.cause),
            Some(ExhaustCause::Deadline)
        );
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let meter = RepairBudget::with_deadline(Duration::from_secs(3600)).meter();
        assert!(meter.charge(DEADLINE_POLL_STEPS * 4));
        assert!(!meter.is_exhausted());
    }

    #[test]
    fn force_exhaust_records_forced_cause() {
        let meter = BudgetMeter::unbounded();
        meter.charge(7);
        meter.force_exhaust();
        let ex = meter.exhaustion().expect("forced");
        assert_eq!(ex.cause, ExhaustCause::Forced);
        assert_eq!(ex.steps, 7);
        // Forcing again does not overwrite the first record.
        meter.force_exhaust();
        assert_eq!(meter.exhaustion(), Some(ex));
        assert!(!meter.charge(1));
    }

    #[test]
    fn budget_constructors() {
        assert!(RepairBudget::unbounded().is_unbounded());
        assert!(RepairBudget::default().is_unbounded());
        assert!(!RepairBudget::with_max_steps(5).is_unbounded());
        assert!(!RepairBudget::with_deadline(Duration::from_secs(1)).is_unbounded());
        let display = BudgetExhaustion {
            steps: 42,
            cause: ExhaustCause::StepCap,
        }
        .to_string();
        assert!(
            display.contains("step cap") && display.contains("42"),
            "{display}"
        );
    }
}
