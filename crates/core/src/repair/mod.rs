//! Repair algorithms: the chase-based basic repair (Algorithm 1), the fast
//! repair with rule ordering and inverted indexes (Algorithm 2), and
//! multi-version repairs (§IV).

pub mod basic;
pub mod budget;
pub mod cache;
pub mod fast;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod multi;
pub mod parallel;
pub mod registry;
pub mod resilience;
pub mod retry;
pub mod rule_graph;
pub mod snapshot;
pub mod value_cache;
