//! Repair algorithms: the chase-based basic repair (Algorithm 1), the fast
//! repair with rule ordering and inverted indexes (Algorithm 2), and
//! multi-version repairs (§IV).

pub mod basic;
pub mod cache;
pub mod fast;
pub mod multi;
pub mod parallel;
pub mod registry;
pub mod rule_graph;
pub mod value_cache;
