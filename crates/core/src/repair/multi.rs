//! Multi-version repairs (§IV-C).
//!
//! When a rule finds several valid repairs for one error — Melvin Calvin
//! worked at both the University of Manchester and UC Berkeley — the repair
//! forks: each candidate continues independently, and every branch is chased
//! to its own fixpoint. All branches mark the same attributes positive and
//! differ only in the repaired column(s).

use crate::context::MatchContext;
use crate::rule::apply::{apply_rule, ApplyOptions, RuleApplication};
use crate::rule::DetectiveRule;
use dr_relation::Tuple;

/// Options for multi-version repair.
#[derive(Debug, Clone)]
pub struct MultiOptions {
    /// Rule-application options.
    pub apply: ApplyOptions,
    /// Upper bound on produced versions; branches beyond it are dropped
    /// (deterministically — candidates fork in sorted order).
    pub max_versions: usize,
}

impl Default for MultiOptions {
    fn default() -> Self {
        Self {
            apply: ApplyOptions::default(),
            max_versions: 64,
        }
    }
}

/// Chases `tuple` to **all** fixpoints under `rules`, forking on
/// multi-version repairs. Returns the distinct fixpoints (sorted by cell
/// values for determinism).
pub fn multi_repair_tuple(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    tuple: &Tuple,
    opts: &MultiOptions,
) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = Vec::new();
    let remaining: Vec<usize> = (0..rules.len()).collect();
    chase(ctx, rules, opts, tuple.clone(), remaining, &mut out);
    out.sort_by(|a, b| a.cells().cmp(b.cells()));
    out.dedup();
    out
}

fn chase(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    opts: &MultiOptions,
    start: Tuple,
    remaining: Vec<usize>,
    out: &mut Vec<Tuple>,
) {
    if out.len() >= opts.max_versions {
        return;
    }
    let mut t = start;
    let mut rem = remaining;
    loop {
        let mut fired: Option<(usize, Tuple, RuleApplication)> = None;
        for (pos, &ri) in rem.iter().enumerate() {
            let mut probe = t.clone();
            let application = apply_rule(ctx, &rules[ri], &mut probe, &opts.apply);
            if application.applied() {
                fired = Some((pos, probe, application));
                break;
            }
        }
        let Some((pos, probe, application)) = fired else {
            // Fixpoint.
            if out.len() < opts.max_versions {
                out.push(t);
            }
            return;
        };
        rem.remove(pos);
        if let RuleApplication::Repaired {
            col,
            candidates,
            newly_marked,
            normalized,
            ..
        } = &application
        {
            if candidates.len() > 1 {
                // Fork one branch per candidate, in sorted candidate order:
                // the first candidate continues in `probe`, the others
                // replay the marks and normalizations on the pre-application
                // state.
                chase(ctx, rules, opts, probe, rem.clone(), out);
                for extra in &candidates[1..] {
                    if out.len() >= opts.max_versions {
                        break;
                    }
                    let mut branch = t.clone();
                    for n in normalized {
                        if !branch.is_positive(n.col) {
                            branch.set(n.col, n.new.clone());
                        }
                    }
                    branch.set(*col, extra.clone());
                    for &c in newly_marked {
                        branch.mark_positive(c);
                    }
                    chase(ctx, rules, opts, branch, rem.clone(), out);
                }
                return;
            }
        }
        // Non-forking application: continue in-line.
        t = probe;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure4_rules, nobel_schema, table1_dirty};
    use dr_kb::fixtures::nobel_mini_kb;

    /// Example 10: r4 (Melvin Calvin) reaches exactly two fixpoints.
    #[test]
    fn example10_two_fixpoints_for_r4() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let r4 = table1_dirty().tuple(3).clone();

        let versions = multi_repair_tuple(&ctx, &rules, &r4, &MultiOptions::default());
        assert_eq!(versions.len(), 2, "Example 10 produces r4³ and r4⁴");

        let inst = schema.attr_expect("Institution");
        let city = schema.attr_expect("City");
        let country = schema.attr_expect("Country");

        // Sorted by cells: Berkeley variant first ("UC Berkeley" < "University …").
        assert_eq!(versions[0].get(inst), "UC Berkeley");
        assert_eq!(versions[0].get(city), "Berkeley");
        assert_eq!(versions[1].get(inst), "University of Manchester");
        assert_eq!(versions[1].get(city), "Manchester");
        for v in &versions {
            assert_eq!(v.get(country), "United States");
            // Example 10: every attribute ends positive in both versions.
            assert_eq!(v.positive_count(), 6, "fully marked: {v:?}");
        }
    }

    /// A tuple with single-version repairs yields exactly one fixpoint,
    /// identical to the basic chase.
    #[test]
    fn single_version_matches_basic() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let r1 = table1_dirty().tuple(0).clone();

        let versions = multi_repair_tuple(&ctx, &rules, &r1, &MultiOptions::default());
        assert_eq!(versions.len(), 1);

        let mut basic = r1.clone();
        crate::repair::basic::basic_repair_tuple(
            &ctx,
            &rules,
            &mut basic,
            &ApplyOptions::default(),
        );
        assert_eq!(versions[0], basic);
    }

    /// The version cap truncates forking deterministically.
    #[test]
    fn version_cap_respected() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let r4 = table1_dirty().tuple(3).clone();
        let opts = MultiOptions {
            max_versions: 1,
            ..Default::default()
        };
        let versions = multi_repair_tuple(&ctx, &rules, &r4, &opts);
        assert_eq!(versions.len(), 1);
    }

    /// An unmatched tuple yields itself, untouched.
    #[test]
    fn unmatched_tuple_passes_through() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let t = Tuple::from_strs(&["X", "Y", "Z", "W", "V", "U"]);
        let versions = multi_repair_tuple(&ctx, &rules, &t, &MultiOptions::default());
        assert_eq!(versions, vec![t]);
    }
}
