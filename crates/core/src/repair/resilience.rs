//! Per-tuple outcomes and the relation-level [`ResilienceReport`]
//! (DESIGN.md §4c).
//!
//! Every repaired tuple finishes in exactly one of three states:
//!
//! * **Completed** — the algorithm ran to its fixpoint; this is the only
//!   state the pre-resilience code could report.
//! * **Degraded** — the tuple's [`RepairBudget`](crate::repair::budget)
//!   ran out mid-repair. Rule applications already performed stand (each is
//!   atomic: a rule mutates the tuple only after its enumeration finished
//!   inside budget); the remaining rules were skipped.
//! * **Failed** — the worker panicked on this row. The panic was caught at
//!   the row boundary ([`parallel_repair`](crate::repair::parallel)), the
//!   payload message preserved, and every other row continued.
//!
//! The counts (plus loader quarantine counts and a histogram of the step
//! spend at exhaustion) aggregate into a [`ResilienceReport`] carried by
//! [`RelationReport`](crate::repair::basic::RelationReport) and surfaced
//! through the eval tables.

use crate::repair::basic::TupleReport;
use crate::repair::budget::BudgetExhaustion;

/// How one tuple's repair ended.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TupleOutcome {
    /// The repair ran to its fixpoint.
    #[default]
    Completed,
    /// The per-tuple budget ran out; the trace holds the rules that fully
    /// applied before exhaustion.
    Degraded {
        /// Why and when the budget tripped.
        reason: BudgetExhaustion,
    },
    /// The worker panicked on this row and the panic was isolated.
    Failed {
        /// The panic payload (or a placeholder for non-string payloads).
        message: String,
    },
}

impl TupleOutcome {
    /// Whether the repair ran to its fixpoint.
    pub fn is_completed(&self) -> bool {
        matches!(self, TupleOutcome::Completed)
    }
}

/// Number of power-of-two buckets in [`BudgetHistogram`].
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Histogram of step spend at budget exhaustion, in power-of-two buckets:
/// bucket `i` counts exhaustions whose step count `s` satisfies
/// `2^(i-1) < s <= 2^i` (bucket 0 holds `s <= 1`); the last bucket is
/// open-ended. Answers "how far past the cap do pathological tuples go"
/// without recording per-tuple step counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for BudgetHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl BudgetHistogram {
    /// Records one exhaustion that spent `steps`.
    pub fn record(&mut self, steps: u64) {
        self.buckets[Self::bucket_of(steps)] += 1;
    }

    /// The bucket index `steps` falls into.
    pub fn bucket_of(steps: u64) -> usize {
        if steps <= 1 {
            0
        } else {
            // ceil(log2(steps)), capped at the open-ended last bucket.
            let ceil_log2 = 64 - (steps - 1).leading_zeros() as usize;
            ceil_log2.min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Total exhaustions recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

impl std::ops::AddAssign for BudgetHistogram {
    fn add_assign(&mut self, rhs: Self) {
        for (a, b) in self.buckets.iter_mut().zip(rhs.buckets) {
            *a += b;
        }
    }
}

/// Relation-level resilience counters: what did *not* finish cleanly.
///
/// All-zero (`is_clean`) on a healthy run, so the pre-resilience reports
/// read unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Tuples whose budget ran out ([`TupleOutcome::Degraded`]).
    pub degraded: usize,
    /// Tuples whose worker panicked ([`TupleOutcome::Failed`]).
    pub failed: usize,
    /// Input records/lines quarantined by a lenient loader before the
    /// repair ever saw them (filled in by the pipeline that loaded the
    /// relation; repairers leave it zero).
    pub quarantined: usize,
    /// Retry *attempts* performed by
    /// [`parallel_repair`](crate::repair::parallel) under its
    /// [`RetryPolicy`](crate::repair::retry::RetryPolicy): every re-run of
    /// a panicked row counts once, so a row that failed twice before
    /// healing on its third attempt contributes 2. A healed row still
    /// shows here (its outcome is `Completed`), and a row that exhausted
    /// the attempt cap counts here *and* in [`failed`](Self::failed).
    /// Advisory — a retried-but-healed run is still
    /// [`is_clean`](Self::is_clean).
    pub retried: usize,
    /// Step spend at exhaustion for every degraded tuple.
    pub exhaustion: BudgetHistogram,
}

impl ResilienceReport {
    /// Tallies the per-tuple outcomes of a finished relation repair.
    pub fn tally(tuples: &[TupleReport]) -> Self {
        let mut out = Self::default();
        for t in tuples {
            match &t.outcome {
                TupleOutcome::Completed => {}
                TupleOutcome::Degraded { reason } => {
                    out.degraded += 1;
                    out.exhaustion.record(reason.steps);
                }
                TupleOutcome::Failed { .. } => out.failed += 1,
            }
        }
        out
    }

    /// Whether every tuple completed and nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.degraded == 0 && self.failed == 0 && self.quarantined == 0
    }

    /// Adds loader-quarantined records (see
    /// [`Quarantine`](dr_kb::Quarantine)).
    pub fn add_quarantined(&mut self, records: usize) {
        self.quarantined += records;
    }
}

impl std::ops::AddAssign for ResilienceReport {
    /// Counter-wise accumulation — used by experiment harnesses summing
    /// per-table reports into one row.
    fn add_assign(&mut self, rhs: Self) {
        self.degraded += rhs.degraded;
        self.failed += rhs.failed;
        self.quarantined += rhs.quarantined;
        self.retried += rhs.retried;
        self.exhaustion += rhs.exhaustion;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::budget::{BudgetExhaustion, ExhaustCause};

    fn degraded(steps: u64) -> TupleReport {
        TupleReport {
            outcome: TupleOutcome::Degraded {
                reason: BudgetExhaustion {
                    steps,
                    cause: ExhaustCause::StepCap,
                },
            },
            ..Default::default()
        }
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(BudgetHistogram::bucket_of(0), 0);
        assert_eq!(BudgetHistogram::bucket_of(1), 0);
        assert_eq!(BudgetHistogram::bucket_of(2), 1);
        assert_eq!(BudgetHistogram::bucket_of(3), 2);
        assert_eq!(BudgetHistogram::bucket_of(4), 2);
        assert_eq!(BudgetHistogram::bucket_of(5), 3);
        assert_eq!(BudgetHistogram::bucket_of(1 << 14), 14);
        assert_eq!(BudgetHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn tally_counts_outcomes() {
        let tuples = vec![
            TupleReport::default(),
            degraded(3),
            degraded(1000),
            TupleReport {
                outcome: TupleOutcome::Failed {
                    message: "boom".into(),
                },
                ..Default::default()
            },
        ];
        let r = ResilienceReport::tally(&tuples);
        assert_eq!(r.degraded, 2);
        assert_eq!(r.failed, 1);
        assert_eq!(r.quarantined, 0);
        assert_eq!(r.exhaustion.total(), 2);
        assert!(!r.is_clean());
        assert!(ResilienceReport::tally(&[TupleReport::default()]).is_clean());
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = ResilienceReport::tally(&[degraded(4)]);
        a.add_quarantined(3);
        a.retried = 2;
        let mut b = ResilienceReport::tally(&[degraded(4), degraded(9)]);
        b.retried = 1;
        a += b;
        assert_eq!(a.degraded, 3);
        assert_eq!(a.quarantined, 3);
        assert_eq!(a.retried, 3);
        assert_eq!(a.exhaustion.total(), 3);
        assert_eq!(a.exhaustion.buckets()[2], 2, "two exhaustions at 4 steps");
    }

    #[test]
    fn retried_is_advisory_for_cleanliness() {
        let r = ResilienceReport {
            retried: 4,
            ..Default::default()
        };
        assert!(r.is_clean(), "a healed retry leaves the run clean");
    }
}
