//! Instance-level matching graphs (§II-B): binding a tuple's cells to KB
//! nodes so that every node and edge constraint of a schema-level pattern is
//! satisfied.
//!
//! The solver is a backtracking subgraph search specialized for detective
//! rules: patterns are tiny (a handful of nodes), every node carries a value
//! constraint except at most one *free* node (the positive node during proof
//! negative), and candidates are drawn from the memoized
//! [`MatchContext`] indexes or derived from KB
//! adjacency.

use crate::context::MatchContext;
use crate::graph::schema::NodeType;
use crate::repair::budget::BudgetMeter;
use dr_kb::{Node, PredId};
use dr_simmatch::SimFn;
use std::sync::Arc;

/// One node of a matching pattern.
#[derive(Debug, Clone)]
pub struct PatternNode {
    /// Required KB type.
    pub ty: NodeType,
    /// Matching operation for the value constraint.
    pub sim: SimFn,
    /// The cell value this node must match; `None` makes the node *free*
    /// (type- and edge-constrained only).
    pub value: Option<String>,
    /// Precomputed type+value candidates (e.g. from the fast-repair cache).
    /// When present, used instead of a context lookup.
    pub base: Option<Arc<Vec<Node>>>,
}

impl PatternNode {
    /// A value-constrained node.
    pub fn constrained(ty: NodeType, sim: SimFn, value: impl Into<String>) -> Self {
        Self {
            ty,
            sim,
            value: Some(value.into()),
            base: None,
        }
    }

    /// A free node (no value constraint).
    pub fn free(ty: NodeType, sim: SimFn) -> Self {
        Self {
            ty,
            sim,
            value: None,
            base: None,
        }
    }
}

/// A matching pattern: nodes plus directed, labeled edges (indexes into
/// `nodes`).
#[derive(Debug, Clone, Default)]
pub struct Pattern {
    /// Pattern nodes.
    pub nodes: Vec<PatternNode>,
    /// Directed edges `(from, rel, to)`.
    pub edges: Vec<(usize, PredId, usize)>,
}

impl Pattern {
    /// Candidate KB nodes for pattern node `i`, honoring `base` when present.
    fn base_candidates(&self, ctx: &MatchContext<'_>, i: usize) -> Option<Arc<Vec<Node>>> {
        let node = &self.nodes[i];
        if let Some(base) = &node.base {
            return Some(Arc::clone(base));
        }
        node.value
            .as_deref()
            .map(|v| Arc::new(ctx.candidates(node.ty, node.sim, v)))
    }

    /// A search order: start from the constrained node with the fewest base
    /// candidates, then expand along edges (BFS); disconnected leftovers are
    /// appended with fresh starts.
    fn order(&self, base: &[Option<Arc<Vec<Node>>>]) -> Vec<usize> {
        let n = self.nodes.len();
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        // Undirected adjacency.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, _, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        while order.len() < n {
            // Next start: unplaced constrained node with fewest candidates,
            // else any unplaced node.
            let start = (0..n)
                .filter(|&i| !placed[i])
                .min_by_key(|&i| base[i].as_ref().map_or(usize::MAX, |c| c.len()))
                .expect("unplaced node exists");
            let mut queue = std::collections::VecDeque::from([start]);
            placed[start] = true;
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &v in &adj[u] {
                    if !placed[v] {
                        placed[v] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        order
    }
}

/// A complete assignment: `assignment[i]` is the KB node bound to pattern
/// node `i`.
pub type Assignment = Vec<Node>;

/// Searches for assignments of `pattern` against `ctx`.
///
/// Returns the first complete assignment, or `None`.
pub fn find_assignment(ctx: &MatchContext<'_>, pattern: &Pattern) -> Option<Assignment> {
    let meter = BudgetMeter::unbounded();
    let mut result = None;
    solve(ctx, pattern, &meter, &mut |assignment| {
        result = Some(assignment.to_vec());
        Control::Stop
    });
    result
}

/// Whether any complete assignment exists.
pub fn has_assignment(ctx: &MatchContext<'_>, pattern: &Pattern) -> bool {
    find_assignment(ctx, pattern).is_some()
}

/// [`has_assignment`] charging candidate expansions to `meter`; when the
/// meter exhausts mid-search the result is `false` and the caller must
/// consult [`BudgetMeter::exhaustion`] to tell "no match" from "ran out".
pub fn has_assignment_metered(
    ctx: &MatchContext<'_>,
    pattern: &Pattern,
    meter: &BudgetMeter,
) -> bool {
    let mut found = false;
    solve(ctx, pattern, meter, &mut |_| {
        found = true;
        Control::Stop
    });
    found
}

/// Collects the distinct KB nodes that pattern node `target` takes across
/// **all** assignments (used to enumerate repair candidates; sorted).
pub fn collect_bindings(ctx: &MatchContext<'_>, pattern: &Pattern, target: usize) -> Vec<Node> {
    let meter = BudgetMeter::unbounded();
    let mut out: Vec<Node> = Vec::new();
    solve(ctx, pattern, &meter, &mut |assignment| {
        out.push(assignment[target]);
        Control::Continue
    });
    out.sort_unstable();
    out.dedup();
    out
}

/// Visits every complete assignment; the callback returns `false` to stop
/// the enumeration early.
pub fn for_each_assignment(
    ctx: &MatchContext<'_>,
    pattern: &Pattern,
    f: impl FnMut(&Assignment) -> bool,
) {
    for_each_assignment_metered(ctx, pattern, &BudgetMeter::unbounded(), f);
}

/// [`for_each_assignment`] charging candidate expansions to `meter`: every
/// node the backtracking solver considers binding costs one step. When the
/// meter exhausts, the search stops as if the visitor had asked to — the
/// caller must treat the enumeration as incomplete (check
/// [`BudgetMeter::exhaustion`]) and abort before acting on partial results.
pub fn for_each_assignment_metered(
    ctx: &MatchContext<'_>,
    pattern: &Pattern,
    meter: &BudgetMeter,
    mut f: impl FnMut(&Assignment) -> bool,
) {
    solve(ctx, pattern, meter, &mut |assignment| {
        if f(assignment) {
            Control::Continue
        } else {
            Control::Stop
        }
    });
}

/// Visitor control flow.
enum Control {
    Continue,
    Stop,
}

fn solve(
    ctx: &MatchContext<'_>,
    pattern: &Pattern,
    meter: &BudgetMeter,
    visit: &mut dyn FnMut(&Assignment) -> Control,
) {
    let n = pattern.nodes.len();
    if n == 0 || meter.is_exhausted() {
        return;
    }
    let base: Vec<Option<Arc<Vec<Node>>>> =
        (0..n).map(|i| pattern.base_candidates(ctx, i)).collect();
    // A constrained node with zero candidates makes the pattern unsatisfiable.
    if base
        .iter()
        .any(|b| b.as_ref().is_some_and(|c| c.is_empty()))
    {
        return;
    }
    let order = pattern.order(&base);
    let mut assignment: Vec<Option<Node>> = vec![None; n];
    recurse(
        ctx,
        pattern,
        &base,
        &order,
        0,
        &mut assignment,
        meter,
        visit,
    );
}

/// Candidates for `node` given the current partial assignment.
fn candidates_for(
    ctx: &MatchContext<'_>,
    pattern: &Pattern,
    base: &[Option<Arc<Vec<Node>>>],
    assignment: &[Option<Node>],
    node: usize,
) -> Vec<Node> {
    let pnode = &pattern.nodes[node];

    // Constraint check against every edge touching `node` whose other
    // endpoint is already assigned. KB reads go through the context so an
    // attached recorder captures them as footprint dependencies.
    let edge_ok = |candidate: Node| -> bool {
        pattern.edges.iter().all(|&(u, rel, v)| {
            if u == node {
                match assignment[v] {
                    Some(xv) => match candidate {
                        Node::Instance(ci) => ctx.kb_has_edge(ci, rel, xv),
                        Node::Literal(_) => false,
                    },
                    None => true,
                }
            } else if v == node {
                match assignment[u] {
                    Some(Node::Instance(xu)) => ctx.kb_has_edge(xu, rel, candidate),
                    Some(Node::Literal(_)) => false,
                    None => true,
                }
            } else {
                true
            }
        })
    };

    if let Some(base_list) = &base[node] {
        return base_list.iter().copied().filter(|&c| edge_ok(c)).collect();
    }

    // Free node: derive candidates from an assigned neighbor if possible.
    for &(u, rel, v) in &pattern.edges {
        if u == node {
            if let Some(xv) = assignment[v] {
                return ctx
                    .kb_subjects(xv, rel)
                    .iter()
                    .map(|&s| Node::Instance(s))
                    .filter(|&c| ctx.type_ok(c, pnode.ty) && edge_ok(c))
                    .collect();
            }
        } else if v == node {
            if let Some(Node::Instance(xu)) = assignment[u] {
                return ctx
                    .kb_objects(xu, rel)
                    .iter()
                    .copied()
                    .filter(|&c| ctx.type_ok(c, pnode.ty) && edge_ok(c))
                    .collect();
            }
        }
    }

    // No assigned neighbor: fall back to the full type extent.
    ctx.extent(pnode.ty)
        .into_iter()
        .filter(|&c| edge_ok(c))
        .collect()
}

#[allow(clippy::too_many_arguments)] // internal recursion frame, not an API
fn recurse(
    ctx: &MatchContext<'_>,
    pattern: &Pattern,
    base: &[Option<Arc<Vec<Node>>>],
    order: &[usize],
    pos: usize,
    assignment: &mut Vec<Option<Node>>,
    meter: &BudgetMeter,
    visit: &mut dyn FnMut(&Assignment) -> Control,
) -> Control {
    if pos == order.len() {
        let complete: Assignment = assignment
            .iter()
            .map(|a| a.expect("complete assignment"))
            .collect();
        return visit(&complete);
    }
    let node = order[pos];
    let candidates = candidates_for(ctx, pattern, base, assignment, node);
    // Budget: every candidate the solver considers binding is one step (+1
    // so zero-candidate dead ends still cost something). The count depends
    // only on the KB, the pattern, and the tuple values — not on cache
    // warmth or thread schedule — so exhaustion is deterministic.
    if !meter.charge(candidates.len() as u64 + 1) {
        return Control::Stop;
    }
    for candidate in candidates {
        assignment[node] = Some(candidate);
        if let Control::Stop = recurse(ctx, pattern, base, order, pos + 1, assignment, meter, visit)
        {
            assignment[node] = None;
            return Control::Stop;
        }
        assignment[node] = None;
    }
    Control::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_kb::fixtures::{names, nobel_mini_kb};
    use dr_kb::KnowledgeBase;

    fn class(kb: &KnowledgeBase, name: &str) -> NodeType {
        NodeType::Class(kb.class_named(name).unwrap())
    }

    /// Figure 3(b): Name/DOB/Country/Institution of r1 all bind.
    #[test]
    fn figure3b_instance_graph_exists() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let mut p = Pattern::default();
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::LAUREATE),
            SimFn::Equal,
            "Avram Hershko",
        ));
        p.nodes.push(PatternNode::constrained(
            NodeType::Literal,
            SimFn::Equal,
            "1937-12-31",
        ));
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::COUNTRY),
            SimFn::Equal,
            "Israel",
        ));
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::ORGANIZATION),
            SimFn::EditDistance(2),
            "Israel Institute of Technology",
        ));
        p.edges
            .push((0, kb.pred_named(names::BORN_ON_DATE).unwrap(), 1));
        p.edges
            .push((0, kb.pred_named(names::CITIZEN_OF).unwrap(), 2));
        p.edges
            .push((0, kb.pred_named(names::WORKS_AT).unwrap(), 3));

        let a = find_assignment(&ctx, &p).expect("r1 matches Figure 3(a)");
        assert_eq!(kb.node_value(a[0]), "Avram Hershko");
        assert_eq!(kb.node_value(a[3]), "Israel Institute of Technology");
    }

    /// The negative side of ϕ2: Karcag is where Hershko was born, and a free
    /// positive node finds Haifa through worksAt ∘ locatedIn.
    #[test]
    fn proof_negative_shape_for_city() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        // Nodes: 0 = Name, 1 = Institution, 2 = negative City (value Karcag),
        // 3 = free positive City.
        let mut p = Pattern::default();
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::LAUREATE),
            SimFn::Equal,
            "Avram Hershko",
        ));
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::ORGANIZATION),
            SimFn::EditDistance(2),
            "Israel Institute of Technology",
        ));
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::CITY),
            SimFn::Equal,
            "Karcag",
        ));
        p.nodes
            .push(PatternNode::free(class(&kb, names::CITY), SimFn::Equal));
        let works_at = kb.pred_named(names::WORKS_AT).unwrap();
        let located_in = kb.pred_named(names::LOCATED_IN).unwrap();
        let born_in = kb.pred_named(names::BORN_IN).unwrap();
        p.edges.push((0, works_at, 1));
        p.edges.push((0, born_in, 2));
        p.edges.push((1, located_in, 3));

        let bindings = collect_bindings(&ctx, &p, 3);
        assert_eq!(bindings.len(), 1);
        assert_eq!(kb.node_value(bindings[0]), "Haifa");
    }

    /// Melvin Calvin works at two institutions: the free node enumerates
    /// both (multi-version repairs, Example 10).
    #[test]
    fn free_node_enumerates_all_bindings() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let mut p = Pattern::default();
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::LAUREATE),
            SimFn::Equal,
            "Melvin Calvin",
        ));
        p.nodes.push(PatternNode::free(
            class(&kb, names::ORGANIZATION),
            SimFn::EditDistance(2),
        ));
        p.edges
            .push((0, kb.pred_named(names::WORKS_AT).unwrap(), 1));

        let bindings = collect_bindings(&ctx, &p, 1);
        let mut values: Vec<&str> = bindings.iter().map(|&n| kb.node_value(n)).collect();
        values.sort_unstable();
        assert_eq!(values, vec!["UC Berkeley", "University of Manchester"]);
    }

    #[test]
    fn violated_edge_fails() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let mut p = Pattern::default();
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::LAUREATE),
            SimFn::Equal,
            "Avram Hershko",
        ));
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::CITY),
            SimFn::Equal,
            "Haifa",
        ));
        // Hershko was NOT born in Haifa.
        p.edges.push((0, kb.pred_named(names::BORN_IN).unwrap(), 1));
        assert!(find_assignment(&ctx, &p).is_none());
    }

    #[test]
    fn wrong_value_fails() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let mut p = Pattern::default();
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::LAUREATE),
            SimFn::Equal,
            "Nobody Inparticular",
        ));
        assert!(find_assignment(&ctx, &p).is_none());
    }

    #[test]
    fn empty_pattern_has_no_assignment() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        assert!(find_assignment(&ctx, &Pattern::default()).is_none());
    }

    #[test]
    fn edge_into_literal_node() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let mut p = Pattern::default();
        p.nodes.push(PatternNode::constrained(
            class(&kb, names::LAUREATE),
            SimFn::Equal,
            "Marie Curie",
        ));
        p.nodes
            .push(PatternNode::free(NodeType::Literal, SimFn::Equal));
        p.edges
            .push((0, kb.pred_named(names::BORN_ON_DATE).unwrap(), 1));
        let bindings = collect_bindings(&ctx, &p, 1);
        assert_eq!(bindings.len(), 1);
        assert_eq!(kb.node_value(bindings[0]), "1867-11-07");
    }

    #[test]
    fn precomputed_base_is_respected() {
        let kb = nobel_mini_kb();
        let ctx = MatchContext::new(&kb);
        let mut p = Pattern::default();
        let mut node = PatternNode::constrained(class(&kb, names::CITY), SimFn::Equal, "Haifa");
        // Deliberately empty base: the solver must treat the node as
        // unsatisfiable even though "Haifa" exists.
        node.base = Some(Arc::new(Vec::new()));
        p.nodes.push(node);
        assert!(find_assignment(&ctx, &p).is_none());
    }
}
