//! Schema-level matching graphs (§II-B).
//!
//! A [`SchemaGraph`] explains how a relation's columns are semantically
//! linked through a KB: each node binds a column to a KB type and a matching
//! operation (`{col, type, sim}`), and each directed edge carries a KB
//! relationship or property. It is a *local* interpretation — any connected
//! induced subgraph of a schema-level matching graph is again one.

use dr_kb::{ClassId, KnowledgeBase, PredId};
use dr_relation::{AttrId, Schema};
use dr_simmatch::SimFn;
use std::fmt;

/// The KB type a schema node binds its column to: a class, or `literal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeType {
    /// Values of the column are instances of this class (or a subclass).
    Class(ClassId),
    /// Values of the column are literals.
    Literal,
}

impl NodeType {
    /// Human-readable rendering against a KB.
    pub fn display<'a>(&self, kb: &'a KnowledgeBase) -> &'a str {
        match *self {
            NodeType::Class(c) => kb.class_name(c),
            NodeType::Literal => "literal",
        }
    }
}

/// One node of a schema-level matching graph: `{col, type, sim}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemaNode {
    /// The relation column this node describes.
    pub col: AttrId,
    /// The KB type its values belong to.
    pub ty: NodeType,
    /// How a cell value is matched against a KB value.
    pub sim: SimFn,
}

impl SchemaNode {
    /// Convenience constructor.
    pub fn new(col: AttrId, ty: NodeType, sim: SimFn) -> Self {
        Self { col, ty, sim }
    }
}

// `SchemaNode` keys the fast-repair element cache; keep it word-sized.
const _: () = assert!(std::mem::size_of::<SchemaNode>() <= 24);

/// A directed, labeled edge between two nodes (by index) of a
/// [`SchemaGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemaEdge {
    /// Index of the source node.
    pub from: usize,
    /// Index of the target node.
    pub to: usize,
    /// The KB relationship or property linking the two columns.
    pub rel: PredId,
}

/// Validation failures for a schema-level matching graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaGraphError {
    /// Two nodes reference the same column.
    DuplicateColumn(AttrId),
    /// An edge endpoint is out of range.
    BadEdgeEndpoint(usize),
    /// An edge starts at a literal-typed node (literals have no out-edges in
    /// RDF).
    EdgeFromLiteral(usize),
    /// The graph is not (weakly) connected.
    Disconnected,
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for SchemaGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaGraphError::DuplicateColumn(a) => {
                write!(f, "two nodes reference the same column {a:?}")
            }
            SchemaGraphError::BadEdgeEndpoint(i) => write!(f, "edge endpoint {i} out of range"),
            SchemaGraphError::EdgeFromLiteral(i) => {
                write!(f, "edge starts at literal-typed node {i}")
            }
            SchemaGraphError::Disconnected => write!(f, "graph is not connected"),
            SchemaGraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for SchemaGraphError {}

/// A schema-level matching graph `GS(VS, ES)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchemaGraph {
    nodes: Vec<SchemaNode>,
    edges: Vec<SchemaEdge>,
}

impl SchemaGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, node: SchemaNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds a directed edge `from → to` labeled `rel`.
    pub fn add_edge(&mut self, from: usize, to: usize, rel: PredId) {
        self.edges.push(SchemaEdge { from, to, rel });
    }

    /// The nodes, by index.
    pub fn nodes(&self) -> &[SchemaNode] {
        &self.nodes
    }

    /// The edges.
    pub fn edges(&self) -> &[SchemaEdge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the node describing `col`, if any.
    pub fn node_for_col(&self, col: AttrId) -> Option<usize> {
        self.nodes.iter().position(|n| n.col == col)
    }

    /// Validates structural invariants: non-empty, per-column uniqueness,
    /// edge sanity, weak connectivity.
    pub fn validate(&self) -> Result<(), SchemaGraphError> {
        if self.nodes.is_empty() {
            return Err(SchemaGraphError::Empty);
        }
        let mut seen_cols = dr_kb::FxHashSet::default();
        for n in &self.nodes {
            if !seen_cols.insert(n.col) {
                return Err(SchemaGraphError::DuplicateColumn(n.col));
            }
        }
        for e in &self.edges {
            if e.from >= self.nodes.len() {
                return Err(SchemaGraphError::BadEdgeEndpoint(e.from));
            }
            if e.to >= self.nodes.len() {
                return Err(SchemaGraphError::BadEdgeEndpoint(e.to));
            }
            if self.nodes[e.from].ty == NodeType::Literal {
                return Err(SchemaGraphError::EdgeFromLiteral(e.from));
            }
        }
        if !self.is_connected() {
            return Err(SchemaGraphError::Disconnected);
        }
        Ok(())
    }

    /// Whether the graph is weakly connected (single node counts as
    /// connected; empty does not).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for e in &self.edges {
                for (a, b) in [(e.from, e.to), (e.to, e.from)] {
                    if a == u && !seen[b] {
                        seen[b] = true;
                        stack.push(b);
                    }
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// The induced subgraph after removing node `idx` (and its edges).
    /// Remaining node indexes are compacted, preserving order.
    pub fn without_node(&self, idx: usize) -> SchemaGraph {
        let mut g = SchemaGraph::new();
        let mut remap = vec![usize::MAX; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if i != idx {
                remap[i] = g.add_node(*n);
            }
        }
        for e in &self.edges {
            if e.from != idx && e.to != idx {
                g.add_edge(remap[e.from], remap[e.to], e.rel);
            }
        }
        g
    }

    /// A canonical representation: sorted `(col, ty, sim)` node list and
    /// sorted `(col_from, rel, col_to)` edge multiset.
    ///
    /// Because every node references a distinct column, two schema graphs are
    /// isomorphic **iff** their canonical keys are equal — the column names
    /// pin the only possible node correspondence.
    pub fn canonical_key(&self) -> CanonicalKey {
        let mut nodes: Vec<SchemaNode> = self.nodes.clone();
        nodes.sort_by_key(|n| (n.col, n.ty, n.sim));
        let mut edges: Vec<(AttrId, PredId, AttrId)> = self
            .edges
            .iter()
            .map(|e| (self.nodes[e.from].col, e.rel, self.nodes[e.to].col))
            .collect();
        edges.sort_unstable();
        CanonicalKey { nodes, edges }
    }

    /// Whether `self` and `other` are isomorphic (see [`canonical_key`]).
    ///
    /// [`canonical_key`]: SchemaGraph::canonical_key
    pub fn isomorphic(&self, other: &SchemaGraph) -> bool {
        self.canonical_key() == other.canonical_key()
    }

    /// Renders the graph for debugging/docs against a KB and schema.
    pub fn render(&self, kb: &KnowledgeBase, schema: &Schema) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "v{i}: col={} type={} sim={}",
                schema.attr_name(n.col),
                n.ty.display(kb),
                n.sim
            );
        }
        for e in &self.edges {
            let _ = writeln!(out, "v{} -[{}]-> v{}", e.from, kb.pred_name(e.rel), e.to);
        }
        out
    }
}

/// Canonical form of a [`SchemaGraph`]; equality ⇔ isomorphism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalKey {
    nodes: Vec<SchemaNode>,
    edges: Vec<(AttrId, PredId, AttrId)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_kb::fixtures::{figure1_kb, names};
    use dr_relation::Schema;

    /// Figure 3(a): Name —bornOnDate→ DOB, Name —worksAt→ Institution,
    /// Name —isCitizenOf→ Country.
    fn fig3a() -> (SchemaGraph, std::sync::Arc<Schema>, dr_kb::KnowledgeBase) {
        let kb = figure1_kb();
        let schema = Schema::new(
            "Nobel",
            &["Name", "DOB", "Country", "Prize", "Institution", "City"],
        );
        let mut g = SchemaGraph::new();
        let laureate = kb.class_named(names::LAUREATE).unwrap();
        let organization = kb.class_named(names::ORGANIZATION).unwrap();
        let country = kb.class_named(names::COUNTRY).unwrap();
        let v1 = g.add_node(SchemaNode::new(
            schema.attr_expect("Name"),
            NodeType::Class(laureate),
            SimFn::Equal,
        ));
        let v2 = g.add_node(SchemaNode::new(
            schema.attr_expect("DOB"),
            NodeType::Literal,
            SimFn::Equal,
        ));
        let v3 = g.add_node(SchemaNode::new(
            schema.attr_expect("Country"),
            NodeType::Class(country),
            SimFn::Equal,
        ));
        let v5 = g.add_node(SchemaNode::new(
            schema.attr_expect("Institution"),
            NodeType::Class(organization),
            SimFn::EditDistance(2),
        ));
        g.add_edge(v1, v2, kb.pred_named(names::BORN_ON_DATE).unwrap());
        g.add_edge(v1, v3, kb.pred_named(names::CITIZEN_OF).unwrap());
        g.add_edge(v1, v5, kb.pred_named(names::WORKS_AT).unwrap());
        (g, schema, kb)
    }

    #[test]
    fn valid_graph_passes() {
        let (g, _, _) = fig3a();
        assert!(g.validate().is_ok());
        assert!(g.is_connected());
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn duplicate_column_rejected() {
        let (mut g, schema, _) = fig3a();
        g.add_node(SchemaNode::new(
            schema.attr_expect("Name"),
            NodeType::Literal,
            SimFn::Equal,
        ));
        assert!(matches!(
            g.validate(),
            Err(SchemaGraphError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn disconnected_rejected() {
        let (mut g, schema, _) = fig3a();
        g.add_node(SchemaNode::new(
            schema.attr_expect("City"),
            NodeType::Literal,
            SimFn::Equal,
        ));
        assert_eq!(g.validate(), Err(SchemaGraphError::Disconnected));
    }

    #[test]
    fn edge_from_literal_rejected() {
        let (mut g, _, kb) = fig3a();
        // v2 is the literal DOB node; index 1.
        g.add_edge(1, 0, kb.pred_named(names::WORKS_AT).unwrap());
        assert_eq!(g.validate(), Err(SchemaGraphError::EdgeFromLiteral(1)));
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(SchemaGraph::new().validate(), Err(SchemaGraphError::Empty));
    }

    #[test]
    fn without_node_removes_edges_and_compacts() {
        let (g, _, _) = fig3a();
        let sub = g.without_node(0); // remove Name: all edges vanish
        assert_eq!(sub.len(), 3);
        assert!(sub.edges().is_empty());
        assert!(!sub.is_connected());

        let sub2 = g.without_node(1); // remove DOB
        assert_eq!(sub2.len(), 3);
        assert_eq!(sub2.edges().len(), 2);
        assert!(sub2.is_connected());
    }

    #[test]
    fn isomorphism_is_node_order_independent() {
        let (g, schema, kb) = fig3a();
        // Rebuild with nodes in a different insertion order.
        let mut h = SchemaGraph::new();
        let laureate = kb.class_named(names::LAUREATE).unwrap();
        let organization = kb.class_named(names::ORGANIZATION).unwrap();
        let country = kb.class_named(names::COUNTRY).unwrap();
        let inst = h.add_node(SchemaNode::new(
            schema.attr_expect("Institution"),
            NodeType::Class(organization),
            SimFn::EditDistance(2),
        ));
        let dob = h.add_node(SchemaNode::new(
            schema.attr_expect("DOB"),
            NodeType::Literal,
            SimFn::Equal,
        ));
        let ctry = h.add_node(SchemaNode::new(
            schema.attr_expect("Country"),
            NodeType::Class(country),
            SimFn::Equal,
        ));
        let name = h.add_node(SchemaNode::new(
            schema.attr_expect("Name"),
            NodeType::Class(laureate),
            SimFn::Equal,
        ));
        h.add_edge(name, inst, kb.pred_named(names::WORKS_AT).unwrap());
        h.add_edge(name, ctry, kb.pred_named(names::CITIZEN_OF).unwrap());
        h.add_edge(name, dob, kb.pred_named(names::BORN_ON_DATE).unwrap());
        assert!(g.isomorphic(&h));
    }

    #[test]
    fn isomorphism_detects_differences() {
        let (g, _, kb) = fig3a();
        let mut h = g.clone();
        assert!(g.isomorphic(&h));
        h.add_edge(0, 3, kb.pred_named(names::BORN_IN).unwrap());
        assert!(!g.isomorphic(&h));
    }

    #[test]
    fn render_mentions_columns_and_rels() {
        let (g, schema, kb) = fig3a();
        let text = g.render(&kb, &schema);
        assert!(text.contains("col=Name"));
        assert!(text.contains("worksAt"));
        assert!(text.contains("sim=ED,2"));
    }
}
