//! Matching graphs: schema-level patterns and their instance-level
//! instantiations against a KB (§II-B).

pub mod instance;
pub mod schema;
