//! # dr-core — detective rules
//!
//! The primary contribution of *Cleaning Relations using Knowledge Bases*
//! (Hao, Tang, Li, Li — ICDE 2017): **detective rules (DRs)**, graph-shaped
//! cleaning rules that connect a relation to an RDF knowledge base and
//! simultaneously model a column's *positive* semantics (how correct values
//! link to the rest of the tuple) and *negative* semantics (how wrong values
//! connect to correct ones). A DR can mark values correct, detect an error
//! precisely, and draw its repair from the KB — deterministically, without
//! heuristics.
//!
//! The crate provides:
//!
//! * [`graph::schema`] / [`graph::instance`] — schema- and instance-level
//!   matching graphs (§II-B);
//! * [`rule`] — the [`DetectiveRule`] type, rule
//!   generation by example (§III-A), and consistency analysis (§III-C);
//! * [`repair`] — the basic chase (`bRepair`, Algorithm 1), the fast repair
//!   (`fRepair`, Algorithm 2) with rule-order selection and inverted
//!   indexes, and multi-version repairs (§IV);
//! * [`fixtures`] — the paper's running example (Table I, Figure 4).

#![warn(missing_docs)]

pub mod context;
pub mod fixtures;
pub mod graph;
mod obs;
pub mod repair;
pub mod rule;

pub use context::{FootprintRecorder, IndexMemo, MatchContext};
pub use graph::schema::{NodeType, SchemaGraph, SchemaNode};
pub use repair::basic::PhaseTimings;
pub use repair::basic::{
    basic_repair, basic_repair_tuple, RelationReport, RepairStep, TupleReport,
};
pub use repair::budget::{BudgetExhaustion, BudgetMeter, ExhaustCause, RepairBudget};
pub use repair::cache::{ElementCache, ElementCacheStats};
pub use repair::fast::{fast_repair, FastRepairer};
#[cfg(feature = "fault-injection")]
pub use repair::fault::{Fault, FaultPlan, FaultSpec};
pub use repair::multi::{multi_repair_tuple, MultiOptions};
pub use repair::parallel::{parallel_repair, parallel_repair_selective, ParallelOptions};
pub use repair::registry::{
    CacheKey, CacheRegistry, RegistryConfig, RegistryStats, SnapshotGcConfig, SnapshotStats,
};
pub use repair::resilience::{BudgetHistogram, ResilienceReport, TupleOutcome};
pub use repair::retry::RetryPolicy;
pub use repair::rule_graph::RuleGraph;
pub use repair::snapshot::{SnapshotError, SnapshotKey, SnapshotPayload};
pub use repair::value_cache::{CacheStats, ValueCache, ValueCacheConfig};
pub use rule::apply::{
    apply_rule, apply_rule_cached, ApplyOptions, Normalization, RuleApplication,
};
pub use rule::consistency::{
    check_consistency, check_consistency_multi, contending_pairs, Consistency, ConsistencyOptions,
};
pub use rule::generation::{
    discover_graph, generate_rules, rule_repairs_examples, rule_respects_positives,
    DiscoveredGraph, GeneratedRule, GenerationConfig,
};
pub use rule::text::{parse_rules, rules_to_text, RuleTextError};
pub use rule::{DetectiveRule, RuleEdge, RuleError, RuleNodeRef};
