//! Applying one detective rule to one tuple (§II-C semantics, the body of
//! Algorithm 1's loop).
//!
//! Three outcomes:
//!
//! 1. **Proof positive** — an instance-level match of `Ve ∪ {p}` exists:
//!    every matched column is marked `+`.
//! 2. **Proof negative + correction** — a match of `Ve ∪ {n}` exists *and*
//!    the same evidence instances extend to `Ve ∪ {p}` with some `x_p ≠ x_n`:
//!    `t[col(n)]` is wrong and is repaired to the value of `x_p`, then all of
//!    `col(Ve ∪ {p})` are marked `+`.
//! 3. **Not applicable** — neither holds, or nothing new would be marked.
//!
//! ### Fuzzy-value normalization
//!
//! When a node matches through a tolerant `sim` (e.g. `ED,2`), the cell may
//! hold a typo'd variant of the KB label (*Paster Institute*). The paper's
//! experiments repair typos "to the most similar candidate" (§V Exp-2(B));
//! we implement that as *normalization*: if every instance-level match binds
//! the node to a single canonical label, the cell is rewritten to it while
//! being marked. Normalization is skipped when matches are ambiguous (two
//! different labels) or the cell is already frozen. It can be disabled via
//! [`ApplyOptions::normalize_fuzzy`] for ablations.

use crate::context::MatchContext;
use crate::graph::instance::{for_each_assignment_metered, Pattern, PatternNode};
use crate::graph::schema::SchemaNode;
use crate::repair::budget::{BudgetExhaustion, BudgetMeter};
use crate::repair::cache::ElementCache;
use crate::rule::{DetectiveRule, RuleNodeRef};
use dr_kb::{FxHashSet, Node};
use dr_relation::{AttrId, Tuple};

/// Options controlling rule application.
#[derive(Debug, Clone)]
pub struct ApplyOptions {
    /// Rewrite fuzzily matched cells to the canonical KB label when the
    /// binding is unambiguous.
    pub normalize_fuzzy: bool,
    /// Stop enumerating instance-level matches after this many assignments
    /// (existence is already established; only normalization/multi-version
    /// completeness degrades).
    pub max_assignments: usize,
    /// §II-C case (2) without correction: when the negative side matches
    /// but the KB holds no repair instance `x_p`, still mark the evidence
    /// positive and flag the cell as detected-wrong (Sherlock-style
    /// annotation). Off by default — Algorithm 1 only acts when a full
    /// repair exists.
    pub detect_without_repair: bool,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        Self {
            normalize_fuzzy: true,
            max_assignments: 10_000,
            detect_without_repair: false,
        }
    }
}

/// A value rewrite performed while marking (typo normalization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Normalization {
    /// The rewritten column.
    pub col: AttrId,
    /// Previous cell value.
    pub old: String,
    /// Canonical KB label now stored.
    pub new: String,
}

/// The result of applying one rule to one tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleApplication {
    /// The rule neither matched nor could mark anything new.
    NotApplicable,
    /// Proof positive: columns marked correct, possibly normalized.
    ProofPositive {
        /// Columns newly marked positive.
        newly_marked: Vec<AttrId>,
        /// Typo normalizations applied while marking.
        normalized: Vec<Normalization>,
    },
    /// Proof negative without correction (only with
    /// [`ApplyOptions::detect_without_repair`]): the negative semantics
    /// matched but the KB offers no repair instance. The evidence is marked
    /// positive and `col` is flagged wrong, its value untouched.
    DetectedWrong {
        /// The detected-wrong column.
        col: AttrId,
        /// Evidence columns newly marked positive.
        newly_marked: Vec<AttrId>,
    },
    /// Proof negative + correction: `col` was wrong and has been repaired.
    Repaired {
        /// The repaired column (`col(n) = col(p)`).
        col: AttrId,
        /// The wrong value that was replaced.
        old: String,
        /// The value written (first of `candidates`).
        new: String,
        /// All valid repair values (multi-version repairs, sorted). Contains
        /// `new` as its first element.
        candidates: Vec<String>,
        /// Columns newly marked positive (evidence + repaired column).
        newly_marked: Vec<AttrId>,
        /// Typo normalizations applied to evidence cells.
        normalized: Vec<Normalization>,
    },
}

impl RuleApplication {
    /// Whether the rule did anything to the tuple.
    pub fn applied(&self) -> bool {
        !matches!(self, RuleApplication::NotApplicable)
    }
}

/// Builds a constrained pattern node for `node`, seeding its base candidate
/// list from the shared element cache.
fn cached_node(
    ctx: &MatchContext<'_>,
    cache: &mut ElementCache<'_>,
    tuple: &Tuple,
    node: &SchemaNode,
) -> PatternNode {
    let mut pn = PatternNode::constrained(node.ty, node.sim, tuple.get(node.col));
    pn.base = Some(cache.candidates(ctx, tuple, node));
    pn
}

/// Builds the proof-positive pattern `Ve ∪ {p}` for `tuple`.
/// Node indexes: evidence `0..k`, then `p` at `k`.
pub(crate) fn positive_pattern(
    ctx: &MatchContext<'_>,
    cache: &mut ElementCache<'_>,
    rule: &DetectiveRule,
    tuple: &Tuple,
) -> Pattern {
    let mut pattern = Pattern::default();
    for ev in rule.evidence() {
        pattern.nodes.push(cached_node(ctx, cache, tuple, ev));
    }
    pattern
        .nodes
        .push(cached_node(ctx, cache, tuple, rule.positive()));
    let p_idx = rule.evidence().len();
    // Auxiliary nodes used by positive-side edges join as free nodes.
    let mut aux_idx: dr_kb::FxHashMap<usize, usize> = dr_kb::FxHashMap::default();
    for e in rule.positive_edges() {
        for end in [e.from, e.to] {
            if let RuleNodeRef::Aux(i) = end {
                aux_idx.entry(i).or_insert_with(|| {
                    pattern
                        .nodes
                        .push(PatternNode::free(rule.aux()[i], dr_simmatch::SimFn::Equal));
                    pattern.nodes.len() - 1
                });
            }
        }
    }
    for e in rule.positive_edges() {
        let map = |r: RuleNodeRef| match r {
            RuleNodeRef::Evidence(i) => i,
            RuleNodeRef::Positive => p_idx,
            RuleNodeRef::Aux(i) => aux_idx[&i],
            RuleNodeRef::Negative => unreachable!("positive edges never touch n"),
        };
        pattern.edges.push((map(e.from), e.rel, map(e.to)));
    }
    pattern
}

/// Builds the combined proof-negative pattern `Ve ∪ {n} ∪ {p·free}`.
/// Node indexes: evidence `0..k`, `n` at `k`, free `p` at `k + 1`.
pub(crate) fn negative_pattern(
    ctx: &MatchContext<'_>,
    cache: &mut ElementCache<'_>,
    rule: &DetectiveRule,
    tuple: &Tuple,
) -> Pattern {
    let mut pattern = Pattern::default();
    for ev in rule.evidence() {
        pattern.nodes.push(cached_node(ctx, cache, tuple, ev));
    }
    let k = rule.evidence().len();
    pattern
        .nodes
        .push(cached_node(ctx, cache, tuple, rule.negative()));
    let p = rule.positive();
    pattern.nodes.push(PatternNode::free(p.ty, p.sim));
    // All auxiliary nodes may be needed (the negative check replays the
    // positive structure for x_p).
    let mut aux_idx: dr_kb::FxHashMap<usize, usize> = dr_kb::FxHashMap::default();
    for e in rule.edges() {
        for end in [e.from, e.to] {
            if let RuleNodeRef::Aux(i) = end {
                aux_idx.entry(i).or_insert_with(|| {
                    pattern
                        .nodes
                        .push(PatternNode::free(rule.aux()[i], dr_simmatch::SimFn::Equal));
                    pattern.nodes.len() - 1
                });
            }
        }
    }
    for e in rule.edges() {
        let map = |r: RuleNodeRef| match r {
            RuleNodeRef::Evidence(i) => i,
            RuleNodeRef::Negative => k,
            RuleNodeRef::Positive => k + 1,
            RuleNodeRef::Aux(i) => aux_idx[&i],
        };
        pattern.edges.push((map(e.from), e.rel, map(e.to)));
    }
    pattern
}

/// Per-node label observations across assignments, driving normalization.
struct LabelObservations {
    /// `labels[i]` = distinct canonical labels bound to pattern node `i`.
    labels: Vec<FxHashSet<String>>,
}

impl LabelObservations {
    fn new(n: usize) -> Self {
        Self {
            labels: (0..n).map(|_| FxHashSet::default()).collect(),
        }
    }

    fn record(&mut self, kb: dr_kb::KbRef<'_>, assignment: &[Node]) {
        for (i, &node) in assignment.iter().enumerate() {
            // Bound: sets stay tiny in practice; only distinct labels stored.
            self.labels[i].insert(kb.node_value(node).to_owned());
        }
    }

    /// The unique label for node `i`, if unambiguous.
    fn unique(&self, i: usize) -> Option<&str> {
        let set = &self.labels[i];
        if set.len() == 1 {
            set.iter().next().map(String::as_str)
        } else {
            None
        }
    }
}

/// Normalizes unmarked, fuzzily matched cells to their unique canonical
/// label; returns the rewrites performed.
///
/// A cell is only rewritten when its current value matches **no** KB value
/// of the node's type exactly: an exact match means the value names a real
/// entity (possibly a near-twin of the bound one), not a typo, and
/// rewriting it would trade a trusted value for a guess.
fn normalize_cells(
    ctx: &MatchContext<'_>,
    rule: &DetectiveRule,
    tuple: &mut Tuple,
    obs: &LabelObservations,
    // (pattern node index, node) pairs to consider.
    nodes: &[(usize, SchemaNode)],
) -> Vec<Normalization> {
    let mut out = Vec::new();
    let _ = rule;
    for &(idx, node) in nodes {
        let col = node.col;
        if node.sim.is_exact() || tuple.is_positive(col) {
            continue;
        }
        if let Some(label) = obs.unique(idx) {
            let current = tuple.get(col);
            if current != label
                && ctx
                    .candidates(node.ty, dr_simmatch::SimFn::Equal, current)
                    .is_empty()
            {
                let old = current.to_owned();
                tuple.set(col, label);
                out.push(Normalization {
                    col,
                    old,
                    new: label.to_owned(),
                });
            }
        }
    }
    out
}

/// Applies `rule` to `tuple` against `ctx`, mutating the tuple on success.
///
/// The tuple's positive marks are respected: frozen cells are never modified,
/// and the rule is [`RuleApplication::NotApplicable`] if it could not mark
/// anything new.
///
/// Uses a private, throwaway element cache; the fast repair algorithm shares
/// one across rules via [`apply_rule_cached`].
pub fn apply_rule(
    ctx: &MatchContext<'_>,
    rule: &DetectiveRule,
    tuple: &mut Tuple,
    opts: &ApplyOptions,
) -> RuleApplication {
    let mut cache = ElementCache::new();
    apply_rule_cached(ctx, rule, tuple, opts, &mut cache)
}

/// Maps a [`RuleNodeRef`] to its schema node; `None` for auxiliary nodes
/// (which carry no column and cannot be prefiltered by value).
fn ref_node(rule: &DetectiveRule, r: RuleNodeRef) -> Option<&SchemaNode> {
    match r {
        RuleNodeRef::Evidence(i) => Some(&rule.evidence()[i]),
        RuleNodeRef::Positive => Some(rule.positive()),
        RuleNodeRef::Negative => Some(rule.negative()),
        RuleNodeRef::Aux(_) => None,
    }
}

/// Prefilter check for one edge; edges touching auxiliary nodes cannot be
/// decided from per-column signatures and pass the prefilter.
fn prefilter_edge(
    ctx: &MatchContext<'_>,
    cache: &mut ElementCache<'_>,
    rule: &DetectiveRule,
    tuple: &Tuple,
    e: &crate::rule::RuleEdge,
) -> bool {
    match (ref_node(rule, e.from), ref_node(rule, e.to)) {
        (Some(from), Some(to)) => cache.edge_ok(ctx, tuple, from, e.rel, to),
        _ => true,
    }
}

/// [`apply_rule`] with a caller-provided element cache shared across rules
/// (§IV-B(3)). Per-element results memoize in `cache`; the caller must
/// invalidate columns whose values this application changes (see
/// [`RuleApplication`]'s repair and normalization fields).
pub fn apply_rule_cached(
    ctx: &MatchContext<'_>,
    rule: &DetectiveRule,
    tuple: &mut Tuple,
    opts: &ApplyOptions,
    cache: &mut ElementCache<'_>,
) -> RuleApplication {
    // An unbounded meter never exhausts, so the Err arm is unreachable.
    apply_rule_metered(ctx, rule, tuple, opts, cache, &BudgetMeter::unbounded())
        .unwrap_or(RuleApplication::NotApplicable)
}

/// [`apply_rule_cached`] charging the instance-graph searches to `meter`
/// (the budget pillar of the resilience layer, DESIGN.md §4c).
///
/// On exhaustion the application aborts **before mutating the tuple**: a
/// rule either fully applies (marks, normalizations, repair all written) or
/// reports `Err` having written nothing — so a degraded tuple is always a
/// prefix of the fault-free chase, never a torn rule application. Earlier
/// rules' completed applications stand.
pub fn apply_rule_metered(
    ctx: &MatchContext<'_>,
    rule: &DetectiveRule,
    tuple: &mut Tuple,
    opts: &ApplyOptions,
    cache: &mut ElementCache<'_>,
    meter: &BudgetMeter,
) -> Result<RuleApplication, BudgetExhaustion> {
    let kb = ctx.kb();
    meter.check()?;
    let k = rule.evidence().len();
    let marked_cols = rule.marked_cols();
    let would_mark_new = marked_cols.iter().any(|&c| !tuple.is_positive(c));
    if !would_mark_new {
        return Ok(RuleApplication::NotApplicable);
    }

    // ---- Shared evidence prefilter ----------------------------------------
    // Both proofs need every evidence node and evidence-internal edge to
    // match individually; these checks are memoized across rules.
    for ev in rule.evidence() {
        if !cache.node_ok(ctx, tuple, ev) {
            return Ok(RuleApplication::NotApplicable);
        }
    }
    for e in rule.evidence_edges() {
        if !prefilter_edge(ctx, cache, rule, tuple, e) {
            return Ok(RuleApplication::NotApplicable);
        }
    }

    // ---- Proof positive ----------------------------------------------------
    let positive_edges: Vec<_> = rule.positive_edges().cloned().collect();
    let positive_prefilter_ok = cache.node_ok(ctx, tuple, rule.positive())
        && positive_edges
            .iter()
            .all(|e| prefilter_edge(ctx, cache, rule, tuple, e));
    if positive_prefilter_ok {
        let pattern = positive_pattern(ctx, cache, rule, tuple);
        let mut obs = LabelObservations::new(pattern.nodes.len());
        let mut found = false;
        let mut visits = 0usize;
        for_each_assignment_metered(ctx, &pattern, meter, |assignment| {
            found = true;
            obs.record(kb, assignment);
            visits += 1;
            visits < opts.max_assignments
        });
        // Abort before mutating: an exhausted enumeration may have missed
        // assignments, so normalization/marks would be unreliable.
        meter.check()?;
        if found {
            let mut to_normalize: Vec<(usize, SchemaNode)> = rule
                .evidence()
                .iter()
                .enumerate()
                .map(|(i, ev)| (i, *ev))
                .collect();
            to_normalize.push((k, *rule.positive()));
            let normalized = if opts.normalize_fuzzy {
                normalize_cells(ctx, rule, tuple, &obs, &to_normalize)
            } else {
                Vec::new()
            };
            let mut newly_marked = Vec::new();
            for &c in &marked_cols {
                if !tuple.is_positive(c) {
                    tuple.mark_positive(c);
                    newly_marked.push(c);
                }
            }
            return Ok(RuleApplication::ProofPositive {
                newly_marked,
                normalized,
            });
        }
    }

    // ---- Proof negative + correction --------------------------------------
    let repair_col = rule.repair_col();
    if tuple.is_positive(repair_col) {
        return Ok(RuleApplication::NotApplicable);
    }
    // Prefilter the negative node and the negative edges that do not touch
    // the (value-unconstrained) positive node.
    if !cache.node_ok(ctx, tuple, rule.negative()) {
        return Ok(RuleApplication::NotApplicable);
    }
    let negative_edges: Vec<_> = rule.negative_edges().cloned().collect();
    let negative_prefilter_ok = negative_edges
        .iter()
        .all(|e| prefilter_edge(ctx, cache, rule, tuple, e));
    if !negative_prefilter_ok {
        return Ok(RuleApplication::NotApplicable);
    }
    let pattern = negative_pattern(ctx, cache, rule, tuple);
    let n_idx = k;
    let p_idx = k + 1;
    let mut obs = LabelObservations::new(pattern.nodes.len());
    let mut candidates: FxHashSet<String> = FxHashSet::default();
    let mut visits = 0usize;
    for_each_assignment_metered(ctx, &pattern, meter, |assignment| {
        if assignment[p_idx] != assignment[n_idx] {
            candidates.insert(kb.node_value(assignment[p_idx]).to_owned());
            obs.record(kb, assignment);
        }
        visits += 1;
        visits < opts.max_assignments
    });
    // Abort before the repair write: exhaustion mid-enumeration may have
    // missed candidates, and candidates[0] must be deterministic.
    meter.check()?;
    if candidates.is_empty() {
        if opts.detect_without_repair {
            // Does the negative side alone match (evidence + n, ignoring
            // the positive structure)? Then §II-C case (2) marks the
            // evidence correct and flags the cell as potentially wrong.
            let mut negative_only = Pattern::default();
            for ev in rule.evidence() {
                negative_only.nodes.push(cached_node(ctx, cache, tuple, ev));
            }
            negative_only
                .nodes
                .push(cached_node(ctx, cache, tuple, rule.negative()));
            let mut aux_idx: dr_kb::FxHashMap<usize, usize> = dr_kb::FxHashMap::default();
            let negative_edges: Vec<_> = rule.negative_edges().cloned().collect();
            for e in &negative_edges {
                for end in [e.from, e.to] {
                    if let RuleNodeRef::Aux(i) = end {
                        aux_idx.entry(i).or_insert_with(|| {
                            negative_only
                                .nodes
                                .push(PatternNode::free(rule.aux()[i], dr_simmatch::SimFn::Equal));
                            negative_only.nodes.len() - 1
                        });
                    }
                }
            }
            for e in &negative_edges {
                let map = |r: RuleNodeRef| match r {
                    RuleNodeRef::Evidence(i) => i,
                    RuleNodeRef::Negative => k,
                    RuleNodeRef::Aux(i) => aux_idx[&i],
                    RuleNodeRef::Positive => unreachable!("negative edges never touch p"),
                };
                negative_only.edges.push((map(e.from), e.rel, map(e.to)));
            }
            let negative_matches =
                crate::graph::instance::has_assignment_metered(ctx, &negative_only, meter);
            meter.check()?;
            if negative_matches {
                let mut newly_marked = Vec::new();
                for ev in rule.evidence() {
                    if !tuple.is_positive(ev.col) {
                        tuple.mark_positive(ev.col);
                        newly_marked.push(ev.col);
                    }
                }
                // Returned even when the evidence was already marked: the
                // wrong-flag on `repair_col` is the annotation of value.
                return Ok(RuleApplication::DetectedWrong {
                    col: repair_col,
                    newly_marked,
                });
            }
        }
        return Ok(RuleApplication::NotApplicable);
    }
    let mut candidates: Vec<String> = candidates.into_iter().collect();
    candidates.sort_unstable();

    let to_normalize: Vec<(usize, SchemaNode)> = rule
        .evidence()
        .iter()
        .enumerate()
        .map(|(i, ev)| (i, *ev))
        .collect();
    let normalized = if opts.normalize_fuzzy {
        normalize_cells(ctx, rule, tuple, &obs, &to_normalize)
    } else {
        Vec::new()
    };

    let old = tuple.get(repair_col).to_owned();
    let new = candidates[0].clone();
    tuple.set(repair_col, new.clone());
    let mut newly_marked = Vec::new();
    for &c in &marked_cols {
        if !tuple.is_positive(c) {
            tuple.mark_positive(c);
            newly_marked.push(c);
        }
    }
    Ok(RuleApplication::Repaired {
        col: repair_col,
        old,
        new,
        candidates,
        newly_marked,
        normalized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure4_rules, nobel_schema, table1_dirty};
    use dr_kb::fixtures::nobel_mini_kb;

    fn setup() -> (dr_kb::KnowledgeBase, Vec<DetectiveRule>) {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        (kb, rules)
    }

    /// Example 5(1)/Example 6: ϕ2 repairs r1.City from Karcag to Haifa.
    #[test]
    fn phi2_repairs_r1_city() {
        let (kb, rules) = setup();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let mut r1 = table1_dirty().tuple(0).clone();
        let result = apply_rule(&ctx, &rules[1], &mut r1, &ApplyOptions::default());
        match result {
            RuleApplication::Repaired {
                col,
                old,
                new,
                candidates,
                newly_marked,
                ..
            } => {
                assert_eq!(schema.attr_name(col), "City");
                assert_eq!(old, "Karcag");
                assert_eq!(new, "Haifa");
                assert_eq!(candidates, vec!["Haifa".to_owned()]);
                // Example 6: Name⁺, Institution⁺, City⁺.
                let names: Vec<&str> = newly_marked.iter().map(|&c| schema.attr_name(c)).collect();
                assert_eq!(names, vec!["Name", "Institution", "City"]);
            }
            other => panic!("expected repair, got {other:?}"),
        }
        assert_eq!(r1.get(schema.attr_expect("City")), "Haifa");
        assert!(r1.is_positive(schema.attr_expect("City")));
        assert!(!r1.is_positive(schema.attr_expect("Country")));
    }

    /// Example 5(1): ϕ1 proof positive on r1 marks Name, DOB, Institution.
    #[test]
    fn phi1_marks_r1_positive() {
        let (kb, rules) = setup();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let mut r1 = table1_dirty().tuple(0).clone();
        let result = apply_rule(&ctx, &rules[0], &mut r1, &ApplyOptions::default());
        match result {
            RuleApplication::ProofPositive {
                newly_marked,
                normalized,
            } => {
                let names: Vec<&str> = newly_marked.iter().map(|&c| schema.attr_name(c)).collect();
                assert_eq!(names, vec!["Name", "DOB", "Institution"]);
                assert!(normalized.is_empty());
            }
            other => panic!("expected proof positive, got {other:?}"),
        }
    }

    /// ϕ4 repairs r1.Prize (American award → Chemistry award).
    #[test]
    fn phi4_repairs_r1_prize() {
        let (kb, rules) = setup();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let mut r1 = table1_dirty().tuple(0).clone();
        let result = apply_rule(&ctx, &rules[3], &mut r1, &ApplyOptions::default());
        match result {
            RuleApplication::Repaired { old, new, .. } => {
                assert_eq!(old, "Albert Lasker Award for Medicine");
                assert_eq!(new, "Nobel Prize in Chemistry");
            }
            other => panic!("expected repair, got {other:?}"),
        }
        assert_eq!(
            r1.get(schema.attr_expect("Prize")),
            "Nobel Prize in Chemistry"
        );
    }

    /// ϕ1 on r2 (Marie Curie) proof-positive-normalizes the Institution typo
    /// "Paster Institute" → "Pasteur Institute".
    #[test]
    fn phi1_normalizes_typo() {
        let (kb, rules) = setup();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let mut r2 = table1_dirty().tuple(1).clone();
        let result = apply_rule(&ctx, &rules[0], &mut r2, &ApplyOptions::default());
        match result {
            RuleApplication::ProofPositive { normalized, .. } => {
                assert_eq!(normalized.len(), 1);
                assert_eq!(normalized[0].old, "Paster Institute");
                assert_eq!(normalized[0].new, "Pasteur Institute");
            }
            other => panic!("expected proof positive, got {other:?}"),
        }
        assert_eq!(
            r2.get(schema.attr_expect("Institution")),
            "Pasteur Institute"
        );
    }

    /// Normalization can be disabled.
    #[test]
    fn normalization_opt_out() {
        let (kb, rules) = setup();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let mut r2 = table1_dirty().tuple(1).clone();
        let opts = ApplyOptions {
            normalize_fuzzy: false,
            ..Default::default()
        };
        let result = apply_rule(&ctx, &rules[0], &mut r2, &opts);
        assert!(matches!(
            result,
            RuleApplication::ProofPositive { ref normalized, .. } if normalized.is_empty()
        ));
        assert_eq!(
            r2.get(schema.attr_expect("Institution")),
            "Paster Institute"
        );
    }

    /// ϕ1 on r4 (Melvin Calvin) yields the two-institution multi-version
    /// repair of Example 10.
    #[test]
    fn phi1_multi_version_on_r4() {
        let (kb, rules) = setup();
        let ctx = MatchContext::new(&kb);
        let mut r4 = table1_dirty().tuple(3).clone();
        let result = apply_rule(&ctx, &rules[0], &mut r4, &ApplyOptions::default());
        match result {
            RuleApplication::Repaired {
                old, candidates, ..
            } => {
                assert_eq!(old, "University of Minnesota");
                assert_eq!(
                    candidates,
                    vec![
                        "UC Berkeley".to_owned(),
                        "University of Manchester".to_owned()
                    ]
                );
            }
            other => panic!("expected repair, got {other:?}"),
        }
    }

    /// A frozen repair column blocks proof negative.
    #[test]
    fn frozen_column_blocks_repair() {
        let (kb, rules) = setup();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let mut r1 = table1_dirty().tuple(0).clone();
        r1.mark_positive(schema.attr_expect("City"));
        // ϕ2's proof positive fails (Karcag is not the work city); proof
        // negative is blocked by the mark.
        let result = apply_rule(&ctx, &rules[1], &mut r1, &ApplyOptions::default());
        assert_eq!(result, RuleApplication::NotApplicable);
        assert_eq!(r1.get(schema.attr_expect("City")), "Karcag");
    }

    /// A rule whose every marked column is already positive does nothing.
    #[test]
    fn fully_marked_rule_is_not_applicable() {
        let (kb, rules) = setup();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let mut r1 = table1_dirty().tuple(0).clone();
        for col in ["Name", "DOB", "Institution"] {
            r1.mark_positive(schema.attr_expect(col));
        }
        let result = apply_rule(&ctx, &rules[0], &mut r1, &ApplyOptions::default());
        assert_eq!(result, RuleApplication::NotApplicable);
    }

    /// No evidence match at all: not applicable.
    #[test]
    fn unknown_person_not_applicable() {
        let (kb, rules) = setup();
        let ctx = MatchContext::new(&kb);
        let mut t = dr_relation::Tuple::from_strs(&[
            "Dmitri Unknown",
            "1900-01-01",
            "Atlantis",
            "Fields Medal",
            "Unseen University",
            "Ankh-Morpork",
        ]);
        for rule in &rules {
            let result = apply_rule(&ctx, rule, &mut t, &ApplyOptions::default());
            assert_eq!(result, RuleApplication::NotApplicable, "{}", rule.name());
        }
    }
}
