//! Rule generation from positive/negative examples (§III-A).
//!
//! The algorithm follows the paper's three steps:
//!
//! * **S1** — discover schema-level matching graphs for the positive
//!   examples: type each column against the KB (table understanding) and
//!   keep the relationships supported by enough example tuples;
//! * **S2** — do the same for the negative examples, whose target-column
//!   values are wrong, capturing the *error semantics*;
//! * **S3** — merge each positive/negative graph pair that differs in only
//!   the target node into a candidate [`DetectiveRule`].
//!
//! Candidates are ranked by support; the final pick is the user's (the
//! experiment harness plays that role deterministically via
//! [`rule_repairs_examples`] / [`rule_respects_positives`]).

use crate::context::MatchContext;
use crate::graph::schema::{NodeType, SchemaGraph, SchemaNode};
use crate::rule::apply::{apply_rule, ApplyOptions, RuleApplication};
use crate::rule::{DetectiveRule, RuleEdge, RuleNodeRef};
use dr_kb::{ClassId, FxHashMap, FxHashSet, Node, PredId};
use dr_relation::{AttrId, Relation};
use dr_simmatch::SimFn;

/// Configuration for graph discovery and rule generation.
#[derive(Debug, Clone)]
pub struct GenerationConfig {
    /// Minimum fraction of example tuples that must support a column type
    /// or an edge for it to enter the discovered graph.
    pub min_support: f64,
    /// Similarity functions tried per column, in preference order.
    pub sims: Vec<SimFn>,
    /// Per-tuple candidate cap when counting edge support.
    pub max_candidates: usize,
    /// Emit the "all incident edges" rule variant in addition to the
    /// single-edge variants.
    pub emit_full_variant: bool,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        Self {
            min_support: 0.6,
            sims: vec![SimFn::Equal, SimFn::EditDistance(2)],
            max_candidates: 8,
            emit_full_variant: true,
        }
    }
}

/// A discovered schema-level matching graph with per-element support.
#[derive(Debug, Clone)]
pub struct DiscoveredGraph {
    /// Column → discovered node (untyped columns are absent).
    pub nodes: FxHashMap<AttrId, SchemaNode>,
    /// Column support fractions.
    pub node_support: FxHashMap<AttrId, f64>,
    /// Supported edges `(from_col, rel, to_col)` with their support.
    pub edges: FxHashMap<(AttrId, PredId, AttrId), f64>,
}

/// All classes subsuming any direct class of instances labeled like the
/// sample values — the candidate types for a column.
fn candidate_classes(ctx: &MatchContext<'_>, values: &[&str]) -> Vec<ClassId> {
    let kb = ctx.kb();
    let mut direct: FxHashSet<ClassId> = FxHashSet::default();
    for &v in values {
        for &i in kb.instances_labeled(v).iter() {
            direct.extend(kb.instance_classes(i).iter().copied());
        }
    }
    let mut out: FxHashSet<ClassId> = FxHashSet::default();
    for c in kb.classes() {
        if direct.iter().any(|&d| kb.taxonomy().subsumes(c, d)) {
            out.insert(c);
        }
    }
    let mut out: Vec<ClassId> = out.into_iter().collect();
    out.sort_unstable();
    out
}

/// Types one column: the best `(class-or-literal, sim)` pair by
/// `(support, specificity)`, or `None` below the support threshold.
fn infer_column(
    ctx: &MatchContext<'_>,
    col: AttrId,
    values: &[&str],
    cfg: &GenerationConfig,
) -> Option<(SchemaNode, f64)> {
    let kb = ctx.kb();
    if values.is_empty() {
        return None;
    }
    let mut classes = candidate_classes(ctx, values);
    // Fallback for all-fuzzy columns: no exact label matched anywhere, so
    // consider every class under the tolerant sims.
    if classes.is_empty() {
        classes = kb.classes().collect();
    }
    let total = values.len() as f64;
    let mut best: Option<(SchemaNode, f64, usize)> = None; // node, support, extent
    for &sim in &cfg.sims {
        for &c in &classes {
            let ty = NodeType::Class(c);
            let support = values
                .iter()
                .filter(|v| !ctx.candidates(ty, sim, v).is_empty())
                .count() as f64
                / total;
            if support < cfg.min_support {
                continue;
            }
            let extent = kb.instances_of(c).len();
            let better = match &best {
                None => true,
                Some((_, s, e)) => {
                    support > *s + 1e-9 || ((support - *s).abs() < 1e-9 && extent < *e)
                }
            };
            if better {
                best = Some((SchemaNode::new(col, ty, sim), support, extent));
            }
        }
        // Earlier sims are preferred: stop as soon as one produced a typing.
        if best.is_some() {
            break;
        }
    }
    // Literal typing competes with class typing.
    let literal_support = values
        .iter()
        .filter(|v| kb.literal_with_value(v).is_some())
        .count() as f64
        / total;
    if literal_support >= cfg.min_support
        && best
            .as_ref()
            .is_none_or(|&(_, s, _)| literal_support > s + 1e-9)
    {
        return Some((
            SchemaNode::new(col, NodeType::Literal, SimFn::Equal),
            literal_support,
        ));
    }
    best.map(|(node, support, _)| (node, support))
}

/// S1/S2: discovers the schema-level matching graph of `examples`.
pub fn discover_graph(
    ctx: &MatchContext<'_>,
    examples: &Relation,
    cfg: &GenerationConfig,
) -> DiscoveredGraph {
    let kb = ctx.kb();
    let schema = examples.schema().clone();
    let mut nodes: FxHashMap<AttrId, SchemaNode> = FxHashMap::default();
    let mut node_support: FxHashMap<AttrId, f64> = FxHashMap::default();

    for col in schema.attr_ids() {
        let values: Vec<&str> = examples.tuples().iter().map(|t| t.get(col)).collect();
        if let Some((node, support)) = infer_column(ctx, col, &values, cfg) {
            nodes.insert(col, node);
            node_support.insert(col, support);
        }
    }

    // Per-tuple candidate sets per typed column (capped).
    let typed: Vec<AttrId> = {
        let mut t: Vec<AttrId> = nodes.keys().copied().collect();
        t.sort_unstable();
        t
    };
    let per_tuple: Vec<FxHashMap<AttrId, Vec<Node>>> = examples
        .tuples()
        .iter()
        .map(|t| {
            typed
                .iter()
                .map(|&col| {
                    let node = &nodes[&col];
                    let mut cands = ctx.candidates(node.ty, node.sim, t.get(col));
                    cands.truncate(cfg.max_candidates);
                    (col, cands)
                })
                .collect()
        })
        .collect();

    // Edge support: for each ordered typed pair, walk the source
    // candidates' actual neighbourhoods (`preds_of`) instead of probing the
    // whole predicate vocabulary.
    let mut edge_hits: FxHashMap<(AttrId, PredId, AttrId), usize> = FxHashMap::default();
    for cand in &per_tuple {
        for &a in &typed {
            // Only instances can be edge sources.
            let from: Vec<_> = cand[&a].iter().filter_map(|n| n.as_instance()).collect();
            if from.is_empty() {
                continue;
            }
            for &b in &typed {
                if a == b {
                    continue;
                }
                let to_set: FxHashSet<Node> = cand[&b].iter().copied().collect();
                if to_set.is_empty() {
                    continue;
                }
                let mut connected: FxHashSet<PredId> = FxHashSet::default();
                for &x in &from {
                    for &p in kb.preds_of(x).iter() {
                        if !connected.contains(&p)
                            && kb.objects(x, p).iter().any(|o| to_set.contains(o))
                        {
                            connected.insert(p);
                        }
                    }
                }
                for p in connected {
                    *edge_hits.entry((a, p, b)).or_insert(0) += 1;
                }
            }
        }
    }
    let total = examples.len().max(1) as f64;
    let edges: FxHashMap<(AttrId, PredId, AttrId), f64> = edge_hits
        .into_iter()
        .filter_map(|(k, hits)| {
            let support = hits as f64 / total;
            (support >= cfg.min_support).then_some((k, support))
        })
        .collect();

    DiscoveredGraph {
        nodes,
        node_support,
        edges,
    }
}

impl DiscoveredGraph {
    /// Renders the graph as a [`SchemaGraph`] (for inspection).
    pub fn to_schema_graph(&self) -> SchemaGraph {
        let mut g = SchemaGraph::new();
        let mut cols: Vec<AttrId> = self.nodes.keys().copied().collect();
        cols.sort_unstable();
        let idx: FxHashMap<AttrId, usize> = cols
            .iter()
            .map(|&c| (c, g.add_node(self.nodes[&c])))
            .collect();
        let mut edges: Vec<_> = self.edges.keys().copied().collect();
        edges.sort_unstable();
        for (a, p, b) in edges {
            g.add_edge(idx[&a], idx[&b], p);
        }
        g
    }
}

/// A generated candidate rule with its supporting evidence strength.
#[derive(Debug, Clone)]
pub struct GeneratedRule {
    /// The candidate.
    pub rule: DetectiveRule,
    /// Combined (min) support of the elements the rule uses.
    pub support: f64,
}

/// An edge incident to the target column in a discovered graph, expressed
/// relative to the target: `(evidence_col, rel, target_is_object)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct IncidentEdge {
    other: AttrId,
    rel: PredId,
    /// `true` if the edge points *into* the target (`other → target`).
    into_target: bool,
}

fn incident_edges(
    g: &DiscoveredGraph,
    target: AttrId,
    evidence: &[AttrId],
) -> Vec<(IncidentEdge, f64)> {
    let mut out: Vec<(IncidentEdge, f64)> = g
        .edges
        .iter()
        .filter_map(|(&(a, p, b), &s)| {
            if a == target && evidence.contains(&b) {
                Some((
                    IncidentEdge {
                        other: b,
                        rel: p,
                        into_target: false,
                    },
                    s,
                ))
            } else if b == target && evidence.contains(&a) {
                Some((
                    IncidentEdge {
                        other: a,
                        rel: p,
                        into_target: true,
                    },
                    s,
                ))
            } else {
                None
            }
        })
        .collect();
    out.sort_by_key(|x| x.0);
    out
}

/// Builds one candidate rule from evidence columns + chosen incident edges.
#[allow(clippy::too_many_arguments)] // a free function assembling one rule; a context struct would obscure the data flow
fn build_candidate(
    name: String,
    target_pos: SchemaNode,
    target_neg: SchemaNode,
    evidence_cols: &[AttrId],
    evidence_nodes: &FxHashMap<AttrId, SchemaNode>,
    evidence_edges: &[(AttrId, PredId, AttrId)],
    pos_edges: &[IncidentEdge],
    neg_edges: &[IncidentEdge],
) -> Option<DetectiveRule> {
    let mut cols: Vec<AttrId> = evidence_cols.to_vec();
    cols.sort_unstable();
    let index_of = |c: AttrId| cols.iter().position(|&x| x == c).expect("evidence col");
    let evidence: Vec<SchemaNode> = cols.iter().map(|c| evidence_nodes[c]).collect();
    let mut edges: Vec<RuleEdge> = Vec::new();
    for &(a, p, b) in evidence_edges {
        if cols.contains(&a) && cols.contains(&b) {
            edges.push(RuleEdge {
                from: RuleNodeRef::Evidence(index_of(a)),
                to: RuleNodeRef::Evidence(index_of(b)),
                rel: p,
            });
        }
    }
    for (side, list) in [
        (RuleNodeRef::Positive, pos_edges),
        (RuleNodeRef::Negative, neg_edges),
    ] {
        for e in list {
            let ev = RuleNodeRef::Evidence(index_of(e.other));
            let (from, to) = if e.into_target {
                (ev, side)
            } else {
                (side, ev)
            };
            edges.push(RuleEdge {
                from,
                to,
                rel: e.rel,
            });
        }
    }
    DetectiveRule::new(name, evidence, target_pos, target_neg, edges).ok()
}

/// S3: generates candidate detective rules for `target` from positive and
/// negative example relations (negatives are wrong **only** in `target`).
/// Candidates are deduplicated structurally and sorted by descending
/// support.
pub fn generate_rules(
    ctx: &MatchContext<'_>,
    target: AttrId,
    positives: &Relation,
    negatives: &Relation,
    cfg: &GenerationConfig,
) -> Vec<GeneratedRule> {
    let gp = discover_graph(ctx, positives, cfg);
    let gn = discover_graph(ctx, negatives, cfg);
    let (Some(&p_node), Some(&n_node)) = (gp.nodes.get(&target), gn.nodes.get(&target)) else {
        return Vec::new();
    };

    // Shared evidence: identically-typed columns in both graphs.
    let mut evidence_cols: Vec<AttrId> = gp
        .nodes
        .iter()
        .filter(|&(col, node)| *col != target && gn.nodes.get(col) == Some(node))
        .map(|(&col, _)| col)
        .collect();
    evidence_cols.sort_unstable();
    if evidence_cols.is_empty() {
        return Vec::new();
    }

    // Evidence-internal edges supported on BOTH sides.
    let mut evidence_edges: Vec<(AttrId, PredId, AttrId)> = gp
        .edges
        .keys()
        .filter(|&&(a, _, b)| {
            a != target && b != target && evidence_cols.contains(&a) && evidence_cols.contains(&b)
        })
        .filter(|k| gn.edges.contains_key(k))
        .copied()
        .collect();
    evidence_edges.sort_unstable();

    let pos_incident = incident_edges(&gp, target, &evidence_cols);
    let neg_incident = incident_edges(&gn, target, &evidence_cols);
    if pos_incident.is_empty() || neg_incident.is_empty() {
        return Vec::new();
    }

    let mut out: Vec<GeneratedRule> = Vec::new();
    let mut seen: FxHashSet<String> = FxHashSet::default();
    let mut push = |rule: Option<DetectiveRule>, support: f64, out: &mut Vec<GeneratedRule>| {
        if let Some(rule) = rule {
            let key = format!(
                "{:?}|{:?}",
                rule.positive_graph().canonical_key(),
                rule.negative_graph().canonical_key()
            );
            if seen.insert(key) {
                out.push(GeneratedRule { rule, support });
            }
        }
    };

    // Single-edge variants.
    let mut counter = 0usize;
    for &(pe, ps) in &pos_incident {
        for &(ne, ns) in &neg_incident {
            if pe == ne && p_node == n_node {
                // Identical positive and negative semantics can never detect
                // an error.
                continue;
            }
            counter += 1;
            let name = format!("gen-{}-{}", target.index(), counter);
            // Minimal evidence first, full evidence as fallback for
            // connectivity.
            let minimal: Vec<AttrId> = {
                let mut m = vec![pe.other, ne.other];
                m.sort_unstable();
                m.dedup();
                m
            };
            let rule = build_candidate(
                name.clone(),
                p_node,
                n_node,
                &minimal,
                &gp.nodes,
                &evidence_edges,
                &[pe],
                &[ne],
            )
            .or_else(|| {
                build_candidate(
                    name,
                    p_node,
                    n_node,
                    &evidence_cols,
                    &gp.nodes,
                    &evidence_edges,
                    &[pe],
                    &[ne],
                )
            });
            push(rule, ps.min(ns), &mut out);
        }
    }

    // Full variant: all incident edges on both sides.
    if cfg.emit_full_variant {
        let pos_all: Vec<IncidentEdge> = pos_incident.iter().map(|&(e, _)| e).collect();
        let neg_all: Vec<IncidentEdge> = neg_incident.iter().map(|&(e, _)| e).collect();
        if pos_all != neg_all || p_node != n_node {
            let support = pos_incident
                .iter()
                .chain(neg_incident.iter())
                .map(|&(_, s)| s)
                .fold(1.0f64, f64::min);
            let rule = build_candidate(
                format!("gen-{}-full", target.index()),
                p_node,
                n_node,
                &evidence_cols,
                &gp.nodes,
                &evidence_edges,
                &pos_all,
                &neg_all,
            );
            push(rule, support, &mut out);
        }
    }

    out.sort_by(|a, b| {
        b.support
            .partial_cmp(&a.support)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.rule.name().cmp(b.rule.name()))
    });
    out
}

/// "Expert verification" half 1: the rule repairs every negative example to
/// its ground-truth value (multi-version counts when any candidate is the
/// truth).
pub fn rule_repairs_examples(
    ctx: &MatchContext<'_>,
    rule: &DetectiveRule,
    negatives: &Relation,
    truth: &Relation,
) -> bool {
    let col = rule.repair_col();
    negatives.tuples().iter().enumerate().all(|(row, t)| {
        let mut probe = t.clone();
        match apply_rule(ctx, rule, &mut probe, &ApplyOptions::default()) {
            RuleApplication::Repaired { candidates, .. } => {
                candidates.iter().any(|c| c == truth.tuple(row).get(col))
            }
            _ => false,
        }
    })
}

/// "Expert verification" half 2: the rule never rewrites a value of a
/// positive (all-correct) example — proof positive or no-op only.
pub fn rule_respects_positives(
    ctx: &MatchContext<'_>,
    rule: &DetectiveRule,
    positives: &Relation,
) -> bool {
    let opts = ApplyOptions {
        normalize_fuzzy: false,
        ..Default::default()
    };
    positives.tuples().iter().all(|t| {
        let mut probe = t.clone();
        !matches!(
            apply_rule(ctx, rule, &mut probe, &opts),
            RuleApplication::Repaired { .. }
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{nobel_schema, table1_clean};
    use dr_kb::fixtures::{names, nobel_mini_kb};
    use dr_relation::Relation;

    fn ctx_kb() -> dr_kb::KnowledgeBase {
        nobel_mini_kb()
    }

    #[test]
    fn discovers_nobel_schema_graph() {
        let kb = ctx_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let clean = table1_clean();
        let cfg = GenerationConfig::default();
        let g = discover_graph(&ctx, &clean, &cfg);

        // Every column gets typed.
        for col in ["Name", "DOB", "Country", "Prize", "Institution", "City"] {
            assert!(
                g.nodes.contains_key(&schema.attr_expect(col)),
                "column {col} should be typed"
            );
        }
        // Name types as the laureate class (most specific), DOB as literal.
        let name_node = g.nodes[&schema.attr_expect("Name")];
        assert_eq!(
            name_node.ty,
            NodeType::Class(kb.class_named(names::LAUREATE).unwrap())
        );
        let dob_node = g.nodes[&schema.attr_expect("DOB")];
        assert_eq!(dob_node.ty, NodeType::Literal);

        // The worksAt edge Name → Institution is discovered.
        let works_at = kb.pred_named(names::WORKS_AT).unwrap();
        assert!(g.edges.contains_key(&(
            schema.attr_expect("Name"),
            works_at,
            schema.attr_expect("Institution")
        )));
        // And bornOnDate Name → DOB.
        let born_on = kb.pred_named(names::BORN_ON_DATE).unwrap();
        assert!(g.edges.contains_key(&(
            schema.attr_expect("Name"),
            born_on,
            schema.attr_expect("DOB")
        )));
    }

    /// Build negatives for City: replace City with the birth city, then
    /// generate rules and verify one of them is ϕ2-equivalent.
    #[test]
    fn generates_city_rule_from_examples() {
        let kb = ctx_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let clean = table1_clean();
        let city = schema.attr_expect("City");

        // Negative examples: City ← birth city (the paper's semantic error).
        let birth_cities = ["Karcag", "Warsaw", "Zloczow", "St. Paul"];
        let mut negatives = Relation::new(schema.clone());
        for (row, t) in clean.tuples().iter().enumerate() {
            let mut cells: Vec<String> = t.cells().to_vec();
            cells[city.index()] = birth_cities[row].to_owned();
            negatives.push(dr_relation::Tuple::new(cells));
        }

        let cfg = GenerationConfig::default();
        let candidates = generate_rules(&ctx, city, &clean, &negatives, &cfg);
        assert!(!candidates.is_empty(), "no candidates generated");

        // Expert verification finds at least one rule that repairs all
        // negatives to the truth and respects the positives.
        let good: Vec<&GeneratedRule> = candidates
            .iter()
            .filter(|g| {
                rule_repairs_examples(&ctx, &g.rule, &negatives, &clean)
                    && rule_respects_positives(&ctx, &g.rule, &clean)
            })
            .collect();
        assert!(
            !good.is_empty(),
            "no verified rule among {} candidates: {:?}",
            candidates.len(),
            candidates.iter().map(|c| c.rule.name()).collect::<Vec<_>>()
        );
    }

    /// Prize: negatives drawn from the other (non-chemistry) award — the
    /// generated rule should use the distinct negative type like ϕ4.
    #[test]
    fn generates_prize_rule_with_distinct_negative_type() {
        let kb = ctx_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let clean = table1_clean();
        let prize = schema.attr_expect("Prize");

        // The error semantics: the Prize cell holds a *different* award the
        // same person won (an American award). Only Hershko and Hoffmann
        // have one in the KB, so the negative examples are those two rows.
        let wrong_prizes = [
            (0usize, "Albert Lasker Award for Medicine"),
            (2usize, "National Medal of Science"),
        ];
        let mut negatives = Relation::new(schema.clone());
        let mut negative_truth = Relation::new(schema.clone());
        for &(row, wrong) in &wrong_prizes {
            let t = clean.tuple(row);
            let mut cells: Vec<String> = t.cells().to_vec();
            cells[prize.index()] = wrong.to_owned();
            negatives.push(dr_relation::Tuple::new(cells));
            negative_truth.push(t.clone());
        }
        let clean = negative_truth; // truth aligned with the negatives

        let cfg = GenerationConfig::default();
        let candidates = generate_rules(&ctx, prize, &clean, &negatives, &cfg);
        let good: Vec<_> = candidates
            .iter()
            .filter(|g| {
                rule_repairs_examples(&ctx, &g.rule, &negatives, &clean)
                    && rule_respects_positives(&ctx, &g.rule, &clean)
            })
            .collect();
        assert!(!good.is_empty());
        // The winning rule distinguishes chemistry vs American awards by
        // type, as in ϕ4.
        let rule = &good[0].rule;
        assert_ne!(rule.positive().ty, rule.negative().ty);
    }

    #[test]
    fn untypable_target_yields_no_rules() {
        let kb = ctx_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let clean = table1_clean();
        let city = schema.attr_expect("City");
        let mut negatives = Relation::new(schema.clone());
        for t in clean.tuples() {
            let mut cells: Vec<String> = t.cells().to_vec();
            cells[city.index()] = "###garbage###".to_owned();
            negatives.push(dr_relation::Tuple::new(cells));
        }
        let cfg = GenerationConfig::default();
        // Negative city values match nothing → no negative typing → no rules.
        let candidates = generate_rules(&ctx, city, &clean, &negatives, &cfg);
        assert!(candidates.is_empty());
    }

    #[test]
    fn empty_examples_yield_no_rules() {
        let kb = ctx_kb();
        let ctx = MatchContext::new(&kb);
        let schema = nobel_schema();
        let empty = Relation::new(schema.clone());
        let cfg = GenerationConfig::default();
        let candidates = generate_rules(&ctx, schema.attr_expect("City"), &empty, &empty, &cfg);
        assert!(candidates.is_empty());
    }
}
