//! Consistency analysis for rule sets (§III-C).
//!
//! A rule set Σ is consistent w.r.t. a KB when every tuple reaches the same
//! fixpoint under every application order (Church–Rosser). Deciding this for
//! *all* tuples is coNP-complete (Theorem 1), but with the dataset at hand
//! it is PTIME (Corollary 2): following the paper's practice, we chase
//! sample tuples under several rule orders and compare the fixpoints, and
//! additionally report the static pairs of rules that *could* contend for
//! the same column.

use crate::context::MatchContext;
use crate::repair::basic::basic_repair_tuple;
use crate::repair::multi::{multi_repair_tuple, MultiOptions};
use crate::rule::apply::ApplyOptions;
use crate::rule::DetectiveRule;
use dr_relation::{AttrId, Relation, Tuple};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Options for the sampled consistency check.
#[derive(Debug, Clone)]
pub struct ConsistencyOptions {
    /// Number of random rule orders tried per tuple (the identity and
    /// reversed orders are always included).
    pub random_orders: usize,
    /// RNG seed for order sampling.
    pub seed: u64,
    /// Rule-application options used during the chases.
    pub apply: ApplyOptions,
}

impl Default for ConsistencyOptions {
    fn default() -> Self {
        Self {
            random_orders: 5,
            seed: 0x5eed,
            apply: ApplyOptions::default(),
        }
    }
}

/// A divergence witness: one tuple, two orders, two different fixpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Row of the offending tuple in the sample relation.
    pub row: usize,
    /// First rule order (indexes into the rule slice).
    pub order_a: Vec<usize>,
    /// Second rule order.
    pub order_b: Vec<usize>,
    /// First diverging column.
    pub col: AttrId,
    /// Fixpoint value under `order_a`.
    pub value_a: String,
    /// Fixpoint value under `order_b`.
    pub value_b: String,
}

/// Result of the sampled consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Consistency {
    /// All sampled chases agreed.
    Consistent,
    /// Two orders diverged.
    Inconsistent(Box<Divergence>),
}

impl Consistency {
    /// Whether the check passed.
    pub fn is_consistent(&self) -> bool {
        matches!(self, Consistency::Consistent)
    }
}

fn chase_in_order(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    order: &[usize],
    tuple: &Tuple,
    apply: &ApplyOptions,
) -> Tuple {
    let reordered: Vec<DetectiveRule> = order.iter().map(|&i| rules[i].clone()).collect();
    let mut t = tuple.clone();
    basic_repair_tuple(ctx, &reordered, &mut t, apply);
    t
}

fn first_diff(a: &Tuple, b: &Tuple) -> Option<(AttrId, String, String)> {
    for i in 0..a.arity() {
        let col = AttrId::from_index(i);
        if a.get(col) != b.get(col) || a.is_positive(col) != b.is_positive(col) {
            return Some((col, a.get(col).to_owned(), b.get(col).to_owned()));
        }
    }
    None
}

/// Chases every tuple of `sample` under several rule orders; reports the
/// first divergence found.
pub fn check_consistency(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    sample: &Relation,
    opts: &ConsistencyOptions,
) -> Consistency {
    if rules.len() <= 1 {
        return Consistency::Consistent;
    }
    let identity: Vec<usize> = (0..rules.len()).collect();
    let mut orders: Vec<Vec<usize>> = vec![identity.clone()];
    let mut reversed = identity.clone();
    reversed.reverse();
    orders.push(reversed);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for _ in 0..opts.random_orders {
        let mut order = identity.clone();
        order.shuffle(&mut rng);
        orders.push(order);
    }
    orders.dedup();

    for (row, tuple) in sample.tuples().iter().enumerate() {
        let baseline = chase_in_order(ctx, rules, &orders[0], tuple, &opts.apply);
        for order in &orders[1..] {
            let other = chase_in_order(ctx, rules, order, tuple, &opts.apply);
            if let Some((col, value_a, value_b)) = first_diff(&baseline, &other) {
                return Consistency::Inconsistent(Box::new(Divergence {
                    row,
                    order_a: orders[0].clone(),
                    order_b: order.clone(),
                    col,
                    value_a,
                    value_b,
                }));
            }
        }
    }
    Consistency::Consistent
}

/// Multi-version variant of [`check_consistency`]: chases every sample
/// tuple to its **set** of fixpoints (§IV-C) under several rule orders and
/// compares the sets — the paper's Church–Rosser condition verbatim
/// ("terminate in the same fixpoint(s)").
pub fn check_consistency_multi(
    ctx: &MatchContext<'_>,
    rules: &[DetectiveRule],
    sample: &Relation,
    opts: &ConsistencyOptions,
) -> Consistency {
    if rules.len() <= 1 {
        return Consistency::Consistent;
    }
    let identity: Vec<usize> = (0..rules.len()).collect();
    let mut orders: Vec<Vec<usize>> = vec![identity.clone()];
    let mut reversed = identity.clone();
    reversed.reverse();
    orders.push(reversed);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for _ in 0..opts.random_orders {
        let mut order = identity.clone();
        order.shuffle(&mut rng);
        orders.push(order);
    }
    orders.dedup();

    let multi_opts = MultiOptions {
        apply: opts.apply.clone(),
        ..Default::default()
    };
    let fixpoint_set = |order: &[usize], tuple: &Tuple| -> Vec<Tuple> {
        let reordered: Vec<DetectiveRule> = order.iter().map(|&i| rules[i].clone()).collect();
        // `multi_repair_tuple` already sorts and dedups its output.
        multi_repair_tuple(ctx, &reordered, tuple, &multi_opts)
    };

    for (row, tuple) in sample.tuples().iter().enumerate() {
        let baseline = fixpoint_set(&orders[0], tuple);
        for order in &orders[1..] {
            let other = fixpoint_set(order, tuple);
            if baseline != other {
                // Surface the first differing cell of the first differing
                // fixpoint for the witness.
                let (a, b) = baseline
                    .iter()
                    .zip(&other)
                    .find(|(a, b)| a != b)
                    .map(|(a, b)| (a.clone(), b.clone()))
                    .unwrap_or_else(|| {
                        (
                            baseline.last().cloned().unwrap_or_else(|| tuple.clone()),
                            other.last().cloned().unwrap_or_else(|| tuple.clone()),
                        )
                    });
                let (col, value_a, value_b) = first_diff(&a, &b).unwrap_or((
                    AttrId::from_index(0),
                    String::new(),
                    String::new(),
                ));
                return Consistency::Inconsistent(Box::new(Divergence {
                    row,
                    order_a: orders[0].clone(),
                    order_b: order.clone(),
                    col,
                    value_a,
                    value_b,
                }));
            }
        }
    }
    Consistency::Consistent
}

/// Static analysis: pairs of rules that repair the same column. Such pairs
/// are the only candidates for order-dependence on that column and deserve
/// review (the sampled check above decides whether contention actually
/// occurs on the data).
pub fn contending_pairs(rules: &[DetectiveRule]) -> Vec<(usize, usize, AttrId)> {
    let mut out = Vec::new();
    for i in 0..rules.len() {
        for j in i + 1..rules.len() {
            if rules[i].repair_col() == rules[j].repair_col() {
                out.push((i, j, rules[i].repair_col()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure4_rules, nobel_schema, table1_dirty};
    use crate::graph::schema::NodeType;
    use crate::rule::{node, RuleEdge, RuleNodeRef};
    use dr_kb::fixtures::{names, nobel_mini_kb};
    use dr_simmatch::SimFn;

    #[test]
    fn figure4_rules_are_consistent_on_table1() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let verdict = check_consistency(
            &ctx,
            &rules,
            &table1_dirty(),
            &ConsistencyOptions::default(),
        );
        assert!(verdict.is_consistent(), "{verdict:?}");
    }

    /// Two rules with opposite City semantics (lives-at vs born-in) diverge
    /// on r1 depending on order: a textbook inconsistent pair.
    #[test]
    fn opposite_semantics_detected_as_inconsistent() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let rules = figure4_rules(&kb);
        let phi2 = rules[1].clone(); // City = lives-at

        // born-in rule: positive City via wasBornIn, negative via
        // worksAt∘locatedIn.
        let laureate = NodeType::Class(kb.class_named(names::LAUREATE).unwrap());
        let org = NodeType::Class(kb.class_named(names::ORGANIZATION).unwrap());
        let city = NodeType::Class(kb.class_named(names::CITY).unwrap());
        let born_city = crate::rule::DetectiveRule::new(
            "born-city",
            vec![
                node(schema.attr_expect("Name"), laureate, SimFn::Equal),
                node(
                    schema.attr_expect("Institution"),
                    org,
                    SimFn::EditDistance(2),
                ),
            ],
            node(schema.attr_expect("City"), city, SimFn::Equal),
            node(schema.attr_expect("City"), city, SimFn::Equal),
            vec![
                RuleEdge {
                    from: RuleNodeRef::Evidence(0),
                    to: RuleNodeRef::Evidence(1),
                    rel: kb.pred_named(names::WORKS_AT).unwrap(),
                },
                RuleEdge {
                    from: RuleNodeRef::Evidence(0),
                    to: RuleNodeRef::Positive,
                    rel: kb.pred_named(names::BORN_IN).unwrap(),
                },
                RuleEdge {
                    from: RuleNodeRef::Evidence(1),
                    to: RuleNodeRef::Negative,
                    rel: kb.pred_named(names::LOCATED_IN).unwrap(),
                },
            ],
        )
        .unwrap();

        let pair = vec![phi2, born_city];
        assert_eq!(contending_pairs(&pair).len(), 1);

        let ctx = MatchContext::new(&kb);
        let verdict =
            check_consistency(&ctx, &pair, &table1_dirty(), &ConsistencyOptions::default());
        match verdict {
            Consistency::Inconsistent(d) => {
                assert_eq!(nobel_schema().attr_name(d.col), "City");
                assert_ne!(d.value_a, d.value_b);
                assert_eq!(d.row, 0, "diverges on Avram Hershko");
            }
            Consistency::Consistent => panic!("expected divergence"),
        }
    }

    /// Multi-version consistency: all four rules agree on the fixpoint SET
    /// for every Table-I tuple — including Calvin's two versions.
    #[test]
    fn figure4_rules_are_multi_consistent() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let verdict = check_consistency_multi(
            &ctx,
            &rules,
            &table1_dirty(),
            &ConsistencyOptions::default(),
        );
        assert!(verdict.is_consistent(), "{verdict:?}");
    }

    #[test]
    fn multi_checker_catches_the_same_divergence() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let rules = figure4_rules(&kb);
        let phi2 = rules[1].clone();
        let laureate = NodeType::Class(kb.class_named(names::LAUREATE).unwrap());
        let org = NodeType::Class(kb.class_named(names::ORGANIZATION).unwrap());
        let city = NodeType::Class(kb.class_named(names::CITY).unwrap());
        let born_city = crate::rule::DetectiveRule::new(
            "born-city",
            vec![
                node(schema.attr_expect("Name"), laureate, SimFn::Equal),
                node(
                    schema.attr_expect("Institution"),
                    org,
                    SimFn::EditDistance(2),
                ),
            ],
            node(schema.attr_expect("City"), city, SimFn::Equal),
            node(schema.attr_expect("City"), city, SimFn::Equal),
            vec![
                RuleEdge {
                    from: RuleNodeRef::Evidence(0),
                    to: RuleNodeRef::Evidence(1),
                    rel: kb.pred_named(names::WORKS_AT).unwrap(),
                },
                RuleEdge {
                    from: RuleNodeRef::Evidence(0),
                    to: RuleNodeRef::Positive,
                    rel: kb.pred_named(names::BORN_IN).unwrap(),
                },
                RuleEdge {
                    from: RuleNodeRef::Evidence(1),
                    to: RuleNodeRef::Negative,
                    rel: kb.pred_named(names::LOCATED_IN).unwrap(),
                },
            ],
        )
        .unwrap();
        let ctx = MatchContext::new(&kb);
        let verdict = check_consistency_multi(
            &ctx,
            &[phi2, born_city],
            &table1_dirty(),
            &ConsistencyOptions::default(),
        );
        assert!(!verdict.is_consistent());
    }

    #[test]
    fn single_rule_is_trivially_consistent() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let verdict = check_consistency(
            &ctx,
            &rules[..1],
            &table1_dirty(),
            &ConsistencyOptions::default(),
        );
        assert!(verdict.is_consistent());
    }

    #[test]
    fn contending_pairs_on_distinct_columns_is_empty() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        assert!(contending_pairs(&rules).is_empty());
    }
}
