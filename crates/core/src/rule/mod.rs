//! Detective rules (§II-C).
//!
//! A detective rule merges two schema-level matching graphs that differ in a
//! single node over the same column: the **positive node** `p` captures the
//! column's correct semantics, the **negative node** `n` captures how wrong
//! values of that column connect to the rest of the tuple, and the shared
//! **evidence nodes** `Ve` anchor both sides.

pub mod apply;
pub mod consistency;
pub mod generation;
pub mod text;

use crate::graph::schema::{NodeType, SchemaGraph, SchemaGraphError, SchemaNode};
use dr_kb::{KnowledgeBase, PredId};
use dr_relation::{AttrId, Schema};
use dr_simmatch::SimFn;
use std::fmt;

/// Refers to a node of a detective rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleNodeRef {
    /// Evidence node `Ve[i]`.
    Evidence(usize),
    /// The positive node `p`.
    Positive,
    /// The negative node `n`.
    Negative,
    /// Auxiliary node `aux[i]`: a KB-typed intermediate entity with no
    /// table column. Auxiliary nodes realize the paper's §II-C remark that
    /// single positive/negative *nodes* extend to *paths* — e.g. reaching
    /// the City column through an organization the schema does not contain.
    Aux(usize),
}

/// A directed, labeled edge of a detective rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleEdge {
    /// Source node.
    pub from: RuleNodeRef,
    /// Target node.
    pub to: RuleNodeRef,
    /// The KB relationship or property.
    pub rel: PredId,
}

/// Validation failures for a detective rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// `col(p) != col(n)`.
    PositiveNegativeColumnMismatch,
    /// Positive/negative column also appears among the evidence.
    RepairColumnInEvidence,
    /// Two evidence nodes share a column.
    DuplicateEvidenceColumn(AttrId),
    /// An edge references evidence index out of range.
    BadEvidenceIndex(usize),
    /// An edge connects `p` and `n` directly.
    PositiveNegativeEdge,
    /// A rule needs at least one evidence node.
    NoEvidence,
    /// An edge references an auxiliary index out of range.
    BadAuxIndex(usize),
    /// An auxiliary node appears in no edge.
    DanglingAux(usize),
    /// The positive side `Ve ∪ {p}` is invalid.
    BadPositiveSide(SchemaGraphError),
    /// The negative side `Ve ∪ {n}` is invalid.
    BadNegativeSide(SchemaGraphError),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::PositiveNegativeColumnMismatch => {
                write!(
                    f,
                    "positive and negative nodes must reference the same column"
                )
            }
            RuleError::RepairColumnInEvidence => {
                write!(f, "the repaired column may not also be an evidence column")
            }
            RuleError::DuplicateEvidenceColumn(a) => {
                write!(f, "two evidence nodes reference column {a:?}")
            }
            RuleError::BadEvidenceIndex(i) => write!(f, "edge references evidence index {i}"),
            RuleError::PositiveNegativeEdge => {
                write!(f, "an edge may not connect the positive and negative nodes")
            }
            RuleError::NoEvidence => write!(f, "a detective rule needs at least one evidence node"),
            RuleError::BadAuxIndex(i) => write!(f, "edge references auxiliary index {i}"),
            RuleError::DanglingAux(i) => write!(f, "auxiliary node {i} appears in no edge"),
            RuleError::BadPositiveSide(e) => write!(f, "positive side invalid: {e}"),
            RuleError::BadNegativeSide(e) => write!(f, "negative side invalid: {e}"),
        }
    }
}

impl std::error::Error for RuleError {}

/// A detective rule `G(Ve ∪ {p, n}, E)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectiveRule {
    name: String,
    evidence: Vec<SchemaNode>,
    positive: SchemaNode,
    negative: SchemaNode,
    /// KB types of the auxiliary (column-free, value-free) nodes.
    aux: Vec<NodeType>,
    edges: Vec<RuleEdge>,
}

impl DetectiveRule {
    /// Builds and validates a rule.
    ///
    /// # Errors
    /// See [`RuleError`]. Both `Ve ∪ {p}` and `Ve ∪ {n}` must be valid,
    /// connected schema-level matching graphs.
    pub fn new(
        name: impl Into<String>,
        evidence: Vec<SchemaNode>,
        positive: SchemaNode,
        negative: SchemaNode,
        edges: Vec<RuleEdge>,
    ) -> Result<Self, RuleError> {
        Self::with_aux(name, evidence, Vec::new(), positive, negative, edges)
    }

    /// [`DetectiveRule::new`] with auxiliary nodes: KB-typed intermediates
    /// with no table column, which both sides may route edges through
    /// (positive/negative *paths*, the §II-C extension).
    pub fn with_aux(
        name: impl Into<String>,
        evidence: Vec<SchemaNode>,
        aux: Vec<NodeType>,
        positive: SchemaNode,
        negative: SchemaNode,
        edges: Vec<RuleEdge>,
    ) -> Result<Self, RuleError> {
        if positive.col != negative.col {
            return Err(RuleError::PositiveNegativeColumnMismatch);
        }
        if evidence.is_empty() {
            return Err(RuleError::NoEvidence);
        }
        let mut cols = dr_kb::FxHashSet::default();
        for ev in &evidence {
            if ev.col == positive.col {
                return Err(RuleError::RepairColumnInEvidence);
            }
            if !cols.insert(ev.col) {
                return Err(RuleError::DuplicateEvidenceColumn(ev.col));
            }
        }
        let mut aux_used = vec![false; aux.len()];
        for e in &edges {
            for end in [e.from, e.to] {
                match end {
                    RuleNodeRef::Evidence(i) if i >= evidence.len() => {
                        return Err(RuleError::BadEvidenceIndex(i));
                    }
                    RuleNodeRef::Aux(i) => {
                        if i >= aux.len() {
                            return Err(RuleError::BadAuxIndex(i));
                        }
                        aux_used[i] = true;
                    }
                    _ => {}
                }
            }
            let touches_p = e.from == RuleNodeRef::Positive || e.to == RuleNodeRef::Positive;
            let touches_n = e.from == RuleNodeRef::Negative || e.to == RuleNodeRef::Negative;
            if touches_p && touches_n {
                return Err(RuleError::PositiveNegativeEdge);
            }
        }
        if let Some(i) = aux_used.iter().position(|&u| !u) {
            return Err(RuleError::DanglingAux(i));
        }
        let rule = Self {
            name: name.into(),
            evidence,
            positive,
            negative,
            aux,
            edges,
        };
        if rule.aux.is_empty() {
            // Aux-free rules validate through the schema-graph machinery
            // (per-column uniqueness, literal-source edges, connectivity).
            rule.positive_graph()
                .validate()
                .map_err(RuleError::BadPositiveSide)?;
            rule.negative_graph()
                .validate()
                .map_err(RuleError::BadNegativeSide)?;
        } else {
            rule.validate_side_with_aux(true)
                .map_err(RuleError::BadPositiveSide)?;
            rule.validate_side_with_aux(false)
                .map_err(RuleError::BadNegativeSide)?;
        }
        Ok(rule)
    }

    /// Validates a side (positive when `positive_side`) of a rule with
    /// auxiliary nodes: literal nodes have no out-edges and the evidence
    /// plus the side's p/n node are connected through the side's edges
    /// (auxiliary nodes may carry the connection).
    fn validate_side_with_aux(&self, positive_side: bool) -> Result<(), SchemaGraphError> {
        let excluded = if positive_side {
            RuleNodeRef::Negative
        } else {
            RuleNodeRef::Positive
        };
        let kept = if positive_side {
            RuleNodeRef::Positive
        } else {
            RuleNodeRef::Negative
        };
        // Dense node numbering: evidence, kept, aux.
        let k = self.evidence.len();
        let number = |r: RuleNodeRef| -> Option<usize> {
            match r {
                RuleNodeRef::Evidence(i) => Some(i),
                r if r == kept => Some(k),
                RuleNodeRef::Aux(i) => Some(k + 1 + i),
                _ => None,
            }
        };
        let ty_of = |r: RuleNodeRef| -> NodeType {
            match r {
                RuleNodeRef::Evidence(i) => self.evidence[i].ty,
                RuleNodeRef::Positive => self.positive.ty,
                RuleNodeRef::Negative => self.negative.ty,
                RuleNodeRef::Aux(i) => self.aux[i],
            }
        };
        let total = k + 1 + self.aux.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for e in &self.edges {
            if e.from == excluded || e.to == excluded {
                continue;
            }
            if ty_of(e.from) == NodeType::Literal {
                let idx = number(e.from).expect("side node");
                return Err(SchemaGraphError::EdgeFromLiteral(idx));
            }
            if let (Some(a), Some(b)) = (number(e.from), number(e.to)) {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                parent[ra] = rb;
            }
        }
        // Evidence and the kept node must share a component. Aux nodes only
        // used on the other side are exempt.
        let root = find(&mut parent, k);
        for i in 0..k {
            if find(&mut parent, i) != root {
                return Err(SchemaGraphError::Disconnected);
            }
        }
        Ok(())
    }

    /// The auxiliary node types (empty for plain rules).
    pub fn aux(&self) -> &[NodeType] {
        &self.aux
    }

    /// The rule's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The evidence nodes `Ve`.
    pub fn evidence(&self) -> &[SchemaNode] {
        &self.evidence
    }

    /// The positive node `p`.
    pub fn positive(&self) -> &SchemaNode {
        &self.positive
    }

    /// The negative node `n`.
    pub fn negative(&self) -> &SchemaNode {
        &self.negative
    }

    /// All edges.
    pub fn edges(&self) -> &[RuleEdge] {
        &self.edges
    }

    /// The column this rule can repair: `col(p) = col(n)`.
    pub fn repair_col(&self) -> AttrId {
        self.positive.col
    }

    /// The evidence columns `col(Ve)`, in evidence order.
    pub fn evidence_cols(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.evidence.iter().map(|n| n.col)
    }

    /// Columns this rule may **rewrite** when it applies: the repaired
    /// column `col(p)`, plus every evidence column matched with a
    /// non-exact similarity. Fuzzy-matched evidence cells are rewritten to
    /// their canonical KB label on success (see
    /// [`apply::ApplyOptions::normalize_fuzzy`]), so they are writes for
    /// dependency purposes — a rule checked earlier could be re-enabled by
    /// such a rewrite exactly like by a repair.
    pub fn write_cols(&self) -> Vec<AttrId> {
        let mut cols = vec![self.repair_col()];
        for n in &self.evidence {
            if n.sim != SimFn::Equal && !cols.contains(&n.col) {
                cols.push(n.col);
            }
        }
        cols
    }

    /// The largest column index the rule touches. A rule only applies to
    /// relations whose arity exceeds this (used to scope shared rule pools
    /// to compatible tables).
    pub fn max_col_index(&self) -> usize {
        self.evidence
            .iter()
            .map(|n| n.col.index())
            .chain([self.positive.col.index()])
            .max()
            .expect("rules have at least the positive column")
    }

    /// Columns marked positive when the rule applies: `col(Ve ∪ {p})`.
    pub fn marked_cols(&self) -> Vec<AttrId> {
        let mut cols: Vec<AttrId> = self.evidence_cols().collect();
        cols.push(self.repair_col());
        cols
    }

    /// Edges that belong to the positive side (i.e. not touching `n`).
    pub fn positive_edges(&self) -> impl Iterator<Item = &RuleEdge> {
        self.edges
            .iter()
            .filter(|e| e.from != RuleNodeRef::Negative && e.to != RuleNodeRef::Negative)
    }

    /// Edges that belong to the negative side (i.e. not touching `p`).
    pub fn negative_edges(&self) -> impl Iterator<Item = &RuleEdge> {
        self.edges
            .iter()
            .filter(|e| e.from != RuleNodeRef::Positive && e.to != RuleNodeRef::Positive)
    }

    /// Edges internal to the evidence.
    pub fn evidence_edges(&self) -> impl Iterator<Item = &RuleEdge> {
        self.edges.iter().filter(|e| {
            matches!(e.from, RuleNodeRef::Evidence(_)) && matches!(e.to, RuleNodeRef::Evidence(_))
        })
    }

    fn side_graph(&self, keep: RuleNodeRef, node: &SchemaNode) -> SchemaGraph {
        let mut g = SchemaGraph::new();
        // Evidence nodes first (indexes 0..|Ve|), then the kept node.
        for ev in &self.evidence {
            g.add_node(*ev);
        }
        let kept = g.add_node(*node);
        let map = |r: RuleNodeRef| -> Option<usize> {
            match r {
                RuleNodeRef::Evidence(i) => Some(i),
                r if r == keep => Some(kept),
                _ => None,
            }
        };
        for e in &self.edges {
            if let (Some(from), Some(to)) = (map(e.from), map(e.to)) {
                g.add_edge(from, to, e.rel);
            }
        }
        g
    }

    /// The positive schema-level matching graph `GS₁ = Ve ∪ {p}`.
    /// Node indexes: evidence in order, then `p` last.
    pub fn positive_graph(&self) -> SchemaGraph {
        self.side_graph(RuleNodeRef::Positive, &self.positive)
    }

    /// The negative schema-level matching graph `GS₂ = Ve ∪ {n}`.
    /// Node indexes: evidence in order, then `n` last.
    pub fn negative_graph(&self) -> SchemaGraph {
        self.side_graph(RuleNodeRef::Negative, &self.negative)
    }

    /// Renders the rule for debugging against a KB and schema.
    pub fn render(&self, kb: &KnowledgeBase, schema: &Schema) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "rule {}:", self.name);
        let show = |n: &SchemaNode| {
            format!(
                "col={} type={} sim={}",
                schema.attr_name(n.col),
                n.ty.display(kb),
                n.sim
            )
        };
        for (i, ev) in self.evidence.iter().enumerate() {
            let _ = writeln!(out, "  e{i}: {}", show(ev));
        }
        let _ = writeln!(out, "  p:  {}", show(&self.positive));
        let _ = writeln!(out, "  n:  {}", show(&self.negative));
        for (i, ty) in self.aux.iter().enumerate() {
            let _ = writeln!(out, "  aux{i}: type={} (free)", ty.display(kb));
        }
        let tag = |r: RuleNodeRef| match r {
            RuleNodeRef::Evidence(i) => format!("e{i}"),
            RuleNodeRef::Positive => "p".into(),
            RuleNodeRef::Negative => "n".into(),
            RuleNodeRef::Aux(i) => format!("aux{i}"),
        };
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  {} -[{}]-> {}",
                tag(e.from),
                kb.pred_name(e.rel),
                tag(e.to)
            );
        }
        out
    }
}

/// Convenience constructors for [`SchemaNode`]s used when writing rules by
/// hand.
pub fn node(col: AttrId, ty: NodeType, sim: dr_simmatch::SimFn) -> SchemaNode {
    SchemaNode::new(col, ty, sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure4_rules, nobel_schema};
    use dr_kb::fixtures::nobel_mini_kb;
    use dr_simmatch::SimFn;

    #[test]
    fn figure4_rules_validate() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].name(), "phi1");
        // Each rule's sides are valid connected graphs (checked in `new`).
    }

    #[test]
    fn phi1_shape() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let rules = figure4_rules(&kb);
        let phi1 = &rules[0];
        assert_eq!(schema.attr_name(phi1.repair_col()), "Institution");
        let ev: Vec<&str> = phi1.evidence_cols().map(|c| schema.attr_name(c)).collect();
        assert_eq!(ev, vec!["Name", "DOB"]);
        assert_eq!(phi1.positive_edges().count(), 2); // Name→DOB, Name→p
        assert_eq!(phi1.negative_edges().count(), 2); // Name→DOB, Name→n
        assert_eq!(phi1.evidence_edges().count(), 1); // Name→DOB
    }

    #[test]
    fn side_graphs_differ_only_in_one_node() {
        let kb = nobel_mini_kb();
        for rule in figure4_rules(&kb) {
            let pos = rule.positive_graph();
            let neg = rule.negative_graph();
            // Removing the last node (p resp. n) leaves isomorphic graphs.
            let pos_core = pos.without_node(pos.len() - 1);
            let neg_core = neg.without_node(neg.len() - 1);
            assert!(
                pos_core.isomorphic(&neg_core),
                "rule {}: cores must be isomorphic",
                rule.name()
            );
        }
    }

    #[test]
    fn column_mismatch_rejected() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let rules = figure4_rules(&kb);
        let phi1 = &rules[0];
        let mut wrong = phi1.positive().to_owned();
        wrong.col = schema.attr_expect("City");
        let err = DetectiveRule::new(
            "broken",
            phi1.evidence().to_vec(),
            *phi1.positive(),
            wrong,
            phi1.edges().to_vec(),
        )
        .unwrap_err();
        assert_eq!(err, RuleError::PositiveNegativeColumnMismatch);
    }

    #[test]
    fn repair_column_cannot_be_evidence() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let phi1 = &rules[0];
        let mut evidence = phi1.evidence().to_vec();
        evidence.push(*phi1.positive());
        let err = DetectiveRule::new(
            "broken",
            evidence,
            *phi1.positive(),
            *phi1.negative(),
            phi1.edges().to_vec(),
        )
        .unwrap_err();
        assert_eq!(err, RuleError::RepairColumnInEvidence);
    }

    #[test]
    fn p_to_n_edge_rejected() {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let phi1 = &rules[0];
        let mut edges = phi1.edges().to_vec();
        edges.push(RuleEdge {
            from: RuleNodeRef::Positive,
            to: RuleNodeRef::Negative,
            rel: kb.pred_named("worksAt").unwrap(),
        });
        let err = DetectiveRule::new(
            "broken",
            phi1.evidence().to_vec(),
            *phi1.positive(),
            *phi1.negative(),
            edges,
        )
        .unwrap_err();
        assert_eq!(err, RuleError::PositiveNegativeEdge);
    }

    #[test]
    fn disconnected_side_rejected() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let laureate = kb.class_named("Nobel laureates in Chemistry").unwrap();
        let city = kb.class_named("city").unwrap();
        // No edges at all: both sides disconnected.
        let err = DetectiveRule::new(
            "broken",
            vec![node(
                schema.attr_expect("Name"),
                NodeType::Class(laureate),
                SimFn::Equal,
            )],
            node(
                schema.attr_expect("City"),
                NodeType::Class(city),
                SimFn::Equal,
            ),
            node(
                schema.attr_expect("City"),
                NodeType::Class(city),
                SimFn::Equal,
            ),
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, RuleError::BadPositiveSide(_)));
    }

    #[test]
    fn no_evidence_rejected() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let city = kb.class_named("city").unwrap();
        let err = DetectiveRule::new(
            "broken",
            vec![],
            node(
                schema.attr_expect("City"),
                NodeType::Class(city),
                SimFn::Equal,
            ),
            node(
                schema.attr_expect("City"),
                NodeType::Class(city),
                SimFn::Equal,
            ),
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, RuleError::NoEvidence);
    }

    #[test]
    fn render_is_informative() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let rules = figure4_rules(&kb);
        let text = rules[1].render(&kb, &schema);
        assert!(text.contains("rule phi2"));
        assert!(text.contains("wasBornIn"));
        assert!(text.contains("col=City"));
    }
}
