//! A textual format for detective rules, mirroring the paper's figures.
//!
//! ```text
//! rule phi2 {
//!     evidence w1: Name type "Nobel laureates in Chemistry" sim =;
//!     evidence w2: Institution type "organization" sim ED,2;
//!     positive p: City type "city" sim =;
//!     negative n: City type "city" sim =;
//!     edge w1 -[worksAt]-> w2;
//!     edge w2 -[locatedIn]-> p;
//!     edge w1 -[wasBornIn]-> n;
//! }
//! ```
//!
//! * Node declarations bind an alias to a column of the relation schema, a
//!   KB type (`"class name"` or the keyword `literal`), and a `sim` spec
//!   (`=`, `ED,k`, `JAC,t`, `COS,t`).
//! * `aux a1 type "organization";` declares a column-free auxiliary node
//!   (positive/negative paths).
//! * Edges connect aliases with a KB relationship or property.
//! * `#` starts a line comment. A file may hold any number of rules.
//!
//! Parsing resolves column names against a [`Schema`] and type/predicate
//! names against a [`KnowledgeBase`]; [`rules_to_text`] writes rules back
//! out, and the round-trip is lossless.

use crate::graph::schema::{NodeType, SchemaNode};
use crate::rule::{DetectiveRule, RuleEdge, RuleError, RuleNodeRef};
use dr_kb::{FxHashMap, KnowledgeBase};
use dr_relation::Schema;
use dr_simmatch::SimFn;
use std::fmt;

/// A parse/resolution failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleTextError {
    /// 1-based line of the offending token (0 for end-of-input errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RuleTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RuleTextError {}

fn err(line: usize, message: impl Into<String>) -> RuleTextError {
    RuleTextError {
        line,
        message: message.into(),
    }
}

/// One lexed token with its line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    Quoted(String),
    LBrace,
    RBrace,
    Colon,
    Semi,
    /// `-[rel]->`
    Arrow(String),
}

fn lex(text: &str) -> Result<Vec<(usize, Tok)>, RuleTextError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let mut chars = code.char_indices().peekable();
        while let Some(&(i, ch)) = chars.peek() {
            match ch {
                c if c.is_whitespace() => {
                    chars.next();
                }
                '{' => {
                    chars.next();
                    out.push((line, Tok::LBrace));
                }
                '}' => {
                    chars.next();
                    out.push((line, Tok::RBrace));
                }
                ':' => {
                    chars.next();
                    out.push((line, Tok::Colon));
                }
                ';' => {
                    chars.next();
                    out.push((line, Tok::Semi));
                }
                '"' => {
                    chars.next();
                    let mut value = String::new();
                    let mut closed = false;
                    for (_, c) in chars.by_ref() {
                        if c == '"' {
                            closed = true;
                            break;
                        }
                        value.push(c);
                    }
                    if !closed {
                        return Err(err(line, "unterminated string"));
                    }
                    out.push((line, Tok::Quoted(value)));
                }
                '-' if code[i..].starts_with("-[") => {
                    // `-[rel]->`.
                    let rest = &code[i..];
                    let close = rest
                        .find("]->")
                        .ok_or_else(|| err(line, "expected `-[rel]->`"))?;
                    let rel = rest[2..close].trim().to_owned();
                    if rel.is_empty() {
                        return Err(err(line, "empty relationship in edge"));
                    }
                    // Consume up to and including `]->`.
                    let consumed = close + 3;
                    for _ in 0..consumed {
                        chars.next();
                    }
                    out.push((line, Tok::Arrow(rel)));
                }
                _ => {
                    // A word: letters, digits, sim-spec characters, and `-`
                    // (except when it opens an edge arrow `-[`).
                    let mut word = String::new();
                    while let Some(&(j, c)) = chars.peek() {
                        let is_word_char = c.is_alphanumeric()
                            || "=.,_".contains(c)
                            || (c == '-' && !code[j..].starts_with("-["));
                        if is_word_char {
                            word.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    if word.is_empty() {
                        return Err(err(line, format!("unexpected character `{ch}`")));
                    }
                    out.push((line, Tok::Word(word)));
                }
            }
        }
    }
    Ok(out)
}

/// A declared node while parsing one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Declared {
    Evidence(usize),
    Positive,
    Negative,
    Aux(usize),
}

struct Parser<'a> {
    toks: &'a [(usize, Tok)],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&(usize, Tok)> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a (usize, Tok)> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|&(l, _)| l)
            .unwrap_or(0)
    }

    fn expect_word(&mut self, want: Option<&str>) -> Result<(usize, String), RuleTextError> {
        match self.next() {
            Some((line, Tok::Word(w))) => {
                if let Some(want) = want {
                    if w != want {
                        return Err(err(*line, format!("expected `{want}`, found `{w}`")));
                    }
                }
                Ok((*line, w.clone()))
            }
            Some((line, other)) => Err(err(*line, format!("expected a word, found {other:?}"))),
            None => Err(err(0, "unexpected end of input")),
        }
    }

    fn expect_tok(&mut self, want: &Tok, what: &str) -> Result<usize, RuleTextError> {
        match self.next() {
            Some((line, t)) if t == want => Ok(*line),
            Some((line, other)) => Err(err(*line, format!("expected {what}, found {other:?}"))),
            None => Err(err(0, format!("unexpected end of input, expected {what}"))),
        }
    }
}

/// Resolves a type token (`literal` keyword or quoted class name).
fn parse_type(parser: &mut Parser<'_>, kb: &KnowledgeBase) -> Result<NodeType, RuleTextError> {
    match parser.next() {
        Some((_, Tok::Word(w))) if w == "literal" => Ok(NodeType::Literal),
        Some((line, Tok::Quoted(name))) => kb
            .class_named(name)
            .map(NodeType::Class)
            .ok_or_else(|| err(*line, format!("unknown class `{name}`"))),
        Some((line, other)) => Err(err(
            *line,
            format!("expected `literal` or a quoted class name, found {other:?}"),
        )),
        None => Err(err(0, "unexpected end of input in type")),
    }
}

/// Parses one rule starting at `rule`.
fn parse_rule(
    parser: &mut Parser<'_>,
    schema: &Schema,
    kb: &KnowledgeBase,
) -> Result<DetectiveRule, RuleTextError> {
    let (_, name) = parser.expect_word(None)?; // rule name
    parser.expect_tok(&Tok::LBrace, "`{`")?;

    let mut aliases: FxHashMap<String, Declared> = FxHashMap::default();
    let mut evidence: Vec<SchemaNode> = Vec::new();
    let mut aux: Vec<NodeType> = Vec::new();
    let mut positive: Option<SchemaNode> = None;
    let mut negative: Option<SchemaNode> = None;
    let mut edges: Vec<RuleEdge> = Vec::new();

    loop {
        match parser.peek() {
            Some((_, Tok::RBrace)) => {
                parser.next();
                break;
            }
            None => return Err(err(0, "unexpected end of input inside rule body")),
            _ => {}
        }
        let (line, keyword) = parser.expect_word(None)?;
        match keyword.as_str() {
            "evidence" | "positive" | "negative" => {
                let (_, alias) = parser.expect_word(None)?;
                parser.expect_tok(&Tok::Colon, "`:`")?;
                let (col_line, col_name) = parser.expect_word(None)?;
                let col = schema
                    .attr(&col_name)
                    .ok_or_else(|| err(col_line, format!("unknown column `{col_name}`")))?;
                parser.expect_word(Some("type"))?;
                let ty = parse_type(parser, kb)?;
                parser.expect_word(Some("sim"))?;
                let (sim_line, sim_spec) = parser.expect_word(None)?;
                let sim: SimFn = sim_spec
                    .parse()
                    .map_err(|e| err(sim_line, format!("{e}")))?;
                parser.expect_tok(&Tok::Semi, "`;`")?;
                let node = SchemaNode::new(col, ty, sim);
                let declared = match keyword.as_str() {
                    "evidence" => {
                        evidence.push(node);
                        Declared::Evidence(evidence.len() - 1)
                    }
                    "positive" => {
                        if positive.is_some() {
                            return Err(err(line, "duplicate positive node"));
                        }
                        positive = Some(node);
                        Declared::Positive
                    }
                    _ => {
                        if negative.is_some() {
                            return Err(err(line, "duplicate negative node"));
                        }
                        negative = Some(node);
                        Declared::Negative
                    }
                };
                if aliases.insert(alias.clone(), declared).is_some() {
                    return Err(err(line, format!("duplicate alias `{alias}`")));
                }
            }
            "aux" => {
                let (_, alias) = parser.expect_word(None)?;
                parser.expect_word(Some("type"))?;
                let ty = parse_type(parser, kb)?;
                parser.expect_tok(&Tok::Semi, "`;`")?;
                aux.push(ty);
                if aliases
                    .insert(alias.clone(), Declared::Aux(aux.len() - 1))
                    .is_some()
                {
                    return Err(err(line, format!("duplicate alias `{alias}`")));
                }
            }
            "edge" => {
                let (from_line, from_alias) = parser.expect_word(None)?;
                let rel_name = match parser.next() {
                    Some((_, Tok::Arrow(rel))) => rel.clone(),
                    Some((l, other)) => {
                        return Err(err(*l, format!("expected `-[rel]->`, found {other:?}")))
                    }
                    None => return Err(err(0, "unexpected end of input in edge")),
                };
                let (to_line, to_alias) = parser.expect_word(None)?;
                parser.expect_tok(&Tok::Semi, "`;`")?;
                let resolve = |alias: &str, l: usize| -> Result<RuleNodeRef, RuleTextError> {
                    match aliases.get(alias) {
                        Some(Declared::Evidence(i)) => Ok(RuleNodeRef::Evidence(*i)),
                        Some(Declared::Positive) => Ok(RuleNodeRef::Positive),
                        Some(Declared::Negative) => Ok(RuleNodeRef::Negative),
                        Some(Declared::Aux(i)) => Ok(RuleNodeRef::Aux(*i)),
                        None => Err(err(l, format!("unknown alias `{alias}`"))),
                    }
                };
                let rel = kb
                    .pred_named(&rel_name)
                    .ok_or_else(|| err(from_line, format!("unknown relationship `{rel_name}`")))?;
                edges.push(RuleEdge {
                    from: resolve(&from_alias, from_line)?,
                    to: resolve(&to_alias, to_line)?,
                    rel,
                });
            }
            other => {
                return Err(err(
                    line,
                    format!("expected `evidence|positive|negative|aux|edge`, found `{other}`"),
                ))
            }
        }
    }

    let positive = positive.ok_or_else(|| err(parser.line(), "rule has no positive node"))?;
    let negative = negative.ok_or_else(|| err(parser.line(), "rule has no negative node"))?;
    DetectiveRule::with_aux(name, evidence, aux, positive, negative, edges)
        .map_err(|e: RuleError| err(parser.line(), format!("invalid rule: {e}")))
}

/// Parses a rule file against a schema and a KB.
///
/// # Errors
/// Reports the first lexical, syntactic, resolution, or rule-validation
/// failure with its line number.
pub fn parse_rules(
    text: &str,
    schema: &Schema,
    kb: &KnowledgeBase,
) -> Result<Vec<DetectiveRule>, RuleTextError> {
    let toks = lex(text)?;
    let mut parser = Parser {
        toks: &toks,
        pos: 0,
    };
    let mut rules = Vec::new();
    while parser.peek().is_some() {
        parser.expect_word(Some("rule"))?;
        rules.push(parse_rule(&mut parser, schema, kb)?);
    }
    Ok(rules)
}

fn sim_spec(sim: SimFn) -> String {
    // `SimFn::Display` already emits the parseable spec.
    sim.to_string()
}

fn type_spec(ty: NodeType, kb: &KnowledgeBase) -> String {
    match ty {
        NodeType::Literal => "literal".to_owned(),
        NodeType::Class(c) => format!("\"{}\"", kb.class_name(c)),
    }
}

/// Serializes rules to the textual format (inverse of [`parse_rules`]).
pub fn rules_to_text(rules: &[DetectiveRule], schema: &Schema, kb: &KnowledgeBase) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for rule in rules {
        let _ = writeln!(out, "rule {} {{", rule.name());
        for (i, ev) in rule.evidence().iter().enumerate() {
            let _ = writeln!(
                out,
                "    evidence e{i}: {} type {} sim {};",
                schema.attr_name(ev.col),
                type_spec(ev.ty, kb),
                sim_spec(ev.sim)
            );
        }
        for (i, &ty) in rule.aux().iter().enumerate() {
            let _ = writeln!(out, "    aux a{i} type {};", type_spec(ty, kb));
        }
        let p = rule.positive();
        let _ = writeln!(
            out,
            "    positive p: {} type {} sim {};",
            schema.attr_name(p.col),
            type_spec(p.ty, kb),
            sim_spec(p.sim)
        );
        let n = rule.negative();
        let _ = writeln!(
            out,
            "    negative n: {} type {} sim {};",
            schema.attr_name(n.col),
            type_spec(n.ty, kb),
            sim_spec(n.sim)
        );
        let alias = |r: RuleNodeRef| match r {
            RuleNodeRef::Evidence(i) => format!("e{i}"),
            RuleNodeRef::Positive => "p".to_owned(),
            RuleNodeRef::Negative => "n".to_owned(),
            RuleNodeRef::Aux(i) => format!("a{i}"),
        };
        for e in rule.edges() {
            let _ = writeln!(
                out,
                "    edge {} -[{}]-> {};",
                alias(e.from),
                kb.pred_name(e.rel),
                alias(e.to)
            );
        }
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure4_rules, nobel_schema, table1_dirty};
    use crate::{apply_rule, ApplyOptions, MatchContext, RuleApplication};
    use dr_kb::fixtures::nobel_mini_kb;

    const PHI2_TEXT: &str = r#"
# ϕ2 of Figure 4: the lives-at vs born-in City rule.
rule phi2 {
    evidence w1: Name type "Nobel laureates in Chemistry" sim =;
    evidence w2: Institution type "organization" sim ED,2;
    positive p: City type "city" sim =;
    negative n: City type "city" sim =;
    edge w1 -[worksAt]-> w2;
    edge w2 -[locatedIn]-> p;
    edge w1 -[wasBornIn]-> n;
}
"#;

    #[test]
    fn parses_and_applies_phi2() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let rules = parse_rules(PHI2_TEXT, &schema, &kb).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].name(), "phi2");

        let ctx = MatchContext::new(&kb);
        let mut r1 = table1_dirty().tuple(0).clone();
        match apply_rule(&ctx, &rules[0], &mut r1, &ApplyOptions::default()) {
            RuleApplication::Repaired { old, new, .. } => {
                assert_eq!(old, "Karcag");
                assert_eq!(new, "Haifa");
            }
            other => panic!("expected repair, got {other:?}"),
        }
    }

    #[test]
    fn figure4_rules_roundtrip() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let rules = figure4_rules(&kb);
        let text = rules_to_text(&rules, &schema, &kb);
        let back = parse_rules(&text, &schema, &kb).unwrap();
        assert_eq!(rules.len(), back.len());
        for (a, b) in rules.iter().zip(&back) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.evidence(), b.evidence());
            assert_eq!(a.positive(), b.positive());
            assert_eq!(a.negative(), b.negative());
            assert_eq!(a.edges(), b.edges());
        }
        // Canonical: re-serialization is identical.
        assert_eq!(text, rules_to_text(&back, &schema, &kb));
    }

    #[test]
    fn aux_rule_roundtrip() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let text = r#"
rule city-via-aux {
    evidence e0: Name type "Nobel laureates in Chemistry" sim =;
    aux a0 type "organization";
    positive p: City type "city" sim =;
    negative n: City type "city" sim =;
    edge e0 -[worksAt]-> a0;
    edge a0 -[locatedIn]-> p;
    edge e0 -[wasBornIn]-> n;
}
"#;
        let rules = parse_rules(text, &schema, &kb).unwrap();
        assert_eq!(rules[0].aux().len(), 1);
        let round = rules_to_text(&rules, &schema, &kb);
        let back = parse_rules(&round, &schema, &kb).unwrap();
        assert_eq!(rules[0].edges(), back[0].edges());
    }

    #[test]
    fn error_reporting_is_line_accurate() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        for (text, needle) in [
            (
                "rule x {\n  evidence e: Nope type \"city\" sim =;\n}",
                "unknown column",
            ),
            (
                "rule x {\n  evidence e: Name type \"no-such-class\" sim =;\n}",
                "unknown class",
            ),
            (
                "rule x {\n  evidence e: Name type \"city\" sim LEV,3;\n}",
                "invalid sim spec",
            ),
            ("rule x {\n  bogus;\n}", "expected `evidence"),
            ("rule x {", "end of input"),
        ] {
            let e = parse_rules(text, &schema, &kb).unwrap_err();
            assert!(
                e.message.contains(needle),
                "text {text:?}: expected `{needle}` in `{e}`"
            );
        }
    }

    #[test]
    fn unknown_edge_alias_and_rel() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let base = r#"
rule x {
    evidence e0: Name type "Nobel laureates in Chemistry" sim =;
    positive p: City type "city" sim =;
    negative n: City type "city" sim =;
"#;
        let bad_alias = format!("{base}    edge zz -[worksAt]-> p;\n}}");
        let e = parse_rules(&bad_alias, &schema, &kb).unwrap_err();
        assert!(e.message.contains("unknown alias"), "{e}");

        let bad_rel = format!("{base}    edge e0 -[noSuchRel]-> p;\n}}");
        let e = parse_rules(&bad_rel, &schema, &kb).unwrap_err();
        assert!(e.message.contains("unknown relationship"), "{e}");
    }

    #[test]
    fn invalid_rule_structure_is_reported() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        // Positive and negative on different columns.
        let text = r#"
rule x {
    evidence e0: Name type "Nobel laureates in Chemistry" sim =;
    positive p: City type "city" sim =;
    negative n: Country type "country" sim =;
    edge e0 -[worksAt]-> p;
    edge e0 -[wasBornIn]-> n;
}
"#;
        let e = parse_rules(text, &schema, &kb).unwrap_err();
        assert!(e.message.contains("invalid rule"), "{e}");
    }

    #[test]
    fn parser_never_panics_on_junk() {
        use proptest::test_runner::{Config, TestRunner};
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let mut runner = TestRunner::new(Config::with_cases(256));
        runner
            .run(&"\\PC{0,120}", |text| {
                // Must return an error or rules, never panic.
                let _ = parse_rules(&text, &schema, &kb);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn multiple_rules_in_one_file() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let rules = figure4_rules(&kb);
        let text = rules_to_text(&rules, &schema, &kb);
        let back = parse_rules(&text, &schema, &kb).unwrap();
        assert_eq!(back.len(), 4);
    }
}
