//! Running-example fixtures from the paper: the Nobel schema (Table I) and
//! the four detective rules of Figure 4.
//!
//! These are exported (not test-only) so integration tests, examples, and
//! benches can all exercise the exact scenario the paper walks through.

use crate::graph::schema::NodeType;
use crate::rule::{DetectiveRule, RuleEdge, RuleNodeRef};
use dr_kb::fixtures::names;
use dr_relation::{Relation, Schema};
use std::sync::Arc;

/// The `Nobel(Name, DOB, Country, Prize, Institution, City)` schema.
pub fn nobel_schema() -> Arc<Schema> {
    Schema::new(
        "Nobel",
        &["Name", "DOB", "Country", "Prize", "Institution", "City"],
    )
}

/// Table I as published: four tuples with their highlighted errors.
pub fn table1_dirty() -> Relation {
    let mut r = Relation::new(nobel_schema());
    r.push_strs(&[
        "Avram Hershko",
        "1937-12-31",
        "Israel",
        "Albert Lasker Award for Medicine",
        "Israel Institute of Technology",
        "Karcag",
    ]);
    r.push_strs(&[
        "Marie Curie",
        "1867-11-07",
        "France",
        "Nobel Prize in Chemistry",
        "Paster Institute",
        "Paris",
    ]);
    r.push_strs(&[
        "Roald Hoffmann",
        "1937-07-18",
        "Ukraine",
        "National Medal of Science",
        "Cornell University",
        "Ithaca",
    ]);
    r.push_strs(&[
        "Melvin Calvin",
        "1911-04-08",
        "United States",
        "Nobel Prize in Chemistry",
        "University of Minnesota",
        "St. Paul",
    ]);
    r
}

/// Table I with the bracketed corrections applied (Calvin repaired to the
/// UC Berkeley variant, as in the table).
pub fn table1_clean() -> Relation {
    let mut r = Relation::new(nobel_schema());
    r.push_strs(&[
        "Avram Hershko",
        "1937-12-31",
        "Israel",
        "Nobel Prize in Chemistry",
        "Israel Institute of Technology",
        "Haifa",
    ]);
    r.push_strs(&[
        "Marie Curie",
        "1867-11-07",
        "France",
        "Nobel Prize in Chemistry",
        "Pasteur Institute",
        "Paris",
    ]);
    r.push_strs(&[
        "Roald Hoffmann",
        "1937-07-18",
        "United States",
        "Nobel Prize in Chemistry",
        "Cornell University",
        "Ithaca",
    ]);
    r.push_strs(&[
        "Melvin Calvin",
        "1911-04-08",
        "United States",
        "Nobel Prize in Chemistry",
        "UC Berkeley",
        "Berkeley",
    ]);
    r
}

/// The four detective rules of Figure 4 instantiated against `kb`
/// (typically [`dr_kb::fixtures::nobel_mini_kb`]).
///
/// * `phi1` — Institution: worksAt (positive) vs graduatedFrom (negative);
/// * `phi2` — City: worksAt∘locatedIn (positive) vs wasBornIn (negative);
/// * `phi3` — Country: isCitizenOf + city-locatedIn (positive) vs bornAt
///   (negative);
/// * `phi4` — Prize: wonPrize→Chemistry awards (positive) vs
///   wonPrize→American awards (negative).
pub fn figure4_rules<'a>(kb: impl Into<dr_kb::KbRef<'a>>) -> Vec<DetectiveRule> {
    use dr_simmatch::SimFn;
    let kb = kb.into();
    let schema = nobel_schema();
    let class = |n: &str| NodeType::Class(kb.class_named(n).expect("fixture class"));
    let pred = |n: &str| kb.pred_named(n).expect("fixture pred");
    let col = |n: &str| schema.attr_expect(n);
    let node = crate::rule::node;

    let laureate = class(names::LAUREATE);
    let organization = class(names::ORGANIZATION);
    let city = class(names::CITY);
    let country = class(names::COUNTRY);
    let chem_awards = class(names::CHEM_AWARDS);
    let us_awards = class(names::US_AWARDS);

    let name_node = node(col("Name"), laureate, SimFn::Equal);
    let inst_node = node(col("Institution"), organization, SimFn::EditDistance(2));

    use RuleNodeRef::{Evidence, Negative, Positive};
    let edge = |from, rel, to| RuleEdge { from, to, rel };

    // ϕ1: x1 = Name, x2 = DOB; p1/n1 = Institution.
    let phi1 = DetectiveRule::new(
        "phi1",
        vec![name_node, node(col("DOB"), NodeType::Literal, SimFn::Equal)],
        inst_node,
        inst_node,
        vec![
            edge(Evidence(0), pred(names::BORN_ON_DATE), Evidence(1)),
            edge(Evidence(0), pred(names::WORKS_AT), Positive),
            edge(Evidence(0), pred(names::GRADUATED_FROM), Negative),
        ],
    )
    .expect("phi1 valid");

    // ϕ2: w1 = Name, w2 = Institution; p2/n2 = City.
    let phi2 = DetectiveRule::new(
        "phi2",
        vec![name_node, inst_node],
        node(col("City"), city, SimFn::Equal),
        node(col("City"), city, SimFn::Equal),
        vec![
            edge(Evidence(0), pred(names::WORKS_AT), Evidence(1)),
            edge(Evidence(1), pred(names::LOCATED_IN), Positive),
            edge(Evidence(0), pred(names::BORN_IN), Negative),
        ],
    )
    .expect("phi2 valid");

    // ϕ3: z1 = Name, z2 = Institution, z3 = City; p3/n3 = Country.
    let phi3 = DetectiveRule::new(
        "phi3",
        vec![name_node, inst_node, node(col("City"), city, SimFn::Equal)],
        node(col("Country"), country, SimFn::Equal),
        node(col("Country"), country, SimFn::Equal),
        vec![
            edge(Evidence(0), pred(names::WORKS_AT), Evidence(1)),
            edge(Evidence(1), pred(names::LOCATED_IN), Evidence(2)),
            edge(Evidence(0), pred(names::CITIZEN_OF), Positive),
            edge(Evidence(2), pred(names::LOCATED_IN), Positive),
            edge(Evidence(0), pred(names::BORN_AT), Negative),
        ],
    )
    .expect("phi3 valid");

    // ϕ4: v1 = Name; p4 = Prize (Chemistry awards), n4 = Prize (American
    // awards).
    let phi4 = DetectiveRule::new(
        "phi4",
        vec![name_node],
        node(col("Prize"), chem_awards, SimFn::Equal),
        node(col("Prize"), us_awards, SimFn::Equal),
        vec![
            edge(Evidence(0), pred(names::WON_PRIZE), Positive),
            edge(Evidence(0), pred(names::WON_PRIZE), Negative),
        ],
    )
    .expect("phi4 valid");

    vec![phi1, phi2, phi3, phi4]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_kb::fixtures::nobel_mini_kb;
    use dr_relation::GroundTruth;

    #[test]
    fn table1_shapes_agree() {
        let dirty = table1_dirty();
        let clean = table1_clean();
        assert_eq!(dirty.len(), 4);
        assert_eq!(clean.len(), 4);
        let gt = GroundTruth::new(clean);
        // Errors: r1.Prize, r1.City, r2.Institution, r3.Country, r3.Prize,
        // r4.Institution, r4.City = 7 cells.
        assert_eq!(gt.error_count(&dirty), 7);
    }

    #[test]
    fn rules_cover_four_columns() {
        let kb = nobel_mini_kb();
        let schema = nobel_schema();
        let cols: Vec<&str> = figure4_rules(&kb)
            .iter()
            .map(|r| schema.attr_name(r.repair_col()))
            .collect();
        assert_eq!(cols, vec!["Institution", "City", "Country", "Prize"]);
    }
}
