//! Shared matching context: a KB plus lazily built, memoized value indexes.
//!
//! Rule nodes repeatedly ask "which KB nodes of type `T` match this cell
//! under `sim`?". A [`MatchContext`] owns one [`MatchIndex`] per `(type,
//! sim)` pair, built on first use and shared across rules, tuples, and
//! threads — the "efficient instance matching" machinery of §IV-B(2).

use crate::graph::schema::NodeType;
use crate::repair::budget::RepairBudget;
use crate::repair::registry::CacheRegistry;
use crate::repair::value_cache::ValueCache;
use dr_kb::{FxHashMap, InstanceId, KbFootprint, KbRef, LiteralId, Node, PredId};
use dr_obs::{Obs, SpanCtx};
use dr_simmatch::{MatchIndex, SimFn};
use parking_lot::Mutex;
use std::borrow::Cow;
use std::sync::Arc;

/// Accumulates the KB regions a repair *reads* — the read-side twin of the
/// write-side [`KbFootprint`] a [`dr_kb::KbDelta`] produces. Repairers fork
/// their context with a recorder per tuple; every KB read routed through the
/// context (candidate lookups, type checks, edge probes) lands in it, and the
/// resulting per-row footprint is what selective re-repair intersects with a
/// delta's footprint to decide which rows must be re-run.
///
/// Interior-mutable so one recorder can be shared through an immutable
/// context; recording is a short lock around small hash-set inserts.
#[derive(Debug, Default)]
pub struct FootprintRecorder {
    fp: Mutex<KbFootprint>,
}

impl FootprintRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a dependency on the extent/labels of class `c`.
    pub fn record_class(&self, c: dr_kb::ClassId) {
        self.fp.lock().classes.insert(c);
    }

    /// Records a dependency on the literal pool.
    pub fn record_literals(&self) {
        self.fp.lock().literals = true;
    }

    /// Records a dependency on the outgoing edges `(s, rel, *)`.
    pub fn record_out_pair(&self, s: InstanceId, rel: PredId) {
        self.fp.lock().out_pairs.insert((s, rel));
    }

    /// Records a dependency on the incoming edges `(*, rel, o)`.
    pub fn record_in_pair(&self, o: Node, rel: PredId) {
        self.fp.lock().in_pairs.insert((o, rel));
    }

    /// Records a dependency on a schema-node type (class extent or literals).
    pub fn record_ty(&self, ty: NodeType) {
        match ty {
            NodeType::Class(c) => self.record_class(c),
            NodeType::Literal => self.record_literals(),
        }
    }

    /// Drains the accumulated footprint, leaving the recorder empty.
    pub fn take(&self) -> KbFootprint {
        std::mem::take(&mut *self.fp.lock())
    }

    /// A copy of the accumulated footprint without draining it.
    pub fn snapshot(&self) -> KbFootprint {
        self.fp.lock().clone()
    }
}

/// An owned, shareable handle to a context's `(type, sim) → index` memo.
///
/// The serving layer holds one `IndexMemo` per loaded KB *generation* and
/// rebuilds [`MatchContext`]s around it per request; applying a
/// [`dr_kb::KbDelta`] swaps in a fresh memo, which is how index staleness is
/// ruled out by construction — indexes derived from generation N can never be
/// consulted by a context over generation N+1.
#[derive(Clone, Default)]
pub struct IndexMemo(SharedIndexMap);

impl IndexMemo {
    /// A fresh, empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `(type, sim)` indexes built so far.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// Whether no index has been built yet.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }
}

/// A knowledge base with memoized per-(type, sim) match indexes, and
/// optionally a [`CacheRegistry`] handing out persistent, schema-keyed
/// [`ValueCache`]s so repairs of consecutive same-schema relations
/// warm-start.
///
/// The index memo sits behind an `Arc`, so [`Self::fork`] can hand out
/// cheap per-request contexts that share one memo (and registry and obs
/// handle) while carrying their own [`RepairBudget`] — the serving layer
/// builds one long-lived context per KB and forks it per request.
pub struct MatchContext<'kb> {
    kb: KbRef<'kb>,
    indexes: SharedIndexMap,
    registry: Option<Arc<CacheRegistry>>,
    budget: RepairBudget,
    obs: Option<Arc<Obs>>,
    recorder: Option<Arc<FootprintRecorder>>,
    span: Option<SpanCtx>,
}

/// The fork-shared `(type, sim) → index` memo.
type SharedIndexMap = Arc<Mutex<FxHashMap<(NodeType, SimFn), Arc<MatchIndex>>>>;

/// Contexts are shared by reference across scheduler worker threads and by
/// value across serving threads; both require `Send + Sync`, so regressing
/// either is a compile error here rather than a trait-bound error at a
/// distant spawn site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MatchContext<'static>>();
};

impl<'kb> MatchContext<'kb> {
    /// Wraps either KB backend (`&KnowledgeBase`, `&MappedKb`, or an
    /// existing [`KbRef`]).
    pub fn new(kb: impl Into<KbRef<'kb>>) -> Self {
        Self {
            kb: kb.into(),
            indexes: Arc::new(Mutex::new(FxHashMap::default())),
            registry: None,
            budget: RepairBudget::default(),
            obs: None,
            recorder: None,
            span: None,
        }
    }

    /// Wraps a KB and attaches a persistent cache registry: repairers
    /// running through this context draw their relation-scoped
    /// [`ValueCache`] from the registry instead of starting cold.
    pub fn with_registry(kb: impl Into<KbRef<'kb>>, registry: Arc<CacheRegistry>) -> Self {
        Self {
            kb: kb.into(),
            indexes: Arc::new(Mutex::new(FxHashMap::default())),
            registry: Some(registry),
            budget: RepairBudget::default(),
            obs: None,
            recorder: None,
            span: None,
        }
    }

    /// Wraps a KB around an externally owned [`IndexMemo`] (and optional
    /// registry). This is the serving-layer constructor: the caller keeps
    /// the memo alive across requests and discards it when the KB
    /// generation changes.
    pub fn with_memo(
        kb: impl Into<KbRef<'kb>>,
        memo: &IndexMemo,
        registry: Option<Arc<CacheRegistry>>,
    ) -> Self {
        Self {
            kb: kb.into(),
            indexes: Arc::clone(&memo.0),
            registry,
            budget: RepairBudget::default(),
            obs: None,
            recorder: None,
            span: None,
        }
    }

    /// A per-request view of this context: shares the KB, the memoized
    /// index map (an index built through any fork is visible to all), the
    /// registry, and the obs handle, but owns its budget — callers chain
    /// [`Self::with_budget`] to give one request a deadline without
    /// touching the long-lived parent.
    pub fn fork(&self) -> MatchContext<'kb> {
        Self {
            kb: self.kb,
            indexes: Arc::clone(&self.indexes),
            registry: self.registry.clone(),
            budget: self.budget,
            obs: self.obs.clone(),
            recorder: self.recorder.clone(),
            span: self.span.clone(),
        }
    }

    /// Attaches a live span context (builder style): phases and repairers
    /// running through this context open their spans as children of it.
    /// Unlike the JSONL tracer this surface carries real durations; it is
    /// absent (and free) unless the serving layer armed the request.
    pub fn with_span(mut self, span: SpanCtx) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches an optional span context — convenience for plumbing
    /// `Option<SpanCtx>` through forks.
    pub fn with_span_opt(mut self, span: Option<SpanCtx>) -> Self {
        self.span = span;
        self
    }

    /// The attached live span context, if the request is being traced.
    pub fn span(&self) -> Option<&SpanCtx> {
        self.span.as_ref()
    }

    /// Attaches a [`FootprintRecorder`] (builder style): every KB read made
    /// through this context (and its forks) is accumulated into it. Repairers
    /// fork with a fresh recorder per tuple to capture per-row footprints.
    pub fn with_recorder(mut self, recorder: Arc<FootprintRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached footprint recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<FootprintRecorder>> {
        self.recorder.as_ref()
    }

    /// Sets the per-tuple [`RepairBudget`] every repairer running through
    /// this context starts its tuples with (builder style). The default is
    /// unbounded.
    pub fn with_budget(mut self, budget: RepairBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches an observability handle (builder style): repairers running
    /// through this context record metrics into `obs.metrics()` and, when
    /// `obs.tracer()` is set, emit sampled JSONL repair traces. Cache and
    /// registry counters register their own cells as caches are handed
    /// out, so the metric store and the report stats read the same storage.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches an optional observability handle — convenience for
    /// plumbing `Option<Arc<Obs>>` config fields through builders.
    pub fn with_obs_opt(mut self, obs: Option<Arc<Obs>>) -> Self {
        self.obs = obs;
        self
    }

    /// The attached observability handle, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// The per-tuple repair budget (unbounded unless configured via
    /// [`Self::with_budget`]).
    pub fn budget(&self) -> &RepairBudget {
        &self.budget
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&Arc<CacheRegistry>> {
        self.registry.as_ref()
    }

    /// The shared value cache a relation repair over `schema` should use:
    /// the registry's warm, persistent cache when one is attached, or a
    /// fresh relation-lifetime cache otherwise.
    pub fn value_cache_for(&self, schema: &dr_relation::Schema) -> Arc<ValueCache> {
        let cache = match &self.registry {
            Some(registry) => {
                if let Some(obs) = &self.obs {
                    registry.register_metrics(obs.metrics());
                }
                registry.cache_for(self.kb, schema)
            }
            None => Arc::new(ValueCache::new()),
        };
        // Registration is idempotent per cell, so handing out the same
        // warm cache repeatedly only attaches it once.
        if let Some(obs) = &self.obs {
            cache.register_metrics(obs.metrics());
        }
        cache
    }

    /// The underlying KB, as a backend-agnostic [`KbRef`].
    pub fn kb(&self) -> KbRef<'kb> {
        self.kb
    }

    /// The memoized index for `(ty, sim)`, building it on first use.
    pub fn index_for(&self, ty: NodeType, sim: SimFn) -> Arc<MatchIndex> {
        if let Some(idx) = self.indexes.lock().get(&(ty, sim)) {
            return Arc::clone(idx);
        }
        // Build outside the lock: index construction can be slow and other
        // (ty, sim) lookups shouldn't wait on it. A racing builder wastes
        // work but stays correct; first insert wins.
        let built = {
            let mut span = self.span.as_ref().map(|s| s.child("index_build"));
            let built = Arc::new(self.build_index(ty, sim));
            if let Some(span) = span.as_mut() {
                span.attr_static(
                    "kind",
                    match ty {
                        NodeType::Class(_) => "class",
                        NodeType::Literal => "literal",
                    },
                );
                span.attr_num("entries", built.len() as u64);
            }
            built
        };
        let mut guard = self.indexes.lock();
        Arc::clone(guard.entry((ty, sim)).or_insert(built))
    }

    fn build_index(&self, ty: NodeType, sim: SimFn) -> MatchIndex {
        match ty {
            NodeType::Class(c) => {
                let instances = self.kb.instances_of(c);
                MatchIndex::build(
                    sim,
                    instances
                        .iter()
                        .map(|&i| (i.index() as u32, self.kb.instance_label(i))),
                )
            }
            NodeType::Literal => MatchIndex::build(
                sim,
                (0..self.kb.num_literals())
                    .map(|i| (i as u32, self.kb.literal_value(LiteralId::from_index(i)))),
            ),
        }
    }

    /// All KB nodes of type `ty` whose value matches `value` under `sim`.
    pub fn candidates(&self, ty: NodeType, sim: SimFn, value: &str) -> Vec<Node> {
        if let Some(rec) = &self.recorder {
            rec.record_ty(ty);
        }
        let index = self.index_for(ty, sim);
        let hits = index.lookup(value);
        match ty {
            NodeType::Class(_) => hits
                .into_iter()
                .map(|id| Node::Instance(InstanceId::from_index(id as usize)))
                .collect(),
            NodeType::Literal => hits
                .into_iter()
                .map(|id| Node::Literal(LiteralId::from_index(id as usize)))
                .collect(),
        }
    }

    /// Whether `node` has the required type.
    pub fn type_ok(&self, node: Node, ty: NodeType) -> bool {
        if let Some(rec) = &self.recorder {
            rec.record_ty(ty);
        }
        match (ty, node) {
            (NodeType::Class(c), Node::Instance(i)) => self.kb.has_type(i, c),
            (NodeType::Literal, Node::Literal(_)) => true,
            _ => false,
        }
    }

    /// Whether `node` satisfies both the type and the value constraint.
    pub fn node_matches(&self, node: Node, ty: NodeType, sim: SimFn, value: &str) -> bool {
        self.type_ok(node, ty) && sim.matches(value, self.kb.node_value(node))
    }

    /// Whether the KB contains the edge `(s, rel, o)`, recording the read
    /// as an out-pair dependency on `(s, rel)`.
    pub fn kb_has_edge(&self, s: InstanceId, rel: PredId, o: Node) -> bool {
        if let Some(rec) = &self.recorder {
            rec.record_out_pair(s, rel);
        }
        self.kb.has_edge(s, rel, o)
    }

    /// The objects of `(s, rel, *)`, recording the read as an out-pair
    /// dependency on `(s, rel)`.
    pub fn kb_objects(&self, s: InstanceId, rel: PredId) -> Cow<'kb, [Node]> {
        if let Some(rec) = &self.recorder {
            rec.record_out_pair(s, rel);
        }
        self.kb.objects(s, rel)
    }

    /// The subjects of `(*, rel, o)`, recording the read as an in-pair
    /// dependency on `(o, rel)`.
    pub fn kb_subjects(&self, o: Node, rel: PredId) -> Cow<'kb, [InstanceId]> {
        if let Some(rec) = &self.recorder {
            rec.record_in_pair(o, rel);
        }
        self.kb.subjects(o, rel)
    }

    /// Every KB node of type `ty` (the unfiltered extent) — the fallback
    /// candidate set for unconstrained pattern nodes.
    pub fn extent(&self, ty: NodeType) -> Vec<Node> {
        if let Some(rec) = &self.recorder {
            rec.record_ty(ty);
        }
        match ty {
            NodeType::Class(c) => self
                .kb
                .instances_of(c)
                .iter()
                .map(|&i| Node::Instance(i))
                .collect(),
            NodeType::Literal => (0..self.kb.num_literals())
                .map(|i| Node::Literal(LiteralId::from_index(i)))
                .collect(),
        }
    }

    /// Number of indexes built so far (diagnostics).
    pub fn index_count(&self) -> usize {
        self.indexes.lock().len()
    }

    /// Builds every `(type, sim)` index the rule set can ask for, up front.
    ///
    /// Rule application touches indexes for each rule node's `(ty, sim)`
    /// pair and, for fuzzily matched nodes, the exact `(ty, =)` index (the
    /// normalization guard checks whether a cell names a real entity
    /// exactly). Free pattern nodes (the positive node during proof
    /// negative, auxiliary nodes) match through KB adjacency, not indexes.
    /// Calling this before fanning out to worker threads means no worker
    /// stalls on (or duplicates) an index build mid-repair.
    pub fn prewarm(&self, rules: &[crate::rule::DetectiveRule]) {
        for rule in rules {
            for node in rule
                .evidence()
                .iter()
                .chain([rule.positive(), rule.negative()])
            {
                let _ = self.index_for(node.ty, node.sim);
                if !node.sim.is_exact() {
                    let _ = self.index_for(node.ty, SimFn::Equal);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_kb::fixtures::{figure1_kb, names};

    #[test]
    fn candidates_by_exact_match() {
        let kb = figure1_kb();
        let ctx = MatchContext::new(&kb);
        let city = NodeType::Class(kb.class_named(names::CITY).unwrap());
        let hits = ctx.candidates(city, SimFn::Equal, "Haifa");
        assert_eq!(hits.len(), 1);
        assert_eq!(kb.node_value(hits[0]), "Haifa");
        assert!(ctx.candidates(city, SimFn::Equal, "Tel Aviv").is_empty());
    }

    #[test]
    fn candidates_by_edit_distance() {
        let kb = figure1_kb();
        let ctx = MatchContext::new(&kb);
        let org = NodeType::Class(kb.class_named(names::ORGANIZATION).unwrap());
        let hits = ctx.candidates(org, SimFn::EditDistance(2), "Israel Institute of Technolgy");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn literal_candidates() {
        let kb = figure1_kb();
        let ctx = MatchContext::new(&kb);
        let hits = ctx.candidates(NodeType::Literal, SimFn::Equal, "1937-12-31");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].is_literal());
    }

    #[test]
    fn indexes_are_memoized() {
        let kb = figure1_kb();
        let ctx = MatchContext::new(&kb);
        let city = NodeType::Class(kb.class_named(names::CITY).unwrap());
        let a = ctx.index_for(city, SimFn::Equal);
        let b = ctx.index_for(city, SimFn::Equal);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.index_count(), 1);
        let _ = ctx.index_for(city, SimFn::EditDistance(1));
        assert_eq!(ctx.index_count(), 2);
    }

    #[test]
    fn type_ok_respects_kinds() {
        let kb = figure1_kb();
        let ctx = MatchContext::new(&kb);
        let city = NodeType::Class(kb.class_named(names::CITY).unwrap());
        let country = NodeType::Class(kb.class_named(names::COUNTRY).unwrap());
        let haifa = Node::Instance(kb.instances_labeled("Haifa")[0]);
        assert!(ctx.type_ok(haifa, city));
        assert!(!ctx.type_ok(haifa, country));
        assert!(!ctx.type_ok(haifa, NodeType::Literal));
        let lit = Node::Literal(kb.literal_with_value("1937-12-31").unwrap());
        assert!(ctx.type_ok(lit, NodeType::Literal));
        assert!(!ctx.type_ok(lit, city));
    }

    #[test]
    fn value_cache_comes_from_registry_when_attached() {
        let kb = figure1_kb();
        let schema = dr_relation::Schema::new("R", &["X"]);
        let registry = Arc::new(crate::repair::registry::CacheRegistry::default());
        let ctx = MatchContext::with_registry(&kb, Arc::clone(&registry));
        let a = ctx.value_cache_for(&schema);
        let b = ctx.value_cache_for(&schema);
        assert!(Arc::ptr_eq(&a, &b), "registry hands back the warm cache");
        assert!(ctx.registry().is_some());
        assert_eq!(registry.stats().warm_hits, 1);

        let plain = MatchContext::new(&kb);
        let c = plain.value_cache_for(&schema);
        let d = plain.value_cache_for(&schema);
        assert!(!Arc::ptr_eq(&c, &d), "no registry: fresh cache per ask");
        assert!(plain.registry().is_none());
    }

    #[test]
    fn forks_share_indexes_but_own_budgets() {
        let kb = figure1_kb();
        let registry = Arc::new(crate::repair::registry::CacheRegistry::default());
        let ctx = MatchContext::with_registry(&kb, Arc::clone(&registry));
        let city = NodeType::Class(kb.class_named(names::CITY).unwrap());

        let fork = ctx
            .fork()
            .with_budget(crate::repair::budget::RepairBudget::with_max_steps(5));
        // An index built through the fork is visible to the parent (and
        // vice versa): one memo, not a copy.
        let a = fork.index_for(city, SimFn::Equal);
        let b = ctx.index_for(city, SimFn::Equal);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.index_count(), 1);

        // Budgets stay per-fork.
        assert!(ctx.budget().is_unbounded());
        assert!(!fork.budget().is_unbounded());

        // The registry rides along, so forks draw the same warm cache.
        let schema = dr_relation::Schema::new("R", &["X"]);
        let c = ctx.value_cache_for(&schema);
        let d = fork.value_cache_for(&schema);
        assert!(Arc::ptr_eq(&c, &d));
    }

    #[test]
    fn extent_enumerates_type() {
        let kb = figure1_kb();
        let ctx = MatchContext::new(&kb);
        let city = NodeType::Class(kb.class_named(names::CITY).unwrap());
        assert_eq!(ctx.extent(city).len(), 2);
        assert_eq!(ctx.extent(NodeType::Literal).len(), 1);
    }
}
