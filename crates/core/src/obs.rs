//! Bridges between the repair pipeline and the `dr-obs` observability
//! layer (DESIGN.md §4d).
//!
//! Everything here is gated on the context carrying an
//! [`Obs`](dr_obs::Obs) handle: metric recording happens once per relation
//! from the same values the [`RelationReport`] carries (so the Prometheus
//! totals and the report columns cannot drift), and trace events are
//! derived from the per-tuple [`TupleReport`]s plus the per-tuple
//! [`ElementCacheStats`], never from a second bookkeeping path.
//!
//! ## Trace event schema
//!
//! One JSON object per line, no wall-clock fields (traces are reproducible
//! byte-for-byte under a fixed seed and sampling rate):
//!
//! | event            | fields                                                  |
//! |------------------|---------------------------------------------------------|
//! | `relation_start` | `algo`, `rows`, `rules`                                 |
//! | `phase_enter`    | `phase` (`prewarm` \| `repair`)                         |
//! | `phase_exit`     | `phase`                                                 |
//! | `tuple_start`    | `row`                                                   |
//! | `rule`           | `row`, `rule` (index), `name`, `outcome`                |
//! | `cache`          | `row`, `local_hits`, `local_misses`, `shared_hits`, `shared_misses` |
//! | `outcome`        | `row`, `outcome`, `steps`; degraded adds `budget_steps`, `cause`; failed adds `message` |
//! | `retry`          | `row`                                                   |
//! | `relation_end`   | `rows`                                                  |
//!
//! Per-tuple events (`tuple_start` through `outcome`, and `retry`) are
//! emitted only for rows the deterministic sampler keeps and are flushed
//! as one contiguous block per tuple; relation-level events are always
//! emitted.

use crate::repair::basic::RelationReport;
use crate::repair::basic::TupleReport;
use crate::repair::budget::ExhaustCause;
use crate::repair::cache::ElementCacheStats;
use crate::repair::resilience::TupleOutcome;
use crate::rule::apply::RuleApplication;
use dr_kb::FxHashMap;
use dr_obs::{JsonObj, Obs, SpanBuf, Tracer};

/// Row-span floor for *speculative* live captures (DESIGN.md §11): an
/// unforced capture records a row span only when the row ran at least
/// this long. Fast rows cost two clock reads and a branch — which is what
/// keeps the armed-but-unretained path inside the `exp_trace_overhead`
/// budget — while the rows that explain a slow- or error-retained trace
/// are far above this floor. Forced captures record every row.
pub(crate) const SPECULATIVE_ROW_FLOOR: std::time::Duration = std::time::Duration::from_micros(100);

/// Stable label for what a rule application did. Shared with the live
/// span surface, so the JSONL `rule.outcome` field and a rule span's
/// `result` attribute can never disagree.
pub(crate) fn application_kind(application: &RuleApplication) -> &'static str {
    match application {
        RuleApplication::Repaired { .. } => "repaired",
        RuleApplication::ProofPositive { .. } => "proof_positive",
        RuleApplication::DetectedWrong { .. } => "detected_wrong",
        RuleApplication::NotApplicable => "not_applicable",
    }
}

/// Stable label for a tuple's terminal outcome. Shared between the JSONL
/// `outcome` event and the live row span's `outcome` attribute.
pub(crate) fn outcome_label(outcome: &TupleOutcome) -> &'static str {
    match outcome {
        TupleOutcome::Completed => "completed",
        TupleOutcome::Degraded { .. } => "degraded",
        TupleOutcome::Failed { .. } => "failed",
    }
}

/// Stable label for a budget-exhaustion cause.
fn cause_label(cause: ExhaustCause) -> &'static str {
    match cause {
        ExhaustCause::StepCap => "step_cap",
        ExhaustCause::Deadline => "deadline",
        ExhaustCause::Forced => "forced",
    }
}

/// Records a finished relation repair into the metric registry. Called
/// once at the end of each relation-level entry point (basic / fast /
/// parallel), after [`RelationReport::tally_resilience`], so every counter
/// advance mirrors exactly what the report carries.
pub(crate) fn record_relation(obs: &Obs, algo: &str, report: &RelationReport) {
    let m = obs.metrics();
    let (mut completed, mut degraded, mut failed) = (0u64, 0u64, 0u64);
    let mut per_rule: FxHashMap<&str, u64> = FxHashMap::default();
    let exhaustion = m.histogram("budget_exhaustion_steps", &[]);
    for tuple in &report.tuples {
        match &tuple.outcome {
            TupleOutcome::Completed => completed += 1,
            TupleOutcome::Degraded { reason } => {
                degraded += 1;
                exhaustion.record_nanos(reason.steps);
            }
            TupleOutcome::Failed { .. } => failed += 1,
        }
        for step in &tuple.steps {
            *per_rule.entry(step.rule_name.as_str()).or_default() += 1;
        }
    }
    for (outcome, n) in [
        ("completed", completed),
        ("degraded", degraded),
        ("failed", failed),
    ] {
        if n > 0 {
            m.counter(
                "repair_tuples_total",
                &[("algo", algo), ("outcome", outcome)],
            )
            .add(n);
        }
    }
    for (rule, n) in per_rule {
        m.counter("repair_rules_applied_total", &[("rule", rule)])
            .add(n);
    }
    if report.resilience.retried > 0 {
        m.counter("repair_retries_total", &[])
            .add(report.resilience.retried as u64);
    }
    if report.resilience.quarantined > 0 {
        m.counter("repair_quarantined_total", &[])
            .add(report.resilience.quarantined as u64);
    }
    m.counter("repair_phase_seconds", &[("phase", "prewarm")])
        .add(duration_nanos(report.timing.prewarm));
    m.counter("repair_phase_seconds", &[("phase", "repair")])
        .add(duration_nanos(report.timing.repair));
    m.counter("repair_relations_total", &[("algo", algo)]).inc();
}

fn duration_nanos(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Emits the `relation_start` event.
pub(crate) fn trace_relation_start(tracer: &Tracer, algo: &str, rows: usize, rules: usize) {
    tracer.emit(
        JsonObj::new()
            .str("ev", "relation_start")
            .str("algo", algo)
            .num("rows", rows as u64)
            .num("rules", rules as u64)
            .finish(),
    );
}

/// Emits a `phase_enter` or `phase_exit` event.
pub(crate) fn trace_phase(tracer: &Tracer, phase: &str, enter: bool) {
    let ev = if enter { "phase_enter" } else { "phase_exit" };
    tracer.emit(JsonObj::new().str("ev", ev).str("phase", phase).finish());
}

/// Emits the `relation_end` event.
pub(crate) fn trace_relation_end(tracer: &Tracer, rows: usize) {
    tracer.emit(
        JsonObj::new()
            .str("ev", "relation_end")
            .num("rows", rows as u64)
            .finish(),
    );
}

/// Emits a `retry` event for `row` if sampled.
pub(crate) fn trace_retry(tracer: &Tracer, row: usize) {
    if tracer.sampled(row as u64) {
        tracer.emit(
            JsonObj::new()
                .str("ev", "retry")
                .num("row", row as u64)
                .finish(),
        );
    }
}

/// Emits the full span for one repaired tuple if sampled: `tuple_start`,
/// one `rule` event per applied rule, a `cache` event when the per-tuple
/// cache stats are available, and the terminal `outcome` event. The span
/// is flushed as one contiguous block, so concurrent workers never
/// interleave within it. Takes the whole [`Obs`] handle so lines dropped
/// by the [`SpanBuf`] byte budget land in
/// `trace_dropped_spans_total{surface="jsonl"}`.
pub(crate) fn trace_tuple(
    obs: &Obs,
    row: usize,
    report: &TupleReport,
    cache: Option<ElementCacheStats>,
) {
    let Some(tracer) = obs.tracer() else { return };
    let row64 = row as u64;
    if !tracer.sampled(row64) {
        return;
    }
    let mut span = SpanBuf::new();
    span.push(
        JsonObj::new()
            .str("ev", "tuple_start")
            .num("row", row64)
            .finish(),
    );
    for step in &report.steps {
        span.push(
            JsonObj::new()
                .str("ev", "rule")
                .num("row", row64)
                .num("rule", step.rule_index as u64)
                .str("name", &step.rule_name)
                .str("outcome", application_kind(&step.application))
                .finish(),
        );
    }
    if let Some(stats) = cache {
        span.push(
            JsonObj::new()
                .str("ev", "cache")
                .num("row", row64)
                .num("local_hits", stats.local_hits as u64)
                .num("local_misses", stats.local_misses as u64)
                .num("shared_hits", stats.shared_hits as u64)
                .num("shared_misses", stats.shared_misses as u64)
                .finish(),
        );
    }
    let outcome = JsonObj::new()
        .str("ev", "outcome")
        .num("row", row64)
        .str("outcome", outcome_label(&report.outcome))
        .num("steps", report.steps.len() as u64);
    let outcome = match &report.outcome {
        TupleOutcome::Completed => outcome,
        TupleOutcome::Degraded { reason } => outcome
            .num("budget_steps", reason.steps)
            .str("cause", cause_label(reason.cause)),
        TupleOutcome::Failed { message } => outcome.str("message", message),
    };
    span.push(outcome.finish());
    if span.dropped() > 0 {
        obs.metrics()
            .counter("trace_dropped_spans_total", &[("surface", "jsonl")])
            .add(span.dropped() as u64);
    }
    tracer.flush_span(span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::basic::RepairStep;
    use crate::repair::budget::BudgetExhaustion;
    use dr_obs::{memory_tracer, Sampler};

    fn lines(buf: &std::sync::Arc<parking_lot::Mutex<Vec<u8>>>) -> Vec<String> {
        String::from_utf8(buf.lock().clone())
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn record_relation_mirrors_the_report() {
        let obs = Obs::new();
        let report = RelationReport {
            tuples: vec![
                TupleReport::default(),
                TupleReport {
                    outcome: TupleOutcome::Degraded {
                        reason: BudgetExhaustion {
                            steps: 24,
                            cause: ExhaustCause::StepCap,
                        },
                    },
                    steps: vec![RepairStep {
                        rule_index: 0,
                        rule_name: "r1".into(),
                        application: RuleApplication::ProofPositive {
                            newly_marked: vec![],
                            normalized: vec![],
                        },
                    }],
                },
            ],
            ..Default::default()
        };
        record_relation(&obs, "fast", &report);
        let snap = obs.metrics().snapshot();
        assert_eq!(
            snap.counter("repair_tuples_total", "algo=\"fast\",outcome=\"completed\""),
            Some(1)
        );
        assert_eq!(
            snap.counter("repair_tuples_total", "algo=\"fast\",outcome=\"degraded\""),
            Some(1)
        );
        assert_eq!(
            snap.counter("repair_rules_applied_total", "rule=\"r1\""),
            Some(1)
        );
        assert_eq!(snap.counter_total("repair_tuples_total"), 2);
    }

    #[test]
    fn unsampled_rows_emit_nothing() {
        let (tracer, buf) = memory_tracer(Sampler::new(3, 0.0));
        let obs = Obs::with_tracer(tracer);
        trace_tuple(&obs, 7, &TupleReport::default(), None);
        trace_retry(obs.tracer().unwrap(), 7);
        assert!(lines(&buf).is_empty());
    }

    #[test]
    fn tuple_span_follows_the_documented_sequence() {
        let (tracer, buf) = memory_tracer(Sampler::new(0, 1.0));
        let obs = Obs::with_tracer(tracer);
        let report = TupleReport {
            steps: vec![RepairStep {
                rule_index: 2,
                rule_name: "r3".into(),
                application: RuleApplication::DetectedWrong {
                    col: dr_relation::AttrId::from_index(0),
                    newly_marked: vec![],
                },
            }],
            outcome: TupleOutcome::Failed {
                message: "boom".into(),
            },
        };
        trace_tuple(
            &obs,
            5,
            &report,
            Some(ElementCacheStats {
                local_hits: 1,
                local_misses: 2,
                shared_hits: 3,
                shared_misses: 4,
            }),
        );
        let got = lines(&buf);
        assert_eq!(
            got,
            vec![
                r#"{"ev":"tuple_start","row":5}"#,
                r#"{"ev":"rule","row":5,"rule":2,"name":"r3","outcome":"detected_wrong"}"#,
                r#"{"ev":"cache","row":5,"local_hits":1,"local_misses":2,"shared_hits":3,"shared_misses":4}"#,
                r#"{"ev":"outcome","row":5,"outcome":"failed","steps":1,"message":"boom"}"#,
            ]
        );
    }
}
