//! Fault-injection recovery tests (DESIGN.md §4c; `--features
//! fault-injection`): a deterministic [`FaultPlan`] drives the *real*
//! work-stealing scheduler through panics, stragglers, and forced budget
//! exhaustion, and the run must degrade per-row — never per-relation.

#![cfg(feature = "fault-injection")]

use dr_core::fixtures::{figure4_rules, nobel_schema, table1_dirty};
use dr_core::repair::fault::silence_injected_panics;
use dr_core::{
    fast_repair, parallel_repair, ApplyOptions, CacheRegistry, ExhaustCause, Fault, FaultPlan,
    FaultSpec, MatchContext, ParallelOptions, RelationReport, RetryPolicy, TupleOutcome,
};
use dr_relation::Relation;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Table I repeated `copies` times.
fn stacked_table1(copies: usize) -> Relation {
    let base = table1_dirty();
    let mut relation = Relation::new(nobel_schema());
    for _ in 0..copies {
        for t in base.tuples() {
            relation.push(t.clone());
        }
    }
    relation
}

fn faulted_opts(threads: usize, plan: FaultPlan) -> ParallelOptions {
    ParallelOptions {
        threads,
        fault_plan: Some(Arc::new(plan)),
        ..Default::default()
    }
}

/// Row-set of tuples reported `Failed`.
fn failed_rows(report: &RelationReport) -> Vec<usize> {
    report
        .tuples
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.outcome, TupleOutcome::Failed { .. }))
        .map(|(row, _)| row)
        .collect()
}

/// The ISSUE acceptance scenario: a seeded plan panics ~10% of rows at 8
/// threads. The relation completes, exactly the planned rows report
/// `Failed` (payload preserved), every other row is bit-identical to a
/// fault-free run, and the shared `CacheRegistry` still serves warm hits
/// to the next relation.
#[test]
fn seeded_ten_percent_panics_at_eight_threads() {
    silence_injected_panics();
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);

    // Fault-free reference, no registry.
    let free_ctx = MatchContext::new(&kb);
    let mut free = stacked_table1(20); // 80 rows
    let free_report = fast_repair(&free_ctx, &rules, &mut free, &ApplyOptions::default());

    let plan = FaultPlan::seeded(0xDEAD_BEEF, free.len(), FaultSpec::panics(0.10));
    let panicking = plan.panicking_rows();
    assert!(
        (4..=16).contains(&panicking.len()),
        "~10% of 80 rows: {panicking:?}"
    );

    let registry = Arc::new(CacheRegistry::default());
    let ctx = MatchContext::with_registry(&kb, Arc::clone(&registry));
    let pristine = stacked_table1(20);
    let mut faulted = stacked_table1(20);
    let report = parallel_repair(&ctx, &rules, &mut faulted, &faulted_opts(8, plan));

    // The relation completed; exactly the planned rows failed.
    assert_eq!(report.tuples.len(), free.len());
    assert_eq!(failed_rows(&report), panicking);
    assert_eq!(report.resilience.failed, panicking.len());
    assert_eq!(
        report.resilience.retried,
        panicking.len(),
        "every panicked row got its one retry before reporting Failed"
    );
    assert_eq!(report.resilience.degraded, 0);
    for &row in &panicking {
        match &report.tuples[row].outcome {
            TupleOutcome::Failed { message } => {
                assert!(
                    message.contains(&format!("row {row}")),
                    "payload names the row: {message}"
                );
            }
            other => panic!("row {row}: {other:?}"),
        }
    }
    // The fault fires before the tuple is touched: panicked rows are left
    // exactly as loaded.
    for cell in pristine.cell_refs() {
        if panicking.contains(&cell.row) {
            assert_eq!(
                pristine.value(cell),
                faulted.value(cell),
                "panicked row {} left as loaded",
                cell.row
            );
        }
    }
    // All other rows: bit-identical tuples and traces.
    for cell in free.cell_refs() {
        if panicking.contains(&cell.row) {
            continue;
        }
        assert_eq!(free.value(cell), faulted.value(cell), "{cell:?}");
        assert_eq!(
            free.tuple(cell.row).is_positive(cell.attr),
            faulted.tuple(cell.row).is_positive(cell.attr)
        );
    }
    for (row, (a, b)) in free_report.tuples.iter().zip(&report.tuples).enumerate() {
        if !panicking.contains(&row) {
            assert_eq!(a, b, "row {row} trace diverged");
        }
    }

    // The registry survived the panics: the next same-schema relation gets
    // the warm cache and repairs identically to the fault-free reference.
    let before_hits = registry.stats().warm_hits;
    let mut next = stacked_table1(20);
    let next_report = parallel_repair(
        &ctx,
        &rules,
        &mut next,
        &ParallelOptions {
            threads: 8,
            ..Default::default()
        },
    );
    assert!(
        registry.stats().warm_hits > before_hits,
        "registry serves warm hits after a faulted run: {:?}",
        registry.stats()
    );
    assert!(
        next_report.cache.hits() > 0,
        "warm cache actually reused: {:?}",
        next_report.cache
    );
    assert!(next_report.resilience.is_clean());
    for cell in free.cell_refs() {
        assert_eq!(free.value(cell), next.value(cell), "warm run diverged");
    }
}

/// One-shot panics heal: the retry pass re-runs each panicked row once on
/// a fresh worker, so a seeded transient fault ends bit-identical to a
/// fault-free run at every thread count, with the retry count surfaced in
/// the `ResilienceReport` and the run still reading as clean.
#[test]
fn one_shot_panics_heal_on_retry() {
    silence_injected_panics();
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let ctx = MatchContext::new(&kb);

    let mut free = stacked_table1(6); // 24 rows
    let free_report = fast_repair(&ctx, &rules, &mut free, &ApplyOptions::default());

    let seed = 0xFEED_F00D_u64;
    let healing = FaultPlan::seeded(seed, free.len(), FaultSpec::panics_once(0.20)).healing_rows();
    assert!(
        !healing.is_empty(),
        "seed draws at least one one-shot panic"
    );

    for threads in [1usize, 2, 4, 8] {
        // A fresh plan per run: the fired-set is per-plan memory.
        let plan = FaultPlan::seeded(seed, free.len(), FaultSpec::panics_once(0.20));
        assert!(plan.disturbed_rows().is_empty(), "one-shot panics heal");
        let mut healed = stacked_table1(6);
        let report = parallel_repair(&ctx, &rules, &mut healed, &faulted_opts(threads, plan));

        assert!(
            report.tuples.iter().all(|t| t.outcome.is_completed()),
            "{threads} threads: every row completes after its retry"
        );
        assert_eq!(report.resilience.failed, 0, "{threads} threads");
        assert_eq!(
            report.resilience.retried,
            healing.len(),
            "{threads} threads: one retry per first-pass panic"
        );
        assert!(
            report.resilience.is_clean(),
            "retries are advisory: {:?}",
            report.resilience
        );
        assert_eq!(
            free_report.tuples, report.tuples,
            "{threads} threads: traces diverged"
        );
        for cell in free.cell_refs() {
            assert_eq!(free.value(cell), healed.value(cell), "{cell:?}");
        }
    }
}

/// Deterministic double-panics: `Fault::Panic` fires on the retry too, so
/// the row still reports `Failed` (payload preserved, tuple left as
/// loaded) while a `PanicOnce` row in the same run heals — and `retried`
/// counts both.
#[test]
fn double_panics_still_fail_with_retry_count() {
    silence_injected_panics();
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let ctx = MatchContext::new(&kb);

    let plan = FaultPlan::new()
        .with_fault(1, Fault::Panic)
        .with_fault(6, Fault::Panic)
        .with_fault(3, Fault::PanicOnce);
    let pristine = stacked_table1(3); // 12 rows
    let mut relation = stacked_table1(3);
    let report = parallel_repair(&ctx, &rules, &mut relation, &faulted_opts(4, plan));

    assert_eq!(failed_rows(&report), vec![1, 6]);
    assert_eq!(report.resilience.failed, 2);
    assert_eq!(
        report.resilience.retried, 3,
        "all three first-pass panics were retried once"
    );
    assert!(
        report.tuples[3].outcome.is_completed(),
        "the one-shot row healed: {:?}",
        report.tuples[3].outcome
    );
    for row in [1usize, 6] {
        match &report.tuples[row].outcome {
            TupleOutcome::Failed { message } => {
                assert!(message.contains(&format!("row {row}")), "{message}");
            }
            other => panic!("row {row}: {other:?}"),
        }
    }
    for cell in pristine.cell_refs() {
        if [1usize, 6].contains(&cell.row) {
            assert_eq!(
                pristine.value(cell),
                relation.value(cell),
                "double-panicked row {} left as loaded",
                cell.row
            );
        }
    }
}

/// Slow rows are stragglers, not failures: the run completes with every
/// outcome `Completed` and results bit-identical to fault-free.
#[test]
fn slow_rows_complete_identically() {
    silence_injected_panics();
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let ctx = MatchContext::new(&kb);

    let mut free = stacked_table1(4);
    let free_report = fast_repair(&ctx, &rules, &mut free, &ApplyOptions::default());

    let plan = FaultPlan::new()
        .with_fault(0, Fault::Slow(std::time::Duration::from_millis(30)))
        .with_fault(7, Fault::Slow(std::time::Duration::from_millis(30)));
    let mut slow = stacked_table1(4);
    let report = parallel_repair(&ctx, &rules, &mut slow, &faulted_opts(4, plan));
    assert!(report.tuples.iter().all(|t| t.outcome.is_completed()));
    assert_eq!(free_report.tuples, report.tuples);
    for cell in free.cell_refs() {
        assert_eq!(free.value(cell), slow.value(cell));
    }
}

/// Forced budget exhaustion degrades exactly the planned rows, with cause
/// `Forced`, zero steps spent, and the tuple left as loaded.
#[test]
fn forced_exhaustion_degrades_planned_rows() {
    silence_injected_panics();
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let ctx = MatchContext::new(&kb);

    let plan = FaultPlan::new()
        .with_fault(2, Fault::ExhaustBudget)
        .with_fault(5, Fault::ExhaustBudget);
    let pristine = stacked_table1(3);
    let mut relation = stacked_table1(3);
    let report = parallel_repair(&ctx, &rules, &mut relation, &faulted_opts(4, plan));

    assert_eq!(report.resilience.degraded, 2);
    assert_eq!(report.resilience.failed, 0);
    for row in [2usize, 5] {
        match &report.tuples[row].outcome {
            TupleOutcome::Degraded { reason } => {
                assert_eq!(reason.cause, ExhaustCause::Forced);
                assert_eq!(reason.steps, 0, "tripped before any work");
            }
            other => panic!("row {row}: {other:?}"),
        }
        assert!(report.tuples[row].steps.is_empty());
    }
    for cell in pristine.cell_refs() {
        if [2usize, 5].contains(&cell.row) {
            assert_eq!(
                pristine.value(cell),
                relation.value(cell),
                "degraded row {} left as loaded",
                cell.row
            );
        }
    }
}

/// Retry-policy accounting under fault injection (DESIGN.md §9): a
/// 4-attempt policy re-runs a deterministic panic exactly 3 times before
/// accepting the failure, heals a one-shot panic on its first retry, and
/// the books balance three ways — the `ResilienceReport` tallies, the
/// `repair_tuples_total{outcome}` / `repair_retries_total` counters, and
/// the per-attempt `retry_attempts_total` series.
#[test]
fn retry_policy_caps_attempts_and_reconciles_metrics() {
    silence_injected_panics();
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let obs = Arc::new(dr_obs::Obs::new());
    let ctx = MatchContext::new(&kb).with_obs(Arc::clone(&obs));

    let plan = FaultPlan::new()
        .with_fault(2, Fault::Panic) // fails on every attempt
        .with_fault(5, Fault::PanicOnce); // heals on the first retry
    let mut relation = stacked_table1(3); // 12 rows
    let opts = ParallelOptions {
        threads: 4,
        retry: RetryPolicy::with_attempts(4)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(2))
            .with_seed(11),
        fault_plan: Some(Arc::new(plan)),
        ..Default::default()
    };
    let report = parallel_repair(&ctx, &rules, &mut relation, &opts);

    // The cap holds: row 2 gets 3 retries (attempts 2..=4) then stays
    // Failed; row 5 heals with 1 retry. 4 retry attempts in total.
    assert_eq!(failed_rows(&report), vec![2]);
    assert_eq!(report.resilience.failed, 1);
    assert_eq!(
        report.resilience.retried, 4,
        "3 capped retries for row 2 + 1 healing retry for row 5"
    );

    let snap = obs.metrics().snapshot();
    let res = &report.resilience;
    // res d/f/q/r ↔ outcome counters.
    assert_eq!(
        snap.counter(
            "repair_tuples_total",
            "algo=\"parallel\",outcome=\"completed\""
        ),
        Some((relation.len() - res.failed - res.degraded) as u64)
    );
    assert_eq!(
        snap.counter(
            "repair_tuples_total",
            "algo=\"parallel\",outcome=\"failed\""
        ),
        Some(res.failed as u64)
    );
    assert_eq!(res.degraded, 0);
    assert_eq!(res.quarantined, 0);
    assert_eq!(snap.counter_total("repair_quarantined_total"), 0);
    // retried ↔ repair_retries_total ↔ Σ retry_attempts_total{attempt}.
    assert_eq!(
        snap.counter_total("repair_retries_total"),
        res.retried as u64
    );
    assert_eq!(
        snap.counter_total("retry_attempts_total"),
        res.retried as u64
    );
    // Per-attempt shape: both rows run on attempt 2; only the
    // deterministic panic is still failed for attempts 3 and 4.
    for (attempt, expected) in [(2u32, 2u64), (3, 1), (4, 1)] {
        assert_eq!(
            snap.counter("retry_attempts_total", &format!("attempt=\"{attempt}\"")),
            Some(expected),
            "attempt {attempt}"
        );
    }
}

/// An empty plan routes through the scheduler unchanged.
#[test]
fn empty_plan_is_transparent() {
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let ctx = MatchContext::new(&kb);
    let mut free = stacked_table1(2);
    let free_report = fast_repair(&ctx, &rules, &mut free, &ApplyOptions::default());
    let mut faulted = stacked_table1(2);
    let report = parallel_repair(
        &ctx,
        &rules,
        &mut faulted,
        &faulted_opts(2, FaultPlan::new()),
    );
    assert_eq!(free_report.tuples, report.tuples);
    assert!(report.resilience.is_clean());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: random per-row faults (panic or forced
    /// exhaustion) at any thread count leave every *unaffected* row
    /// bit-identical to a fault-free run — and the registry's warm-cache
    /// equivalence (PR 2) still holds after the faulted run.
    #[test]
    fn faulted_runs_isolate_damage(
        seed in any::<u64>(),
        panic_rate in 0.0f64..0.25,
        panic_once_rate in 0.0f64..0.2,
        exhaust_rate in 0.0f64..0.35,
        threads_idx in 0usize..4,
    ) {
        let threads = [1usize, 2, 4, 8][threads_idx];
        silence_injected_panics();
        let kb = dr_kb::fixtures::nobel_mini_kb();
        let rules = figure4_rules(&kb);

        let free_ctx = MatchContext::new(&kb);
        let mut free = stacked_table1(6); // 24 rows
        let free_report = fast_repair(&free_ctx, &rules, &mut free, &ApplyOptions::default());

        let plan = FaultPlan::seeded(seed, free.len(), FaultSpec {
            panic_rate,
            panic_once_rate,
            exhaust_rate,
            ..Default::default()
        });
        let disturbed = plan.disturbed_rows();
        let panicking = plan.panicking_rows();
        let healing = plan.healing_rows();
        let exhausted = plan.exhausted_rows();

        let registry = Arc::new(CacheRegistry::default());
        let ctx = MatchContext::with_registry(&kb, Arc::clone(&registry));
        let mut faulted = stacked_table1(6);
        let report = parallel_repair(&ctx, &rules, &mut faulted, &faulted_opts(threads, plan));

        // Outcome bookkeeping matches the plan exactly: deterministic
        // panics stay failed after their retry, one-shot panics heal.
        prop_assert_eq!(failed_rows(&report), panicking.clone());
        prop_assert_eq!(report.resilience.failed, panicking.len());
        prop_assert_eq!(report.resilience.retried, panicking.len() + healing.len());
        prop_assert_eq!(report.resilience.degraded, exhausted.len());
        for &row in &healing {
            prop_assert!(report.tuples[row].outcome.is_completed(), "healed row {}", row);
        }

        // Unaffected rows: bit-identical tuples and traces.
        for cell in free.cell_refs() {
            if disturbed.contains(&cell.row) {
                continue;
            }
            prop_assert_eq!(free.value(cell), faulted.value(cell));
            prop_assert_eq!(
                free.tuple(cell.row).is_positive(cell.attr),
                faulted.tuple(cell.row).is_positive(cell.attr)
            );
        }
        for (row, (a, b)) in free_report.tuples.iter().zip(&report.tuples).enumerate() {
            if !disturbed.contains(&row) {
                prop_assert_eq!(a, b, "row {} trace diverged", row);
            }
        }

        // PR 2's warm-cache equivalence, post-fault: a fault-free repair
        // through the surviving registry equals the registry-free one.
        let mut warm = stacked_table1(6);
        let warm_report = fast_repair(&ctx, &rules, &mut warm, &ApplyOptions::default());
        prop_assert_eq!(&free_report.tuples, &warm_report.tuples);
        for cell in free.cell_refs() {
            prop_assert_eq!(free.value(cell), warm.value(cell));
        }
    }
}
