//! Tests for the auxiliary-node extension (§II-C's "negative path" remark):
//! rules whose positive or negative semantics route through KB entities
//! that are not table columns.

use dr_core::fixtures::{nobel_schema, table1_dirty};
use dr_core::graph::schema::NodeType;
use dr_core::rule::{node, DetectiveRule, RuleEdge, RuleError, RuleNodeRef};
use dr_core::{apply_rule, ApplyOptions, MatchContext, RuleApplication};
use dr_kb::fixtures::{names, nobel_mini_kb};
use dr_kb::KnowledgeBase;
use dr_simmatch::SimFn;

fn class(kb: &KnowledgeBase, name: &str) -> NodeType {
    NodeType::Class(kb.class_named(name).unwrap())
}

fn edge(from: RuleNodeRef, rel: dr_kb::PredId, to: RuleNodeRef) -> RuleEdge {
    RuleEdge { from, to, rel }
}

/// ϕ2 without the Institution column: the work city is reached through an
/// auxiliary organization node (positive *path*).
fn city_rule_via_aux(kb: &KnowledgeBase) -> DetectiveRule {
    use RuleNodeRef::{Aux, Evidence, Negative, Positive};
    let schema = nobel_schema();
    DetectiveRule::with_aux(
        "city-via-aux",
        vec![node(
            schema.attr_expect("Name"),
            class(kb, names::LAUREATE),
            SimFn::Equal,
        )],
        vec![class(kb, names::ORGANIZATION)],
        node(
            schema.attr_expect("City"),
            class(kb, names::CITY),
            SimFn::Equal,
        ),
        node(
            schema.attr_expect("City"),
            class(kb, names::CITY),
            SimFn::Equal,
        ),
        vec![
            edge(Evidence(0), kb.pred_named(names::WORKS_AT).unwrap(), Aux(0)),
            edge(Aux(0), kb.pred_named(names::LOCATED_IN).unwrap(), Positive),
            edge(
                Evidence(0),
                kb.pred_named(names::BORN_IN).unwrap(),
                Negative,
            ),
        ],
    )
    .expect("aux rule valid")
}

#[test]
fn positive_path_repairs_r1_without_institution_column() {
    let kb = nobel_mini_kb();
    let ctx = MatchContext::new(&kb);
    let schema = nobel_schema();
    let rule = city_rule_via_aux(&kb);
    let mut r1 = table1_dirty().tuple(0).clone();
    match apply_rule(&ctx, &rule, &mut r1, &ApplyOptions::default()) {
        RuleApplication::Repaired { old, new, .. } => {
            assert_eq!(old, "Karcag");
            assert_eq!(new, "Haifa");
        }
        other => panic!("expected repair, got {other:?}"),
    }
    assert_eq!(r1.get(schema.attr_expect("City")), "Haifa");
    // The Institution column was never consulted — only Name is evidence.
    assert!(!r1.is_positive(schema.attr_expect("Institution")));
}

#[test]
fn positive_path_multi_version_for_calvin() {
    let kb = nobel_mini_kb();
    let ctx = MatchContext::new(&kb);
    let rule = city_rule_via_aux(&kb);
    let mut r4 = table1_dirty().tuple(3).clone();
    match apply_rule(&ctx, &rule, &mut r4, &ApplyOptions::default()) {
        RuleApplication::Repaired { candidates, .. } => {
            // Both workplaces' cities are valid repairs.
            assert_eq!(
                candidates,
                vec!["Berkeley".to_owned(), "Manchester".to_owned()]
            );
        }
        other => panic!("expected repair, got {other:?}"),
    }
}

/// A negative *path*: City holds the city of the alma mater, reached via
/// graduatedFrom ∘ locatedIn through an auxiliary organization.
#[test]
fn negative_path_detects_alma_mater_city() {
    use RuleNodeRef::{Aux, Evidence, Negative, Positive};
    let kb = nobel_mini_kb();
    let ctx = MatchContext::new(&kb);
    let schema = nobel_schema();
    let rule = DetectiveRule::with_aux(
        "city-alma-mater-confusion",
        vec![node(
            schema.attr_expect("Name"),
            class(&kb, names::LAUREATE),
            SimFn::Equal,
        )],
        vec![
            class(&kb, names::ORGANIZATION),
            class(&kb, names::ORGANIZATION),
        ],
        node(
            schema.attr_expect("City"),
            class(&kb, names::CITY),
            SimFn::Equal,
        ),
        node(
            schema.attr_expect("City"),
            class(&kb, names::CITY),
            SimFn::Equal,
        ),
        vec![
            edge(Evidence(0), kb.pred_named(names::WORKS_AT).unwrap(), Aux(0)),
            edge(Aux(0), kb.pred_named(names::LOCATED_IN).unwrap(), Positive),
            edge(
                Evidence(0),
                kb.pred_named(names::GRADUATED_FROM).unwrap(),
                Aux(1),
            ),
            edge(Aux(1), kb.pred_named(names::LOCATED_IN).unwrap(), Negative),
        ],
    )
    .expect("negative-path rule valid");

    // Calvin's Table-I City is "St. Paul" — exactly the city of his alma
    // mater (University of Minnesota): the negative path matches.
    let mut r4 = table1_dirty().tuple(3).clone();
    match apply_rule(&ctx, &rule, &mut r4, &ApplyOptions::default()) {
        RuleApplication::Repaired {
            old, candidates, ..
        } => {
            assert_eq!(old, "St. Paul");
            assert_eq!(
                candidates,
                vec!["Berkeley".to_owned(), "Manchester".to_owned()]
            );
        }
        other => panic!("expected negative-path repair, got {other:?}"),
    }
}

#[test]
fn aux_validation_catches_errors() {
    use RuleNodeRef::{Aux, Evidence, Negative, Positive};
    let kb = nobel_mini_kb();
    let schema = nobel_schema();
    let name_node = node(
        schema.attr_expect("Name"),
        class(&kb, names::LAUREATE),
        SimFn::Equal,
    );
    let city_node = node(
        schema.attr_expect("City"),
        class(&kb, names::CITY),
        SimFn::Equal,
    );
    let works_at = kb.pred_named(names::WORKS_AT).unwrap();
    let located_in = kb.pred_named(names::LOCATED_IN).unwrap();
    let born_in = kb.pred_named(names::BORN_IN).unwrap();

    // Aux index out of range.
    let err = DetectiveRule::with_aux(
        "bad-index",
        vec![name_node],
        vec![class(&kb, names::ORGANIZATION)],
        city_node,
        city_node,
        vec![
            edge(Evidence(0), works_at, Aux(7)),
            edge(Aux(7), located_in, Positive),
            edge(Evidence(0), born_in, Negative),
        ],
    )
    .unwrap_err();
    assert_eq!(err, RuleError::BadAuxIndex(7));

    // Dangling aux (declared, never used).
    let err = DetectiveRule::with_aux(
        "dangling",
        vec![name_node],
        vec![class(&kb, names::ORGANIZATION), class(&kb, names::CITY)],
        city_node,
        city_node,
        vec![
            edge(Evidence(0), works_at, Aux(0)),
            edge(Aux(0), located_in, Positive),
            edge(Evidence(0), born_in, Negative),
        ],
    )
    .unwrap_err();
    assert_eq!(err, RuleError::DanglingAux(1));

    // Positive side disconnected: p only reachable through an aux that has
    // no link back to the evidence.
    let err = DetectiveRule::with_aux(
        "disconnected",
        vec![name_node],
        vec![class(&kb, names::ORGANIZATION)],
        city_node,
        city_node,
        vec![
            edge(Aux(0), located_in, Positive),
            edge(Evidence(0), born_in, Negative),
        ],
    )
    .unwrap_err();
    assert!(matches!(err, RuleError::BadPositiveSide(_)), "{err:?}");
}

#[test]
fn basic_and_fast_agree_with_aux_rules() {
    let kb = nobel_mini_kb();
    let ctx = MatchContext::new(&kb);
    let rules = vec![city_rule_via_aux(&kb)];

    let mut via_basic = table1_dirty();
    dr_core::basic_repair(&ctx, &rules, &mut via_basic, &ApplyOptions::default());
    let mut via_fast = table1_dirty();
    dr_core::fast_repair(&ctx, &rules, &mut via_fast, &ApplyOptions::default());
    for cell in via_basic.cell_refs() {
        assert_eq!(via_basic.value(cell), via_fast.value(cell));
    }
}

#[test]
fn render_shows_aux_nodes() {
    let kb = nobel_mini_kb();
    let schema = nobel_schema();
    let rule = city_rule_via_aux(&kb);
    let text = rule.render(&kb, &schema);
    assert!(text.contains("aux0"), "{text}");
    assert!(text.contains("organization"), "{text}");
}
