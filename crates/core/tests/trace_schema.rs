//! Golden-file and sampling-subset tests for the JSONL repair traces
//! (DESIGN.md §4d).
//!
//! The trace schema is a contract: events carry no wall-clock fields, so a
//! seeded single-tuple repair emits a byte-identical event sequence on
//! every run and machine — pinned here against a checked-in golden file.
//! The sampler is monotone in the rate, so any sampled trace is a subset
//! of the rate-1.0 trace under the same seed.

use dr_core::{fast_repair, parallel_repair, ApplyOptions, MatchContext, ParallelOptions};
use dr_kb::fixtures::nobel_mini_kb;
use dr_obs::{memory_tracer, Obs, Sampler, Tracer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

const GOLDEN: &str = include_str!("golden/single_tuple_trace.jsonl");

fn traced_ctx(kb: &dr_kb::KnowledgeBase, sampler: Sampler) -> (MatchContext<'_>, TraceBuf) {
    let (tracer, buf) = memory_tracer(sampler);
    let obs = Arc::new(Obs::with_tracer(tracer));
    (MatchContext::new(kb).with_obs(obs), buf)
}

type TraceBuf = Arc<Mutex<Vec<u8>>>;

fn lines(buf: &TraceBuf) -> Vec<String> {
    String::from_utf8(buf.lock().clone())
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect()
}

/// Every line must parse as a flat JSON object with an `ev` field — a
/// minimal structural validation mirroring the CI `jq -e` check.
fn assert_jsonl_shape(lines: &[String]) {
    for line in lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not an object: {line}"
        );
        assert!(line.contains("\"ev\":\""), "no ev field: {line}");
        assert!(!line.contains('\n'), "embedded newline: {line}");
    }
}

/// Regenerates the golden file. Run explicitly after an intentional schema
/// change: `cargo test -p dr-core --test trace_schema -- --ignored`.
#[test]
#[ignore = "writes the golden file; run only to regenerate it"]
fn regenerate_golden() {
    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    let (ctx, buf) = traced_ctx(&kb, Sampler::new(42, 1.0));
    let mut relation = dr_relation::Relation::new(dr_core::fixtures::nobel_schema());
    relation.push(dr_core::fixtures::table1_dirty().tuple(0).clone());
    fast_repair(&ctx, &rules, &mut relation, &ApplyOptions::default());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/single_tuple_trace.jsonl"
    );
    std::fs::write(path, buf.lock().as_slice()).unwrap();
}

/// A seeded single-tuple fast repair emits exactly the documented event
/// sequence, byte for byte.
#[test]
fn single_tuple_trace_matches_golden() {
    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    let (ctx, buf) = traced_ctx(&kb, Sampler::new(42, 1.0));
    let mut relation = dr_relation::Relation::new(dr_core::fixtures::nobel_schema());
    relation.push(dr_core::fixtures::table1_dirty().tuple(0).clone());
    fast_repair(&ctx, &rules, &mut relation, &ApplyOptions::default());

    let got = lines(&buf);
    assert_jsonl_shape(&got);
    let want: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(
        got, want,
        "trace drifted from the golden file; if the schema change is \
         intentional, regenerate crates/core/tests/golden/single_tuple_trace.jsonl"
    );
}

/// The same seed and data produce the same trace on repeated runs.
#[test]
fn traces_are_deterministic_across_runs() {
    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    let run = || {
        let (ctx, buf) = traced_ctx(&kb, Sampler::new(7, 0.5));
        let mut relation = dr_core::fixtures::table1_dirty();
        fast_repair(&ctx, &rules, &mut relation, &ApplyOptions::default());
        lines(&buf)
    };
    assert_eq!(run(), run());
}

/// Under one seed, the rows a rate-r sampler keeps are a subset of the
/// rows rate 1.0 keeps — so on the deterministic sequential repairer the
/// sampled trace's lines are exactly a sub-multiset of the full trace's.
#[test]
fn sampled_trace_is_subset_of_full_trace() {
    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    let run = |rate: f64| {
        let (ctx, buf) = traced_ctx(&kb, Sampler::new(99, rate));
        let mut relation = dr_relation::Relation::new(dr_core::fixtures::nobel_schema());
        let base = dr_core::fixtures::table1_dirty();
        for _ in 0..8 {
            for t in base.tuples() {
                relation.push(t.clone());
            }
        }
        fast_repair(&ctx, &rules, &mut relation, &ApplyOptions::default());
        lines(&buf)
    };
    let full = run(1.0);
    for rate in [0.0, 0.25, 0.5] {
        let sampled = run(rate);
        assert_jsonl_shape(&sampled);
        let mut budgeted: HashMap<&str, usize> = HashMap::new();
        for line in &full {
            *budgeted.entry(line.as_str()).or_default() += 1;
        }
        for line in &sampled {
            let left = budgeted
                .get_mut(line.as_str())
                .unwrap_or_else(|| panic!("rate {rate}: line not in full trace: {line}"));
            assert!(*left > 0, "rate {rate}: line over-represented: {line}");
            *left -= 1;
        }
        assert!(sampled.len() < full.len() || rate == 1.0 || full.len() == sampled.len());
    }
}

/// The rows appearing in a sampled trace (by `tuple_start` events).
fn sampled_rows(lines: &[String]) -> Vec<u64> {
    let mut rows: Vec<u64> = lines
        .iter()
        .filter(|l| l.contains("\"ev\":\"tuple_start\""))
        .map(|l| {
            let rest = &l[l.find("\"row\":").unwrap() + 6..];
            rest[..rest.find('}').unwrap()].parse().unwrap()
        })
        .collect();
    rows.sort_unstable();
    rows
}

/// The parallel scheduler interleaves spans and its shared-cache hit/miss
/// split is scheduling-dependent, so the byte-level subset property only
/// holds sequentially — but the *row* subset is still exact: the sampler
/// keys on the row index alone, so the rows a rate-r parallel trace
/// contains are precisely the sampled subset of all rows, regardless of
/// thread interleaving.
#[test]
fn parallel_sampling_selects_the_same_rows() {
    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    let run = |rate: f64, threads: usize| {
        let (ctx, buf) = traced_ctx(&kb, Sampler::new(99, rate));
        let mut relation = dr_relation::Relation::new(dr_core::fixtures::nobel_schema());
        let base = dr_core::fixtures::table1_dirty();
        for _ in 0..8 {
            for t in base.tuples() {
                relation.push(t.clone());
            }
        }
        parallel_repair(
            &ctx,
            &rules,
            &mut relation,
            &ParallelOptions {
                threads,
                ..Default::default()
            },
        );
        lines(&buf)
    };
    let full_rows = sampled_rows(&run(1.0, 4));
    let sequential_rows = sampled_rows(&run(0.5, 1));
    let parallel = run(0.5, 4);
    assert_jsonl_shape(&parallel);
    let parallel_rows = sampled_rows(&parallel);
    assert_eq!(
        parallel_rows, sequential_rows,
        "sampling is thread-count invariant"
    );
    assert!(parallel_rows.iter().all(|r| full_rows.contains(r)));
    assert!(parallel_rows.len() < full_rows.len());
}

/// Rate 0 still emits the relation-level envelope (start, phases, end) —
/// only per-tuple spans are sampled away.
#[test]
fn rate_zero_keeps_relation_envelope_only() {
    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    let (ctx, buf) = traced_ctx(&kb, Sampler::new(1, 0.0));
    let mut relation = dr_core::fixtures::table1_dirty();
    fast_repair(&ctx, &rules, &mut relation, &ApplyOptions::default());
    let got = lines(&buf);
    let evs: Vec<&str> = got
        .iter()
        .map(|l| {
            let rest = &l[l.find("\"ev\":\"").unwrap() + 6..];
            &rest[..rest.find('"').unwrap()]
        })
        .collect();
    assert_eq!(
        evs,
        [
            "relation_start",
            "phase_enter",
            "phase_exit",
            "phase_enter",
            "phase_exit",
            "relation_end"
        ]
    );
}

/// A custom sink (anything `Write + Send`) receives the same bytes the
/// in-memory helper captures.
#[test]
fn file_sink_round_trips() {
    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    let dir = std::env::temp_dir().join(format!("dr-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    {
        let file = std::fs::File::create(&path).unwrap();
        let tracer = Tracer::new(Box::new(file), Sampler::new(42, 1.0));
        let obs = Arc::new(Obs::with_tracer(tracer));
        let ctx = MatchContext::new(&kb).with_obs(Arc::clone(&obs));
        let mut relation = dr_relation::Relation::new(dr_core::fixtures::nobel_schema());
        relation.push(dr_core::fixtures::table1_dirty().tuple(0).clone());
        fast_repair(&ctx, &rules, &mut relation, &ApplyOptions::default());
        obs.tracer().unwrap().flush();
    }
    let written = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(written, GOLDEN);
}
