//! Per-tuple repair budgets (DESIGN.md §4c): exhaustion degrades a tuple
//! deterministically instead of hanging or corrupting it, and the default
//! (unbounded) budget is bit-transparent.

use dr_core::fixtures::{figure4_rules, nobel_schema, table1_dirty};
use dr_core::{
    basic_repair, fast_repair, parallel_repair, ApplyOptions, ExhaustCause, MatchContext,
    ParallelOptions, RepairBudget, TupleOutcome,
};
use dr_relation::Relation;

/// Table I repeated `copies` times — enough rows for the parallel paths.
fn stacked_table1(copies: usize) -> Relation {
    let base = table1_dirty();
    let mut relation = Relation::new(nobel_schema());
    for _ in 0..copies {
        for t in base.tuples() {
            relation.push(t.clone());
        }
    }
    relation
}

#[test]
fn unbounded_budget_is_transparent() {
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let opts = ApplyOptions::default();

    let plain_ctx = MatchContext::new(&kb);
    let mut plain = table1_dirty();
    let plain_report = fast_repair(&plain_ctx, &rules, &mut plain, &opts);

    let ctx = MatchContext::new(&kb).with_budget(RepairBudget::unbounded());
    let mut budgeted = table1_dirty();
    let budgeted_report = fast_repair(&ctx, &rules, &mut budgeted, &opts);

    assert_eq!(plain_report.tuples, budgeted_report.tuples);
    assert!(plain_report.resilience.is_clean());
    assert!(budgeted_report
        .tuples
        .iter()
        .all(|t| t.outcome.is_completed()));
    for cell in plain.cell_refs() {
        assert_eq!(plain.value(cell), budgeted.value(cell));
    }
}

#[test]
fn tight_step_cap_degrades_instead_of_hanging() {
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let ctx = MatchContext::new(&kb).with_budget(RepairBudget::with_max_steps(1));
    let mut relation = table1_dirty();
    let before = relation.clone();
    let report = fast_repair(&ctx, &rules, &mut relation, &ApplyOptions::default());

    // Every Table I tuple needs more than one candidate expansion, so all
    // of them degrade — at the very first enumeration, before any rule
    // could apply, leaving the tuples untouched.
    assert_eq!(report.resilience.degraded, relation.len());
    assert_eq!(report.resilience.failed, 0);
    assert_eq!(
        report.resilience.exhaustion.total(),
        relation.len() as u64,
        "one histogram entry per degraded tuple"
    );
    for (row, t) in report.tuples.iter().enumerate() {
        match &t.outcome {
            TupleOutcome::Degraded { reason } => {
                assert_eq!(reason.cause, ExhaustCause::StepCap);
                assert!(reason.steps > 1, "exhausting charge recorded");
            }
            other => panic!("row {row}: expected Degraded, got {other:?}"),
        }
        assert!(t.steps.is_empty(), "no rule completed under a 1-step cap");
    }
    for cell in before.cell_refs() {
        assert_eq!(before.value(cell), relation.value(cell), "tuple untouched");
    }
}

/// A degraded tuple's trace is a *prefix* of the fault-free trace: rule
/// applications are atomic under exhaustion (mutate-after-enumerate), so
/// the budget can only cut the chase short, never alter what fired first.
#[test]
fn degraded_trace_is_prefix_of_fault_free_trace() {
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let opts = ApplyOptions::default();

    let free_ctx = MatchContext::new(&kb);
    let mut free = table1_dirty();
    let free_report = fast_repair(&free_ctx, &rules, &mut free, &opts);

    // Sweep caps from starving to generous; every row's trace must be a
    // prefix of the fault-free one at every cap.
    for cap in [1, 8, 32, 128, 512, 2048, 1 << 20] {
        let ctx = MatchContext::new(&kb).with_budget(RepairBudget::with_max_steps(cap));
        let mut capped = table1_dirty();
        let capped_report = fast_repair(&ctx, &rules, &mut capped, &opts);
        for (row, (c, f)) in capped_report
            .tuples
            .iter()
            .zip(&free_report.tuples)
            .enumerate()
        {
            assert!(
                c.steps.len() <= f.steps.len() && c.steps.iter().zip(&f.steps).all(|(a, b)| a == b),
                "cap {cap}, row {row}: trace is not a prefix"
            );
            if c.outcome.is_completed() {
                assert_eq!(c.steps, f.steps, "cap {cap}, row {row}: completed ≠ free");
            }
        }
    }
}

/// Budget exhaustion is deterministic: the step count depends only on the
/// enumeration (KB, rules, values), so sequential fast repair, the basic
/// chase... and every parallel thread count degrade identically.
#[test]
fn degradation_is_identical_across_repairers_and_threads() {
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let budget = RepairBudget::with_max_steps(24);
    let opts = ApplyOptions::default();

    let ctx = MatchContext::new(&kb).with_budget(budget);
    let mut sequential = stacked_table1(6);
    let seq_report = fast_repair(&ctx, &rules, &mut sequential, &opts);
    // The cap of 24 is chosen to land mid-repair: some rules complete,
    // then the budget trips — the interesting regime.
    assert!(seq_report.resilience.degraded > 0, "cap must bite");
    assert!(
        seq_report.total_applications() > 0,
        "cap must not starve everything"
    );

    for threads in [1, 2, 4, 8] {
        let par_ctx = MatchContext::new(&kb).with_budget(budget);
        let mut parallel = stacked_table1(6);
        let par_report = parallel_repair(
            &par_ctx,
            &rules,
            &mut parallel,
            &ParallelOptions {
                threads,
                ..Default::default()
            },
        );
        assert_eq!(
            seq_report.tuples, par_report.tuples,
            "{threads} threads: degraded traces diverged"
        );
        assert_eq!(seq_report.resilience, par_report.resilience);
        for cell in sequential.cell_refs() {
            assert_eq!(sequential.value(cell), parallel.value(cell));
        }
    }
}

#[test]
fn basic_chase_degrades_too() {
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let ctx = MatchContext::new(&kb).with_budget(RepairBudget::with_max_steps(24));
    let mut relation = table1_dirty();
    let report = basic_repair(&ctx, &rules, &mut relation, &ApplyOptions::default());
    assert!(report.resilience.degraded > 0);
    assert!(report.tuples.iter().all(|t| matches!(
        &t.outcome,
        TupleOutcome::Completed | TupleOutcome::Degraded { .. }
    )));
}
