//! Thread-safety of the shared match context: concurrent lazy index builds
//! must race safely and answer identically.

use dr_core::graph::schema::NodeType;
use dr_core::MatchContext;
use dr_kb::{KbBuilder, KnowledgeBase};
use dr_simmatch::SimFn;

/// A KB with enough instances that index construction takes real time,
/// widening the race window.
fn sizable_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    let city = b.class("city");
    let org = b.class("organization");
    let located_in = b.pred("locatedIn");
    for i in 0..500 {
        let c = b.instance(&format!("City Number {i}"));
        b.set_type(c, city);
        let o = b.instance(&format!("Organization Number {i}"));
        b.set_type(o, org);
        b.edge(o, located_in, c);
    }
    b.finalize().unwrap()
}

#[test]
fn concurrent_candidate_lookups_agree() {
    let kb = sizable_kb();
    let ctx = MatchContext::new(&kb);
    let city = NodeType::Class(kb.class_named("city").unwrap());
    let org = NodeType::Class(kb.class_named("organization").unwrap());

    // Queries across several (type, sim) pairs, hammered from 8 threads
    // while the indexes are still cold.
    let queries: Vec<(NodeType, SimFn, String)> = (0..40)
        .map(|i| (city, SimFn::Equal, format!("City Number {i}")))
        .chain((0..40).map(|i| {
            (
                org,
                SimFn::EditDistance(2),
                format!("Organization Numbr {i}"),
            )
        }))
        .collect();

    let expected: Vec<usize> = queries
        .iter()
        .map(|(ty, sim, q)| MatchContext::new(&kb).candidates(*ty, *sim, q).len())
        .collect();
    // Sanity: the fuzzy queries actually match something.
    assert!(expected.iter().all(|&n| n >= 1));

    std::thread::scope(|scope| {
        for _ in 0..8 {
            let ctx = &ctx;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                for ((ty, sim, q), &want) in queries.iter().zip(expected) {
                    let got = ctx.candidates(*ty, *sim, q).len();
                    assert_eq!(got, want, "query {q:?} under {sim}");
                }
            });
        }
    });

    // Exactly one index per (type, sim) pair survives the race.
    assert_eq!(ctx.index_count(), 2);
}
