//! Property tests for consistency analysis: any subset of a consistent rule
//! set stays consistent, and the checker's verdict is order-stable.

use dr_core::fixtures::{figure4_rules, table1_dirty};
use dr_core::rule::consistency::{check_consistency, ConsistencyOptions};
use dr_core::MatchContext;
use dr_kb::fixtures::nobel_mini_kb;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every subset and permutation of the Figure-4 rules is consistent on
    /// Table I (subsets of a consistent set cannot introduce divergence).
    #[test]
    fn subsets_of_consistent_rules_stay_consistent(
        mask in 1u8..16,
        seed in 0u64..1_000,
    ) {
        let kb = nobel_mini_kb();
        let all = figure4_rules(&kb);
        let rules: Vec<_> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, r)| r.clone())
            .collect();
        let ctx = MatchContext::new(&kb);
        let opts = ConsistencyOptions {
            seed,
            ..Default::default()
        };
        let verdict = check_consistency(&ctx, &rules, &table1_dirty(), &opts);
        prop_assert!(verdict.is_consistent(), "mask {mask:#06b}: {verdict:?}");
    }

    /// The checker's verdict does not depend on its sampling seed for a
    /// consistent set (no false positives from sampling).
    #[test]
    fn verdict_is_seed_stable(seed in 0u64..10_000) {
        let kb = nobel_mini_kb();
        let rules = figure4_rules(&kb);
        let ctx = MatchContext::new(&kb);
        let opts = ConsistencyOptions {
            seed,
            random_orders: 3,
            ..Default::default()
        };
        let verdict = check_consistency(&ctx, &rules, &table1_dirty(), &opts);
        prop_assert!(verdict.is_consistent());
    }
}
