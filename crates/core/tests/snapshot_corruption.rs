//! Corruption-tolerance matrix for the snapshot layer (DESIGN.md §4a):
//! every prefix truncation of a valid snapshot file and a byte flip at
//! every offset must decode to a typed [`SnapshotError`] — never a panic,
//! never a silently wrong payload — and a registry pointed at a damaged
//! file must cold-start an *empty* cache with a quarantine-style
//! diagnostic, with no partial state installed.

use dr_core::fixtures::nobel_schema;
use dr_core::repair::snapshot::{decode, encode, write_snapshot};
use dr_core::{
    CacheRegistry, NodeType, RegistryConfig, SchemaNode, SnapshotError, SnapshotKey,
    SnapshotPayload,
};
use dr_kb::fixtures::{names, nobel_mini_kb};
use dr_kb::hash::FxHasher;
use dr_kb::{KnowledgeBase, Node};
use dr_relation::Schema;
use dr_simmatch::SimFn;
use std::hash::Hasher;
use std::path::PathBuf;
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dr-snap-corrupt-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A small but structurally complete payload: node entries with and without
/// candidates, edge entries with both flag values — every branch of the
/// binary format appears in the encoded bytes.
fn sample_payload(kb: &KnowledgeBase, schema: &Schema) -> SnapshotPayload {
    let city = SchemaNode::new(
        schema.attr_expect("City"),
        NodeType::Class(kb.class_named(names::CITY).expect("city class")),
        SimFn::Equal,
    );
    let name = SchemaNode::new(
        schema.attr_expect("Name"),
        NodeType::Class(kb.class_named(names::LAUREATE).expect("laureate class")),
        SimFn::EditDistance(2),
    );
    let works_at = kb.pred_named(names::WORKS_AT).expect("worksAt");
    let haifa = kb.instances_labeled("Haifa")[0];
    SnapshotPayload {
        nodes: vec![
            (city, "Haifa".into(), vec![Node::Instance(haifa)]),
            (name, "Nobody".into(), vec![]),
        ],
        edges: vec![
            (
                (name, works_at, city),
                "A".into(),
                "B".into(),
                false,
                vec![],
            ),
            (
                (city, works_at, name),
                "Haifa".into(),
                "X".into(),
                true,
                vec![haifa],
            ),
        ],
    }
}

/// Recomputes the trailing checksum after a deliberate header/body edit, so
/// the corruption under test is reached instead of `ChecksumMismatch`.
fn refix_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
    bytes.truncate(bytes.len() - 8);
    let mut h = FxHasher::default();
    h.write(&bytes);
    let checksum = h.finish();
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

fn valid_snapshot() -> (KnowledgeBase, Arc<Schema>, SnapshotKey, Vec<u8>) {
    let kb = nobel_mini_kb();
    let schema = nobel_schema();
    let key = SnapshotKey::for_pair(&kb, &schema);
    let bytes = encode(key, &sample_payload(&kb, &schema));
    (kb, schema, key, bytes)
}

/// Every prefix of a valid file — from the empty file up to one byte short
/// of complete — decodes to an error, never a panic and never an `Ok`.
#[test]
fn every_prefix_truncation_decodes_to_an_error() {
    let (_, _, key, bytes) = valid_snapshot();
    assert!(decode(&bytes, key).is_ok(), "untruncated file is valid");
    for len in 0..bytes.len() {
        let err = decode(&bytes[..len], key)
            .expect_err(&format!("prefix of {len}/{} bytes accepted", bytes.len()));
        if len < 40 {
            assert!(
                matches!(err, SnapshotError::TooShort(n) if n == len),
                "prefix {len}: {err}"
            );
        }
        assert!(!err.is_absence(), "prefix {len}: truncation is not absence");
    }
}

/// A single flipped bit at every offset — header, body, and checksum
/// trailer alike — is caught (by the whole-file checksum, or for trailer
/// flips by the stored/computed mismatch itself).
#[test]
fn every_byte_flip_decodes_to_an_error() {
    let (_, _, key, bytes) = valid_snapshot();
    for i in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0x40;
        let err = decode(&flipped, key).expect_err(&format!("flip at byte {i} accepted"));
        assert!(
            matches!(err, SnapshotError::ChecksumMismatch { .. }),
            "flip at byte {i}: {err}"
        );
    }
}

/// Header corruptions with a *re-fixed* checksum reach their specific
/// rejections: bad magic, unknown version, foreign key, absurd counts.
#[test]
fn refixed_header_corruptions_report_specific_errors() {
    let (_, _, key, bytes) = valid_snapshot();

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        decode(&refix_checksum(bad_magic), key),
        Err(SnapshotError::BadMagic(_))
    ));

    let mut bad_version = bytes.clone();
    bad_version[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        decode(&refix_checksum(bad_version), key),
        Err(SnapshotError::BadVersion(99))
    ));

    let mut foreign_key = bytes.clone();
    foreign_key[8] ^= 0x01; // first byte of the stored KB content hash
    assert!(matches!(
        decode(&refix_checksum(foreign_key), key),
        Err(SnapshotError::KeyMismatch { .. })
    ));

    // A node count far beyond what the body holds must fail the structural
    // parse (truncated mid-entry / candidate guard), not allocate blindly.
    let mut huge_count = bytes.clone();
    huge_count[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode(&refix_checksum(huge_count), key),
        Err(SnapshotError::Malformed(_))
    ));
}

/// The registry-level guarantee, across the whole corruption matrix: a
/// damaged snapshot file yields a *clean, empty* cold cache (no partial
/// import), one rejected-load diagnostic naming the key, and a usable
/// registry afterwards.
#[test]
fn registry_cold_starts_empty_with_diagnostic_on_every_corruption() {
    let (kb, schema, key, bytes) = valid_snapshot();

    let corruptions: Vec<(&str, Vec<u8>, &str)> = vec![
        ("empty-file", Vec::new(), "too short"),
        ("truncated-header", bytes[..17].to_vec(), "too short"),
        (
            "truncated-body",
            bytes[..bytes.len() - 9].to_vec(),
            "checksum",
        ),
        (
            "flipped-body",
            {
                let mut b = bytes.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0x20;
                b
            },
            "checksum",
        ),
        (
            "bad-magic",
            {
                let mut b = bytes.clone();
                b[0] = b'X';
                refix_checksum(b)
            },
            "magic",
        ),
        (
            "bad-version",
            {
                let mut b = bytes.clone();
                b[4..8].copy_from_slice(&7u32.to_le_bytes());
                refix_checksum(b)
            },
            "version",
        ),
        (
            "foreign-key",
            {
                let mut b = bytes.clone();
                b[9] ^= 0xFF;
                refix_checksum(b)
            },
            "key mismatch",
        ),
    ];

    for (label, corrupt, expected_fragment) in corruptions {
        let dir = scratch_dir(label);
        std::fs::write(key.path_in(&dir), &corrupt).expect("plant corrupt snapshot");

        let registry = CacheRegistry::new(RegistryConfig::default().with_cache_dir(&dir));
        let cache = registry.cache_for(&kb, &schema);

        // No partial state: the cache is empty and knows it cold-started.
        assert!(cache.is_empty(), "{label}: partial import leaked entries");
        assert_eq!(cache.stats().snapshot_warm, 0, "{label}");
        assert_eq!(cache.stats().snapshot_cold, 1, "{label}");

        let stats = registry.stats();
        assert_eq!(stats.snapshot.warm_loads, 0, "{label}");
        assert_eq!(stats.snapshot.cold_loads, 1, "{label}");
        assert_eq!(stats.snapshot.rejected, 1, "{label}: one rejected load");

        let diags = registry.snapshot_diagnostics();
        assert_eq!(diags.len(), 1, "{label}: one diagnostic, got {diags:?}");
        assert!(
            diags[0].contains(expected_fragment),
            "{label}: diagnostic {:?} lacks {expected_fragment:?}",
            diags[0]
        );
        assert!(
            diags[0].contains(&format!("{:#x}", key.kb_content_hash)),
            "{label}: diagnostic names the KB hash: {:?}",
            diags[0]
        );

        // The registry stays fully usable: a later persist round-trips a
        // healthy snapshot over the damaged file.
        cache.import(&sample_payload(&kb, &schema));
        assert_eq!(registry.persist(), 1, "{label}: persist over damage");
        let fresh = CacheRegistry::new(RegistryConfig::default().with_cache_dir(&dir));
        let reloaded = fresh.cache_for(&kb, &schema);
        assert!(
            reloaded.stats().snapshot_warm > 0,
            "{label}: repaired snapshot loads warm"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Two in-process writers racing on the *same* key (the server persists
/// after every repair request, so same-key persist races are routine) must
/// never clobber each other's temp file: whatever the interleaving, the
/// final file is one writer's complete snapshot — never torn, never a
/// decode error — and no temp file lingers. Before the write-unique temp
/// suffix, both writers shared one `.vc-<key>.<pid>.tmp` path, so writer B's
/// `File::create` could truncate writer A's half-written bytes and A's
/// rename would then publish a torn snapshot.
#[test]
fn two_writers_on_one_key_never_publish_a_torn_snapshot() {
    let (kb, schema, key, _) = valid_snapshot();
    let dir = scratch_dir("two-writer");

    // Two distinguishable payloads: the full sample (2 nodes / 2 edges) and
    // a pruned variant (1 node / 0 edges). The survivor must be exactly one
    // of them.
    let full = sample_payload(&kb, &schema);
    let mut pruned = sample_payload(&kb, &schema);
    pruned.nodes.truncate(1);
    pruned.edges.clear();

    const ROUNDS: usize = 40;
    std::thread::scope(|s| {
        for payload in [&full, &pruned] {
            let dir = &dir;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    write_snapshot(dir, key, payload).expect("concurrent write");
                }
            });
        }
    });

    let bytes = std::fs::read(key.path_in(&dir)).expect("final snapshot exists");
    let survivor = decode(&bytes, key).expect("survivor decodes cleanly");
    let shape = (survivor.nodes.len(), survivor.edges.len());
    assert!(
        shape == (full.nodes.len(), full.edges.len())
            || shape == (pruned.nodes.len(), pruned.edges.len()),
        "survivor is neither writer's payload: {shape:?}"
    );

    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp files linger: {leftovers:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Atomic writes: the temp file never lingers and the final file appears
/// complete — a reader polling the directory during a write sees either
/// nothing or a fully valid snapshot.
#[test]
fn writes_leave_no_temp_files_behind() {
    let (kb, schema, key, _) = valid_snapshot();
    let dir = scratch_dir("atomic");
    write_snapshot(&dir, key, &sample_payload(&kb, &schema)).expect("write");
    let entries: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(entries.len(), 1, "only the final file remains: {entries:?}");
    assert!(entries[0].ends_with(".drsnap"), "{entries:?}");
    assert!(!entries[0].starts_with('.'), "{entries:?}");
    std::fs::remove_dir_all(&dir).ok();
}
