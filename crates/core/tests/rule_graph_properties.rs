//! Property tests for rule-order selection: on randomly generated rule
//! sets, the check order must be a topological order of the condensation,
//! and SCCs must partition the rules.

use dr_core::graph::schema::NodeType;
use dr_core::repair::rule_graph::RuleGraph;
use dr_core::rule::{node, DetectiveRule, RuleEdge, RuleNodeRef};
use dr_kb::fixtures::nobel_mini_kb;
use dr_relation::{AttrId, Schema};
use dr_simmatch::SimFn;
use proptest::prelude::*;

/// Builds a synthetic rule over a wide schema: evidence column `ev`,
/// repaired column `target`. The KB types/preds are fixed (they do not
/// matter for graph structure).
fn synthetic_rule(
    kb: &dr_kb::KnowledgeBase,
    schema: &Schema,
    name: String,
    ev: usize,
    target: usize,
) -> DetectiveRule {
    let laureate = NodeType::Class(kb.class_named("Nobel laureates in Chemistry").unwrap());
    let city = NodeType::Class(kb.class_named("city").unwrap());
    let works_at = kb.pred_named("worksAt").unwrap();
    let born_in = kb.pred_named("wasBornIn").unwrap();
    let ev_node = node(AttrId::from_index(ev), laureate, SimFn::Equal);
    let target_node = node(AttrId::from_index(target), city, SimFn::Equal);
    let _ = schema;
    DetectiveRule::new(
        name,
        vec![ev_node],
        target_node,
        target_node,
        vec![
            RuleEdge {
                from: RuleNodeRef::Evidence(0),
                to: RuleNodeRef::Positive,
                rel: works_at,
            },
            RuleEdge {
                from: RuleNodeRef::Evidence(0),
                to: RuleNodeRef::Negative,
                rel: born_in,
            },
        ],
    )
    .expect("synthetic rule valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn check_order_is_topological(
        // Each rule: (evidence column, target column), over 8 columns.
        specs in prop::collection::vec((0usize..8, 0usize..8), 1..12),
    ) {
        let kb = nobel_mini_kb();
        let cols: Vec<String> = (0..8).map(|i| format!("C{i}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let schema = Schema::new("W", &col_refs);

        let rules: Vec<DetectiveRule> = specs
            .iter()
            .enumerate()
            .filter(|&(_, &(ev, target))| ev != target) // repair col ∉ evidence
            .map(|(i, &(ev, target))| {
                synthetic_rule(&kb, &schema, format!("r{i}"), ev, target)
            })
            .collect();
        prop_assume!(!rules.is_empty());

        let graph = RuleGraph::build(&rules);
        let order = graph.check_order();

        // 1. The groups partition the rule set.
        let mut seen = vec![false; rules.len()];
        for group in &order {
            for &r in group {
                prop_assert!(!seen[r], "rule {r} appears twice");
                seen[r] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every rule appears");

        // 2. Cross-group edges only point forward.
        let group_of = |r: usize| order.iter().position(|g| g.contains(&r)).unwrap();
        for (i, _) in rules.iter().enumerate() {
            for &j in graph.successors(i) {
                prop_assert!(
                    group_of(i) <= group_of(j),
                    "edge {i}→{j} goes backwards in the order"
                );
            }
        }

        // 3. Every SCC member reaches every other member (mutual
        //    reachability) — verified by BFS within the full graph.
        for group in &order {
            if group.len() < 2 {
                continue;
            }
            for &a in group {
                for &b in group {
                    prop_assert!(reaches(&graph, a, b), "{a} cannot reach {b} in its SCC");
                }
            }
        }
    }
}

fn reaches(graph: &RuleGraph, from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![false; graph.len()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(v) = stack.pop() {
        for &w in graph.successors(v) {
            if w == to {
                return true;
            }
            if !seen[w] {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    false
}
