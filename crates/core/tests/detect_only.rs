//! Tests for detection-without-repair (§II-C case (2) before correction):
//! when the negative semantics matches but the KB holds no repair instance,
//! the rule can still mark the evidence correct and flag the cell wrong.

use dr_core::graph::schema::NodeType;
use dr_core::rule::{node, DetectiveRule, RuleEdge, RuleNodeRef};
use dr_core::{apply_rule, ApplyOptions, MatchContext, RuleApplication};
use dr_kb::KbBuilder;
use dr_relation::{Schema, Tuple};
use dr_simmatch::SimFn;

/// A person the KB knows was *born* in a city, with no residence edge at
/// all — the City column's wrong value can be detected but not corrected.
fn incomplete_kb() -> dr_kb::KnowledgeBase {
    let mut b = KbBuilder::new();
    let person = b.class("person");
    let city = b.class("city");
    let born_in = b.pred("bornIn");
    let _lives_in = b.pred("livesIn"); // exists as a predicate, no edges
    let ada = b.instance("Ada Example");
    let springfield = b.instance("Springfield");
    b.set_type(ada, person);
    b.set_type(springfield, city);
    b.edge(ada, born_in, springfield);
    b.finalize().unwrap()
}

fn city_rule(kb: &dr_kb::KnowledgeBase, schema: &Schema) -> DetectiveRule {
    use RuleNodeRef::{Evidence, Negative, Positive};
    let person = NodeType::Class(kb.class_named("person").unwrap());
    let city = NodeType::Class(kb.class_named("city").unwrap());
    DetectiveRule::new(
        "city-rule",
        vec![node(schema.attr_expect("Name"), person, SimFn::Equal)],
        node(schema.attr_expect("City"), city, SimFn::Equal),
        node(schema.attr_expect("City"), city, SimFn::Equal),
        vec![
            RuleEdge {
                from: Evidence(0),
                to: Positive,
                rel: kb.pred_named("livesIn").unwrap(),
            },
            RuleEdge {
                from: Evidence(0),
                to: Negative,
                rel: kb.pred_named("bornIn").unwrap(),
            },
        ],
    )
    .unwrap()
}

#[test]
fn default_options_skip_unrepairable_detection() {
    let kb = incomplete_kb();
    let ctx = MatchContext::new(&kb);
    let schema = Schema::new("R", &["Name", "City"]);
    let rule = city_rule(&kb, &schema);
    let mut tuple = Tuple::from_strs(&["Ada Example", "Springfield"]);
    // Algorithm 1 semantics: no repair instance ⇒ not applicable.
    let outcome = apply_rule(&ctx, &rule, &mut tuple, &ApplyOptions::default());
    assert_eq!(outcome, RuleApplication::NotApplicable);
    assert!(!tuple.is_marked());
}

#[test]
fn detect_without_repair_flags_and_marks_evidence() {
    let kb = incomplete_kb();
    let ctx = MatchContext::new(&kb);
    let schema = Schema::new("R", &["Name", "City"]);
    let rule = city_rule(&kb, &schema);
    let mut tuple = Tuple::from_strs(&["Ada Example", "Springfield"]);
    let opts = ApplyOptions {
        detect_without_repair: true,
        ..Default::default()
    };
    match apply_rule(&ctx, &rule, &mut tuple, &opts) {
        RuleApplication::DetectedWrong { col, newly_marked } => {
            assert_eq!(col, schema.attr_expect("City"));
            assert_eq!(newly_marked, vec![schema.attr_expect("Name")]);
        }
        other => panic!("expected detection, got {other:?}"),
    }
    // The flagged value is untouched and NOT marked positive.
    assert_eq!(tuple.get(schema.attr_expect("City")), "Springfield");
    assert!(!tuple.is_positive(schema.attr_expect("City")));
    assert!(tuple.is_positive(schema.attr_expect("Name")));
}

#[test]
fn detection_requires_the_negative_match() {
    let kb = incomplete_kb();
    let ctx = MatchContext::new(&kb);
    let schema = Schema::new("R", &["Name", "City"]);
    let rule = city_rule(&kb, &schema);
    // A city the person was NOT born in: nothing to detect.
    let mut tuple = Tuple::from_strs(&["Ada Example", "Shelbyville"]);
    let opts = ApplyOptions {
        detect_without_repair: true,
        ..Default::default()
    };
    let outcome = apply_rule(&ctx, &rule, &mut tuple, &opts);
    assert_eq!(outcome, RuleApplication::NotApplicable);
}

#[test]
fn repairable_cases_still_repair_with_detection_enabled() {
    // Extend the KB with a residence edge: the same rule must now repair.
    let mut b = KbBuilder::new();
    let person = b.class("person");
    let city = b.class("city");
    let born_in = b.pred("bornIn");
    let lives_in = b.pred("livesIn");
    let ada = b.instance("Ada Example");
    let springfield = b.instance("Springfield");
    let capital = b.instance("Capital City");
    b.set_type(ada, person);
    b.set_type(springfield, city);
    b.set_type(capital, city);
    b.edge(ada, born_in, springfield);
    b.edge(ada, lives_in, capital);
    let kb = b.finalize().unwrap();

    let ctx = MatchContext::new(&kb);
    let schema = Schema::new("R", &["Name", "City"]);
    let rule = city_rule(&kb, &schema);
    let mut tuple = Tuple::from_strs(&["Ada Example", "Springfield"]);
    let opts = ApplyOptions {
        detect_without_repair: true,
        ..Default::default()
    };
    match apply_rule(&ctx, &rule, &mut tuple, &opts) {
        RuleApplication::Repaired { new, .. } => assert_eq!(new, "Capital City"),
        other => panic!("expected repair, got {other:?}"),
    }
}
