//! Reconciliation tests between the metric registry and the report-side
//! stat structs (DESIGN.md §4d).
//!
//! The obs layer exists to kill dual bookkeeping: the `ValueCache` and
//! `CacheRegistry` counters *are* the registered metric cells, and the
//! repair counters are recorded from the tallied `RelationReport`. These
//! tests drive real repairs at thread counts 1/2/4/8 and assert the merged
//! per-worker metric totals equal the sequentially-accumulated report
//! totals exactly — the drift a `ResilienceReport::+=` /
//! `CacheStats::delta_since` mismatch would produce.

use dr_core::{parallel_repair, MatchContext, ParallelOptions, RelationReport};
use dr_kb::fixtures::nobel_mini_kb;
use dr_obs::Obs;
use proptest::prelude::*;
use std::sync::Arc;

fn duplicated_table(copies: usize) -> dr_relation::Relation {
    let mut relation = dr_relation::Relation::new(dr_core::fixtures::nobel_schema());
    let base = dr_core::fixtures::table1_dirty();
    for _ in 0..copies {
        for t in base.tuples() {
            relation.push(t.clone());
        }
    }
    relation
}

/// Sums the per-worker `scheduler_rows_claimed_total{worker=...}` series.
fn rows_claimed(snap: &dr_obs::MetricsSnapshot) -> u64 {
    snap.counter_total("scheduler_rows_claimed_total")
}

fn assert_reconciles(obs: &Obs, report: &RelationReport, threads: usize) {
    let snap = obs.metrics().snapshot();
    let tuples = report.tuples.len() as u64;
    assert_eq!(
        snap.counter_total("repair_tuples_total"),
        tuples,
        "threads={threads}: outcome counters must cover every tuple"
    );
    let completed = tuples - report.resilience.degraded as u64 - report.resilience.failed as u64;
    assert_eq!(
        snap.counter(
            "repair_tuples_total",
            &format!(
                "algo=\"{}\",outcome=\"completed\"",
                if threads <= 1 { "fast" } else { "parallel" }
            )
        )
        .unwrap_or(0),
        completed,
        "threads={threads}"
    );
    assert_eq!(
        snap.counter_total("repair_retries_total"),
        report.resilience.retried as u64
    );
    assert_eq!(
        snap.counter_total("repair_quarantined_total"),
        report.resilience.quarantined as u64
    );
    // Cache counters: the context had no registry, so the relation-scoped
    // cache is fresh and its lifetime cells equal the report's delta.
    assert_eq!(
        snap.counter_total("value_cache_node_hits_total"),
        report.cache.node_hits
    );
    assert_eq!(
        snap.counter_total("value_cache_node_misses_total"),
        report.cache.node_misses
    );
    assert_eq!(
        snap.counter_total("value_cache_edge_hits_total"),
        report.cache.edge_hits
    );
    assert_eq!(
        snap.counter_total("value_cache_edge_misses_total"),
        report.cache.edge_misses
    );
    // Rule applications: one counter advance per recorded step.
    assert_eq!(
        snap.counter_total("repair_rules_applied_total"),
        report.total_applications() as u64
    );
    // Phase seconds mirror the report's timings (stored as nanoseconds).
    assert_eq!(
        snap.counter("repair_phase_seconds", "phase=\"repair\"")
            .unwrap_or(0),
        report.timing.repair.as_nanos() as u64
    );
    if threads > 1 {
        // The scheduler path ran: every row was claimed exactly once, and
        // the per-tuple latency histogram saw every row.
        assert_eq!(
            rows_claimed(&snap),
            tuples + report.resilience.retried as u64
        );
        let steals = snap.counter_total("scheduler_steal_attempts_total");
        assert!(steals > 0, "threads={threads}: workers made claim attempts");
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "repair_tuple_seconds")
            .expect("tuple latency histogram registered");
        assert_eq!(hist.count, tuples + report.resilience.retried as u64);
    }
}

#[test]
fn metrics_reconcile_with_reports_at_every_thread_count() {
    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    for threads in [1usize, 2, 4, 8] {
        let obs = Arc::new(Obs::new());
        let ctx = MatchContext::new(&kb).with_obs(Arc::clone(&obs));
        let mut relation = duplicated_table(6);
        let report = parallel_repair(
            &ctx,
            &rules,
            &mut relation,
            &ParallelOptions {
                threads,
                ..Default::default()
            },
        );
        assert_reconciles(&obs, &report, threads);
    }
}

/// Accumulating several relations into one registry matches the
/// `+=`-style sequential accumulation of their reports.
#[test]
fn metrics_accumulate_across_relations() {
    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    let obs = Arc::new(Obs::new());
    let mut total_tuples = 0u64;
    let mut total_apps = 0u64;
    for copies in [1usize, 2, 3] {
        let ctx = MatchContext::new(&kb).with_obs(Arc::clone(&obs));
        let mut relation = duplicated_table(copies);
        let report = parallel_repair(
            &ctx,
            &rules,
            &mut relation,
            &ParallelOptions {
                threads: 4,
                ..Default::default()
            },
        );
        total_tuples += report.tuples.len() as u64;
        total_apps += report.total_applications() as u64;
    }
    let snap = obs.metrics().snapshot();
    assert_eq!(snap.counter_total("repair_tuples_total"), total_tuples);
    assert_eq!(snap.counter_total("repair_rules_applied_total"), total_apps);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded counters merged across worker threads equal the sequential
    /// sum, for any increment schedule and thread count in {1, 2, 4, 8}.
    #[test]
    fn sharded_counters_merge_exactly(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(1u64..1000, 0..50),
            1..=8,
        ),
    ) {
        for threads in [1usize, 2, 4, 8] {
            let registry = dr_obs::MetricRegistry::new();
            let counter = registry.counter("merge_test_total", &[]);
            let schedules: Vec<Vec<u64>> = per_thread
                .iter()
                .cycle()
                .take(threads)
                .cloned()
                .collect();
            let expected: u64 = schedules.iter().flatten().sum();
            std::thread::scope(|scope| {
                for schedule in &schedules {
                    let counter = counter.clone();
                    scope.spawn(move || {
                        for &n in schedule {
                            counter.add(n);
                        }
                    });
                }
            });
            prop_assert_eq!(counter.get(), expected);
            prop_assert_eq!(
                registry.snapshot().counter_total("merge_test_total"),
                expected
            );
        }
    }

    /// Thread count never changes the merged totals of a real repair —
    /// the parallel merge is exact, not approximate.
    #[test]
    fn repair_totals_are_thread_count_invariant(threads_idx in 0usize..4) {
        let threads = [1usize, 2, 4, 8][threads_idx];
        let kb = nobel_mini_kb();
        let rules = dr_core::fixtures::figure4_rules(&kb);

        let baseline_obs = Arc::new(Obs::new());
        let ctx = MatchContext::new(&kb).with_obs(Arc::clone(&baseline_obs));
        let mut relation = duplicated_table(4);
        let baseline = parallel_repair(&ctx, &rules, &mut relation, &ParallelOptions::default());

        let obs = Arc::new(Obs::new());
        let ctx = MatchContext::new(&kb).with_obs(Arc::clone(&obs));
        let mut relation = duplicated_table(4);
        let report = parallel_repair(
            &ctx,
            &rules,
            &mut relation,
            &ParallelOptions { threads, ..Default::default() },
        );
        let snap = obs.metrics().snapshot();
        prop_assert_eq!(report.total_applications(), baseline.total_applications());
        prop_assert_eq!(
            snap.counter_total("repair_tuples_total"),
            report.tuples.len() as u64
        );
        prop_assert_eq!(
            snap.counter_total("repair_rules_applied_total"),
            report.total_applications() as u64
        );
        // Total cache traffic (hits + misses) is a deterministic function
        // of the data and rules; only the hit/miss split is scheduling-
        // dependent. The registered cells must agree with the report on
        // both the split and the total.
        prop_assert_eq!(
            snap.counter_total("value_cache_node_hits_total")
                + snap.counter_total("value_cache_node_misses_total"),
            report.cache.node_hits + report.cache.node_misses
        );
        prop_assert_eq!(
            snap.counter_total("value_cache_edge_hits_total"),
            report.cache.edge_hits
        );
        prop_assert_eq!(
            snap.counter_total("value_cache_edge_misses_total"),
            report.cache.edge_misses
        );
    }
}
