//! Set-based similarity measures over sorted token sets.

/// Size of the intersection of two **sorted, deduplicated** slices.
fn intersection_size(a: &[String], b: &[String]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` of two sorted, deduplicated token
/// sets. Two empty sets are defined as similarity 1.
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Cosine similarity `|A ∩ B| / sqrt(|A| · |B|)` over sorted, deduplicated
/// token sets (set semantics). Two empty sets are similarity 1; one empty set
/// gives 0.
pub fn cosine(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(a, b);
    inter as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(a, b);
    inter as f64 / a.len().min(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::{token_set, word_tokens};
    use proptest::prelude::*;

    fn set(s: &str) -> Vec<String> {
        token_set(word_tokens(s))
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&set("a b c"), &set("a b c")), 1.0);
        assert_eq!(jaccard(&set("a b"), &set("c d")), 0.0);
        assert!((jaccard(&set("a b c"), &set("b c d")) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_basics() {
        assert_eq!(cosine(&set("a b"), &set("a b")), 1.0);
        assert_eq!(cosine(&set("a"), &set("b")), 0.0);
        assert!((cosine(&set("a b c d"), &set("a")) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_basics() {
        assert_eq!(overlap(&set("a b c"), &set("a")), 1.0);
        assert_eq!(overlap(&set("a b"), &set("c")), 0.0);
    }

    #[test]
    fn empty_conventions() {
        let e: Vec<String> = vec![];
        assert_eq!(jaccard(&e, &e), 1.0);
        assert_eq!(cosine(&e, &e), 1.0);
        assert_eq!(jaccard(&e, &set("a")), 0.0);
        assert_eq!(cosine(&e, &set("a")), 0.0);
    }

    proptest! {
        #[test]
        fn symmetric_and_bounded(a in "[a-c ]{0,16}", b in "[a-c ]{0,16}") {
            let (sa, sb) = (set(&a), set(&b));
            for f in [jaccard, cosine, overlap] {
                let v = f(&sa, &sb);
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert_eq!(v.to_bits(), f(&sb, &sa).to_bits());
            }
        }

        #[test]
        fn identity_is_one(a in "[a-c ]{0,16}") {
            let sa = set(&a);
            prop_assert_eq!(jaccard(&sa, &sa), 1.0);
            prop_assert_eq!(cosine(&sa, &sa), 1.0);
        }

        #[test]
        fn jaccard_le_cosine_le_overlap(a in "[a-c ]{1,16}", b in "[a-c ]{1,16}") {
            let (sa, sb) = (set(&a), set(&b));
            prop_assume!(!sa.is_empty() && !sb.is_empty());
            let j = jaccard(&sa, &sb);
            let c = cosine(&sa, &sb);
            let o = overlap(&sa, &sb);
            prop_assert!(j <= c + 1e-12);
            prop_assert!(c <= o + 1e-12);
        }
    }
}
