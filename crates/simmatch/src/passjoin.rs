//! Partition-based signature index for threshold edit-distance lookup,
//! following the PASS-JOIN scheme the paper cites for fast instance matching
//! (§IV-B(2), citing Li et al., PVLDB 2011).
//!
//! Every indexed string is split into `k + 1` contiguous segments. If
//! `ED(q, s) ≤ k`, then by pigeonhole at least one segment of `s` survives
//! unedited and occurs in `q` as a contiguous substring, displaced by at most
//! `k` positions. Probing the inverted index with the `O(k²)` windowed
//! substrings of `q` therefore finds **every** true match (no false
//! negatives); candidates are then verified with the banded edit-distance DP.

use crate::edit_distance::within;
use crate::normalize::normalize;
use dr_kb::FxHashMap;

/// Key of one posting list: (indexed string char-length, segment index,
/// segment content).
type SigKey = (u16, u8, Box<str>);

/// A verified match returned by [`SignatureIndex::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Caller-supplied id of the matching string.
    pub id: u32,
    /// Its edit distance from the query (≤ k).
    pub distance: u32,
}

/// The start offset and length (in chars) of each of the `k+1` segments of a
/// string with `len` chars.
fn partition(len: usize, k: usize) -> Vec<(usize, usize)> {
    let parts = k + 1;
    let base = len / parts;
    let extra = len % parts; // first `extra` segments get one more char
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let seg_len = base + usize::from(i < extra);
        out.push((start, seg_len));
        start += seg_len;
    }
    debug_assert_eq!(start, len);
    out
}

/// An inverted index over segment signatures supporting
/// `ED(query, indexed) ≤ k` retrieval.
pub struct SignatureIndex {
    k: usize,
    /// Normalized strings, indexed by insertion order; `ids[i]` is the
    /// caller id of `strings[i]`.
    strings: Vec<Box<str>>,
    ids: Vec<u32>,
    postings: FxHashMap<SigKey, Vec<u32>>, // values are offsets into strings/ids
    /// Char-lengths present in the index (sorted, deduped).
    lengths: Vec<u16>,
}

impl SignatureIndex {
    /// Builds an index for threshold `k` over `(id, value)` pairs. Values are
    /// normalized before indexing; queries are normalized before lookup.
    pub fn build<'a>(k: u32, items: impl IntoIterator<Item = (u32, &'a str)>) -> Self {
        let k = k as usize;
        let mut strings = Vec::new();
        let mut ids = Vec::new();
        let mut postings: FxHashMap<SigKey, Vec<u32>> = FxHashMap::default();
        let mut lengths = Vec::new();
        for (id, raw) in items {
            let value = normalize(raw);
            let chars: Vec<char> = value.chars().collect();
            let len = chars.len();
            let offset = strings.len() as u32;
            strings.push(value.into_boxed_str());
            ids.push(id);
            lengths.push(len.min(u16::MAX as usize) as u16);
            for (seg_idx, &(start, seg_len)) in partition(len, k).iter().enumerate() {
                // Zero-length segments (len < k+1) match the empty substring;
                // index them too so short strings remain findable.
                let content: String = chars[start..start + seg_len].iter().collect();
                postings
                    .entry((len as u16, seg_idx as u8, content.into_boxed_str()))
                    .or_default()
                    .push(offset);
            }
        }
        lengths.sort_unstable();
        lengths.dedup();
        Self {
            k,
            strings,
            ids,
            postings,
            lengths,
        }
    }

    /// The edit-distance threshold this index was built for.
    pub fn threshold(&self) -> usize {
        self.k
    }

    /// Number of indexed strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Candidate offsets whose strings *may* be within distance `k` of
    /// `query` (superset of the true matches). Deduplicated.
    fn candidate_offsets(&self, query_chars: &[char]) -> Vec<u32> {
        let qlen = query_chars.len();
        let mut out: Vec<u32> = Vec::new();
        let lo = qlen.saturating_sub(self.k) as u16;
        let hi = (qlen + self.k).min(u16::MAX as usize) as u16;
        let from = self.lengths.partition_point(|&l| l < lo);
        for &len in &self.lengths[from..] {
            if len > hi {
                break;
            }
            for (seg_idx, &(start, seg_len)) in partition(len as usize, self.k).iter().enumerate() {
                if seg_len > qlen {
                    continue;
                }
                let win_lo = start.saturating_sub(self.k);
                let win_hi = (start + self.k).min(qlen - seg_len);
                for sp in win_lo..=win_hi {
                    let content: String = query_chars[sp..sp + seg_len].iter().collect();
                    if let Some(list) =
                        self.postings
                            .get(&(len, seg_idx as u8, content.into_boxed_str()))
                    {
                        out.extend_from_slice(list);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All indexed ids within edit distance `k` of `query`, verified with the
    /// banded DP. Results are sorted by offset (insertion order).
    pub fn lookup(&self, query: &str) -> Vec<Match> {
        let q = normalize(query);
        let q_chars: Vec<char> = q.chars().collect();
        self.candidate_offsets(&q_chars)
            .into_iter()
            .filter_map(|off| {
                within(&q, &self.strings[off as usize], self.k).map(|d| Match {
                    id: self.ids[off as usize],
                    distance: d as u32,
                })
            })
            .collect()
    }

    /// Number of raw candidates generated for `query` before verification
    /// (for filtering-effectiveness diagnostics and ablation benches).
    pub fn candidate_count(&self, query: &str) -> usize {
        let q = normalize(query);
        let q_chars: Vec<char> = q.chars().collect();
        self.candidate_offsets(&q_chars).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit_distance::edit_distance;
    use proptest::prelude::*;

    #[test]
    fn partition_covers_string() {
        for len in 0..40 {
            for k in 0..5 {
                let parts = partition(len, k);
                assert_eq!(parts.len(), k + 1);
                let total: usize = parts.iter().map(|&(_, l)| l).sum();
                assert_eq!(total, len);
                // Contiguous.
                let mut expect = 0;
                for &(start, l) in &parts {
                    assert_eq!(start, expect);
                    expect += l;
                }
            }
        }
    }

    #[test]
    fn finds_exact_and_near_matches() {
        let names = ["Pasteur Institute", "Cornell University", "UC Berkeley"];
        let idx = SignatureIndex::build(2, names.iter().enumerate().map(|(i, &s)| (i as u32, s)));
        let hits = idx.lookup("Paster Institute");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
        // Both sides are normalized (trim, collapse whitespace, lowercase)
        // before the distance is computed: "paster institute" vs
        // "pasteur institute" differ by the single missing 'u'.
        assert_eq!(hits[0].distance, 1);
        assert_eq!(normalize("Paster Institute"), "paster institute");
        // Normalization itself never contributes to the distance: a query
        // differing only in case/whitespace is an exact (distance-0) match.
        let exact = idx.lookup("  pasteur   INSTITUTE ");
        assert_eq!(exact.len(), 1);
        assert_eq!((exact[0].id, exact[0].distance), (0, 0));
    }

    #[test]
    fn respects_threshold() {
        let idx = SignatureIndex::build(1, [(7u32, "haifa")]);
        assert_eq!(idx.lookup("haifa").len(), 1);
        assert_eq!(idx.lookup("haifaa").len(), 1);
        assert!(idx.lookup("hfx").is_empty());
    }

    #[test]
    fn empty_index_and_empty_query() {
        let idx = SignatureIndex::build(2, std::iter::empty());
        assert!(idx.is_empty());
        assert!(idx.lookup("anything").is_empty());

        let idx = SignatureIndex::build(2, [(1u32, "ab")]);
        // Empty query within distance 2 of "ab".
        let hits = idx.lookup("");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].distance, 2);
    }

    #[test]
    fn short_strings_with_large_k() {
        // len < k+1 creates zero-length segments; matching must still work.
        let idx = SignatureIndex::build(3, [(1u32, "ab"), (2u32, "a")]);
        let hits = idx.lookup("ab");
        let ids: Vec<u32> = hits.iter().map(|m| m.id).collect();
        assert!(ids.contains(&1));
        assert!(ids.contains(&2));
    }

    #[test]
    fn duplicate_ids_allowed() {
        let idx = SignatureIndex::build(1, [(5u32, "x"), (5u32, "y")]);
        assert_eq!(idx.len(), 2);
    }

    proptest! {
        /// The signature filter must never lose a true match.
        #[test]
        fn no_false_negatives(
            strings in prop::collection::vec("[ab]{0,10}", 1..20),
            query in "[ab]{0,10}",
            k in 0u32..4,
        ) {
            let idx = SignatureIndex::build(
                k,
                strings.iter().enumerate().map(|(i, s)| (i as u32, s.as_str())),
            );
            let hits = idx.lookup(&query);
            for (i, s) in strings.iter().enumerate() {
                let d = edit_distance(&normalize(&query), &normalize(s));
                let hit = hits.iter().find(|m| m.id == i as u32);
                if d <= k as usize {
                    prop_assert!(hit.is_some(), "missed {s:?} at distance {d} (k={k})");
                    prop_assert_eq!(hit.unwrap().distance as usize, d);
                } else {
                    prop_assert!(hit.is_none(), "false positive {s:?} at distance {d} (k={k})");
                }
            }
        }
    }
}
