//! Tokenization for set-based similarity: word tokens and character q-grams.

/// Splits a string into lowercase word tokens (alphanumeric runs).
pub fn word_tokens(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                current.push(lower);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Character q-grams of the string (over chars, not bytes). Strings shorter
/// than `q` yield a single gram containing the whole string; empty input
/// yields no grams.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q > 0, "q must be positive");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= q {
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - q)
        .map(|i| chars[i..i + q].iter().collect())
        .collect()
}

/// Sorted, deduplicated token set (for set-semantics similarity).
pub fn token_set(mut tokens: Vec<String>) -> Vec<String> {
    tokens.sort_unstable();
    tokens.dedup();
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_tokens_split_on_punctuation() {
        assert_eq!(
            word_tokens("St. Paul, MN"),
            vec!["st".to_owned(), "paul".to_owned(), "mn".to_owned()]
        );
    }

    #[test]
    fn word_tokens_lowercase() {
        assert_eq!(
            word_tokens("UC Berkeley"),
            vec!["uc".to_owned(), "berkeley".to_owned()]
        );
    }

    #[test]
    fn empty_input_no_tokens() {
        assert!(word_tokens("").is_empty());
        assert!(word_tokens("—!?").is_empty());
        assert!(qgrams("", 2).is_empty());
    }

    #[test]
    fn qgrams_basic() {
        assert_eq!(qgrams("abcd", 2), vec!["ab", "bc", "cd"]);
        assert_eq!(qgrams("ab", 2), vec!["ab"]);
        assert_eq!(qgrams("a", 2), vec!["a"]);
    }

    #[test]
    fn qgrams_count_invariant() {
        let s = "knowledge";
        for q in 1..=3 {
            assert_eq!(qgrams(s, q).len(), s.chars().count() - q + 1);
        }
    }

    #[test]
    fn token_set_dedupes_and_sorts() {
        let set = token_set(vec!["b".into(), "a".into(), "b".into()]);
        assert_eq!(set, vec!["a".to_owned(), "b".to_owned()]);
    }
}
