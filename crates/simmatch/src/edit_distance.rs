//! Levenshtein edit distance: full dynamic program and a banded,
//! threshold-aware variant.
//!
//! Rule nodes with `sim: ED,k` only ever ask "is the distance ≤ k?", so the
//! hot path is [`within`], which runs the DP restricted to a `2k+1` diagonal
//! band and exits early when the band exceeds the threshold — O(k·min(n,m))
//! instead of O(n·m).

/// Full Levenshtein distance between `a` and `b` (unit costs for insert,
/// delete, substitute).
///
/// Operates on Unicode scalar values, matching the paper's character-level
/// examples (`ED(Chemistry, Chamstry) = 2`).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // One-row DP.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let val = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[b.len()]
}

/// Returns `Some(distance)` iff `edit_distance(a, b) <= k`; `None` otherwise.
///
/// Runs a banded DP over the `2k+1` diagonals around the main diagonal, with
/// early exit once every cell in the current band exceeds `k`.
pub fn within(a: &str, b: &str, k: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > k {
        return None;
    }
    if n == 0 {
        return (m <= k).then_some(m);
    }
    if m == 0 {
        return (n <= k).then_some(n);
    }
    const BIG: usize = usize::MAX / 2;
    // row[j] = distance for prefix (i, j); only j in [i-k, i+k] is live.
    let mut row = vec![BIG; m + 1];
    for (j, cell) in row.iter_mut().enumerate().take(k.min(m) + 1) {
        *cell = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(k).max(1);
        let hi = (i + k).min(m);
        let mut prev_diag = if lo == 1 { i - 1 } else { row[lo - 1] };
        let left_of_band = if i <= k { i } else { BIG };
        let mut left = left_of_band; // row[lo-1] in the *new* row
        if i <= k {
            row[0] = i;
        }
        let mut min_in_row = BIG;
        for j in lo..=hi {
            let up = row[j];
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let val = (prev_diag + cost).min(up + 1).min(left + 1);
            prev_diag = up;
            row[j] = val;
            left = val;
            min_in_row = min_in_row.min(val);
        }
        if hi < m {
            row[hi + 1] = BIG; // stale cell from previous row is out of band
        }
        if min_in_row > k {
            return None;
        }
    }
    (row[m] <= k).then_some(row[m])
}

/// Convenience predicate: `edit_distance(a, b) <= k`.
#[inline]
pub fn within_bool(a: &str, b: &str, k: usize) -> bool {
    within(a, b, k).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example() {
        assert_eq!(edit_distance("Chemistry", "Chamstry"), 2);
    }

    #[test]
    fn identical_and_empty() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", ""), 3);
    }

    #[test]
    fn single_operations() {
        assert_eq!(edit_distance("cat", "cats"), 1); // insert
        assert_eq!(edit_distance("cats", "cat"), 1); // delete
        assert_eq!(edit_distance("cat", "cut"), 1); // substitute
    }

    #[test]
    fn unicode_chars_count_as_one() {
        assert_eq!(edit_distance("café", "cafe"), 1);
        assert_eq!(edit_distance("北京", "東京"), 1);
    }

    #[test]
    fn within_agrees_on_small_cases() {
        assert_eq!(within("Chemistry", "Chamstry", 2), Some(2));
        assert_eq!(within("Chemistry", "Chamstry", 1), None);
        assert_eq!(within("abc", "abc", 0), Some(0));
        assert_eq!(within("abc", "abd", 0), None);
    }

    #[test]
    fn within_length_filter() {
        // Length gap alone exceeds k.
        assert_eq!(within("a", "abcdef", 2), None);
        assert_eq!(within("", "ab", 1), None);
        assert_eq!(within("", "ab", 2), Some(2));
    }

    #[test]
    fn within_band_edges() {
        assert_eq!(within("kitten", "sitting", 3), Some(3));
        assert_eq!(within("kitten", "sitting", 2), None);
    }

    proptest! {
        #[test]
        fn banded_matches_full(a in "[a-d]{0,12}", b in "[a-d]{0,12}", k in 0usize..6) {
            let full = edit_distance(&a, &b);
            let banded = within(&a, &b, k);
            if full <= k {
                prop_assert_eq!(banded, Some(full));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        #[test]
        fn symmetric(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        }

        #[test]
        fn triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            let ab = edit_distance(&a, &b);
            let bc = edit_distance(&b, &c);
            let ac = edit_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn zero_iff_equal(a in "\\PC{0,16}", b in "\\PC{0,16}") {
            let a_chars: Vec<char> = a.chars().collect();
            let b_chars: Vec<char> = b.chars().collect();
            prop_assert_eq!(edit_distance(&a, &b) == 0, a_chars == b_chars);
        }
    }
}
