//! # dr-simmatch — similarity matching substrate
//!
//! Implements the matching operations (`sim(u)`, §II-B of the paper) and the
//! signature-based indexes that make similarity matching fast (§IV-B(2)):
//!
//! * [`edit_distance()`] / [`within`] — full and banded Levenshtein;
//! * [`SimFn`] — the per-node matching operation (`=`, `ED,k`, `JAC,t`,
//!   `COS,t`);
//! * [`SignatureIndex`] — PASS-JOIN partition signatures for threshold
//!   edit-distance retrieval with no false negatives;
//! * [`MatchIndex`] — a unified index dispatching on the `SimFn`.

#![warn(missing_docs)]

pub mod edit_distance;
pub mod index;
pub mod normalize;
pub mod passjoin;
pub mod setsim;
pub mod simfn;
pub mod tokens;

pub use edit_distance::{edit_distance, within, within_bool};
pub use index::MatchIndex;
pub use normalize::{eq_normalized, normalize};
pub use passjoin::{Match, SignatureIndex};
pub use setsim::{cosine, jaccard, overlap};
pub use simfn::{ParseSimFnError, SimFn};
pub use tokens::{qgrams, token_set, word_tokens};
