//! The matching operation attached to a rule node (`sim(u)` in §II-B).
//!
//! A [`SimFn`] decides whether a table cell and a KB value refer to the same
//! entity. The paper uses string equality and edit distance as the running
//! examples and mentions Jaccard/cosine; all four are supported. Thresholds
//! for the set measures are stored in per-mille so `SimFn` stays `Eq + Hash`
//! (rule nodes are hash-map keys in the fast repair algorithm).

use crate::edit_distance::within_bool;
use crate::normalize::{eq_normalized, normalize};
use crate::setsim::{cosine, jaccard};
use crate::tokens::{token_set, word_tokens};
use std::fmt;
use std::str::FromStr;

/// A similarity-based matching operation between a cell value and a KB value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SimFn {
    /// Equality after normalization (`sim: =`).
    Equal,
    /// Edit distance at most `k` after normalization (`sim: ED,k`).
    EditDistance(u32),
    /// Jaccard similarity over word tokens ≥ threshold (per-mille).
    Jaccard(u16),
    /// Cosine similarity over word tokens ≥ threshold (per-mille).
    Cosine(u16),
}

impl SimFn {
    /// Whether `cell` matches `kb_value` under this operation.
    pub fn matches(&self, cell: &str, kb_value: &str) -> bool {
        match *self {
            SimFn::Equal => eq_normalized(cell, kb_value),
            SimFn::EditDistance(k) => {
                within_bool(&normalize(cell), &normalize(kb_value), k as usize)
            }
            SimFn::Jaccard(pm) => {
                let a = token_set(word_tokens(cell));
                let b = token_set(word_tokens(kb_value));
                jaccard(&a, &b) >= f64::from(pm) / 1000.0
            }
            SimFn::Cosine(pm) => {
                let a = token_set(word_tokens(cell));
                let b = token_set(word_tokens(kb_value));
                cosine(&a, &b) >= f64::from(pm) / 1000.0
            }
        }
    }

    /// Builds a Jaccard matcher from a `0.0..=1.0` threshold.
    pub fn jaccard_threshold(t: f64) -> Self {
        SimFn::Jaccard(Self::per_mille(t))
    }

    /// Builds a cosine matcher from a `0.0..=1.0` threshold.
    pub fn cosine_threshold(t: f64) -> Self {
        SimFn::Cosine(Self::per_mille(t))
    }

    fn per_mille(t: f64) -> u16 {
        assert!((0.0..=1.0).contains(&t), "threshold must be in [0, 1]");
        (t * 1000.0).round() as u16
    }

    /// Whether this operation is plain (normalized) equality.
    pub fn is_exact(&self) -> bool {
        matches!(self, SimFn::Equal)
    }
}

impl fmt::Display for SimFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimFn::Equal => write!(f, "="),
            SimFn::EditDistance(k) => write!(f, "ED,{k}"),
            SimFn::Jaccard(pm) => write!(f, "JAC,{:.3}", f64::from(pm) / 1000.0),
            SimFn::Cosine(pm) => write!(f, "COS,{:.3}", f64::from(pm) / 1000.0),
        }
    }
}

/// Error from parsing a [`SimFn`] spec such as `"ED,2"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSimFnError(String);

impl fmt::Display for ParseSimFnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid sim spec `{}` (expected `=`, `ED,k`, `JAC,t`, or `COS,t`)",
            self.0
        )
    }
}

impl std::error::Error for ParseSimFnError {}

impl FromStr for SimFn {
    type Err = ParseSimFnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        if trimmed == "=" {
            return Ok(SimFn::Equal);
        }
        let err = || ParseSimFnError(s.to_owned());
        let (head, arg) = trimmed.split_once(',').ok_or_else(err)?;
        match head.trim().to_ascii_uppercase().as_str() {
            "ED" => arg
                .trim()
                .parse::<u32>()
                .map(SimFn::EditDistance)
                .map_err(|_| err()),
            "JAC" => {
                let t: f64 = arg.trim().parse().map_err(|_| err())?;
                if !(0.0..=1.0).contains(&t) {
                    return Err(err());
                }
                Ok(SimFn::jaccard_threshold(t))
            }
            "COS" => {
                let t: f64 = arg.trim().parse().map_err(|_| err())?;
                if !(0.0..=1.0).contains(&t) {
                    return Err(err());
                }
                Ok(SimFn::cosine_threshold(t))
            }
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_normalizes() {
        assert!(SimFn::Equal.matches("  Haifa ", "haifa"));
        assert!(!SimFn::Equal.matches("Haifa", "Karcag"));
    }

    #[test]
    fn edit_distance_tolerates_typos() {
        let ed2 = SimFn::EditDistance(2);
        assert!(ed2.matches("Paster Institute", "Pasteur Institute"));
        assert!(!ed2.matches("Cornell University", "University of Minnesota"));
    }

    #[test]
    fn jaccard_word_level() {
        let j = SimFn::jaccard_threshold(0.5);
        assert!(j.matches(
            "Israel Institute of Technology",
            "institute of technology israel"
        ));
        assert!(!j.matches("UC Berkeley", "Cornell University"));
    }

    #[test]
    fn cosine_word_level() {
        let c = SimFn::cosine_threshold(0.5);
        assert!(c.matches("University of Manchester", "Manchester University"));
    }

    #[test]
    fn parse_roundtrip() {
        for spec in ["=", "ED,2", "JAC,0.800", "COS,0.500"] {
            let f: SimFn = spec.parse().unwrap();
            assert_eq!(f.to_string(), spec, "roundtrip of {spec}");
            let again: SimFn = f.to_string().parse().unwrap();
            assert_eq!(f, again);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("ED".parse::<SimFn>().is_err());
        assert!("ED,x".parse::<SimFn>().is_err());
        assert!("JAC,1.5".parse::<SimFn>().is_err());
        assert!("LEV,2".parse::<SimFn>().is_err());
        assert!("".parse::<SimFn>().is_err());
    }

    #[test]
    fn exact_flag() {
        assert!(SimFn::Equal.is_exact());
        assert!(!SimFn::EditDistance(1).is_exact());
    }

    #[test]
    fn ed_zero_equals_equality_on_normalized() {
        let ed0 = SimFn::EditDistance(0);
        assert!(ed0.matches("Haifa", " haifa "));
        assert!(!ed0.matches("Haifa", "Haifb"));
    }
}
