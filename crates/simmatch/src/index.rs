//! A unified value-lookup index dispatching on the node's [`SimFn`].
//!
//! Rule evaluation repeatedly asks "which KB values of this type match this
//! cell?". A [`MatchIndex`] is built once per (class, sim) pair and answers
//! that query without scanning all instances:
//!
//! * `=` — hash lookup on the normalized value;
//! * `ED,k` — PASS-JOIN signature index ([`SignatureIndex`]);
//! * `JAC,t` / `COS,t` — token inverted index with share-a-token filtering
//!   (sound for any threshold > 0), then exact verification.

use crate::normalize::normalize;
use crate::passjoin::SignatureIndex;
use crate::setsim::{cosine, jaccard};
use crate::simfn::SimFn;
use crate::tokens::{token_set, word_tokens};
use dr_kb::FxHashMap;

/// Token inverted index used for Jaccard/cosine nodes.
struct TokenIndex {
    sim: SimFn,
    /// token → offsets of sets containing it.
    postings: FxHashMap<Box<str>, Vec<u32>>,
    /// Offsets of items whose token set is empty (they can only match
    /// queries that also tokenize to nothing).
    empty_items: Vec<u32>,
    /// Per indexed item: caller id and its sorted token set.
    items: Vec<(u32, Vec<String>)>,
}

impl TokenIndex {
    fn build<'a>(sim: SimFn, items: impl IntoIterator<Item = (u32, &'a str)>) -> Self {
        let mut postings: FxHashMap<Box<str>, Vec<u32>> = FxHashMap::default();
        let mut empty_items = Vec::new();
        let mut stored = Vec::new();
        for (id, value) in items {
            let set = token_set(word_tokens(value));
            let offset = stored.len() as u32;
            if set.is_empty() {
                empty_items.push(offset);
            }
            for token in &set {
                postings
                    .entry(token.clone().into_boxed_str())
                    .or_default()
                    .push(offset);
            }
            stored.push((id, set));
        }
        Self {
            sim,
            postings,
            empty_items,
            items: stored,
        }
    }

    fn lookup(&self, value: &str) -> Vec<u32> {
        let query = token_set(word_tokens(value));
        let (threshold, measure): (f64, SetMeasure) = match self.sim {
            SimFn::Jaccard(pm) => (f64::from(pm) / 1000.0, jaccard),
            SimFn::Cosine(pm) => (f64::from(pm) / 1000.0, cosine),
            _ => unreachable!("TokenIndex only built for set measures"),
        };
        let mut offsets: Vec<u32> = if threshold <= 0.0 {
            // Everything passes a zero threshold; the share-a-token filter
            // would be incomplete here.
            (0..self.items.len() as u32).collect()
        } else {
            let mut candidates: Vec<u32> = query
                .iter()
                .filter_map(|t| self.postings.get(t.as_str()))
                .flatten()
                .copied()
                .collect();
            // Empty sets share no token but have similarity 1 with an empty
            // query under the two-empty-sets convention.
            if query.is_empty() {
                candidates.extend_from_slice(&self.empty_items);
            }
            candidates
        };
        offsets.sort_unstable();
        offsets.dedup();
        offsets
            .into_iter()
            .filter(|&off| {
                let (_, set) = &self.items[off as usize];
                measure(&query, set) >= threshold
            })
            .map(|off| self.items[off as usize].0)
            .collect()
    }
}

/// A set-similarity measure over sorted token sets.
type SetMeasure = fn(&[String], &[String]) -> f64;

enum Backend {
    Exact(FxHashMap<Box<str>, Vec<u32>>),
    Signature(SignatureIndex),
    Token(TokenIndex),
}

/// Index over `(id, value)` pairs answering "which ids match this value under
/// the given [`SimFn`]?".
pub struct MatchIndex {
    sim: SimFn,
    backend: Backend,
    len: usize,
}

impl MatchIndex {
    /// Builds an index appropriate for `sim` over the given items.
    pub fn build<'a>(sim: SimFn, items: impl IntoIterator<Item = (u32, &'a str)>) -> Self {
        let mut len = 0;
        let backend = match sim {
            SimFn::Equal => {
                let mut map: FxHashMap<Box<str>, Vec<u32>> = FxHashMap::default();
                for (id, value) in items {
                    map.entry(normalize(value).into_boxed_str())
                        .or_default()
                        .push(id);
                    len += 1;
                }
                Backend::Exact(map)
            }
            SimFn::EditDistance(k) => {
                let idx = SignatureIndex::build(k, items);
                len = idx.len();
                Backend::Signature(idx)
            }
            SimFn::Jaccard(_) | SimFn::Cosine(_) => {
                let idx = TokenIndex::build(sim, items);
                len = idx.items.len();
                Backend::Token(idx)
            }
        };
        Self { sim, backend, len }
    }

    /// The similarity function this index answers for.
    pub fn sim(&self) -> SimFn {
        self.sim
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All ids whose value matches `value` under `sim`. Verified (no false
    /// positives), complete (no false negatives).
    pub fn lookup(&self, value: &str) -> Vec<u32> {
        match &self.backend {
            Backend::Exact(map) => map
                .get(normalize(value).as_str())
                .map(|v| v.to_vec())
                .unwrap_or_default(),
            Backend::Signature(idx) => idx.lookup(value).into_iter().map(|m| m.id).collect(),
            Backend::Token(idx) => idx.lookup(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const CITIES: &[&str] = &["Haifa", "Karcag", "Paris", "Ithaca", "St. Paul", "Berkeley"];

    fn build(sim: SimFn) -> MatchIndex {
        MatchIndex::build(sim, CITIES.iter().enumerate().map(|(i, &s)| (i as u32, s)))
    }

    #[test]
    fn exact_lookup() {
        let idx = build(SimFn::Equal);
        assert_eq!(idx.lookup("haifa"), vec![0]);
        assert_eq!(idx.lookup(" ST.  PAUL "), vec![4]);
        assert!(idx.lookup("Москва").is_empty());
    }

    #[test]
    fn ed_lookup() {
        let idx = build(SimFn::EditDistance(2));
        assert!(idx.lookup("Haifa").contains(&0));
        assert!(idx.lookup("Hafia").contains(&0)); // transposition = 2 edits
        assert!(idx.lookup("Karxag").contains(&1));
        assert!(!idx.lookup("Completely Different").contains(&0));
    }

    #[test]
    fn jaccard_lookup() {
        let idx = MatchIndex::build(
            SimFn::jaccard_threshold(0.5),
            [(0u32, "University of Manchester"), (1u32, "UC Berkeley")],
        );
        assert_eq!(idx.lookup("Manchester University"), vec![0]);
        assert_eq!(idx.lookup("Berkeley UC"), vec![1]);
        assert!(idx.lookup("ETH Zurich").is_empty());
    }

    #[test]
    fn cosine_lookup() {
        let idx = MatchIndex::build(
            SimFn::cosine_threshold(0.7),
            [(0u32, "Israel Institute of Technology")],
        );
        assert_eq!(idx.lookup("israel institute of technology"), vec![0]);
        assert!(idx.lookup("institute").is_empty()); // cos = 1/2 < 0.7
    }

    #[test]
    fn duplicate_values_share_a_bucket() {
        let idx = MatchIndex::build(SimFn::Equal, [(1u32, "Paris"), (2u32, "Paris")]);
        let mut hits = idx.lookup("paris");
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
    }

    #[test]
    fn empty_index() {
        for sim in [
            SimFn::Equal,
            SimFn::EditDistance(2),
            SimFn::jaccard_threshold(0.5),
        ] {
            let idx = MatchIndex::build(sim, std::iter::empty());
            assert!(idx.is_empty());
            assert!(idx.lookup("x").is_empty());
        }
    }

    proptest! {
        /// Index lookups agree with brute-force `SimFn::matches` scans.
        #[test]
        fn agrees_with_bruteforce(
            values in prop::collection::vec("[ab ]{0,8}", 1..12),
            query in "[ab ]{0,8}",
            which in 0usize..3,
        ) {
            let sim = match which {
                0 => SimFn::Equal,
                1 => SimFn::EditDistance(1),
                _ => SimFn::jaccard_threshold(0.5),
            };
            let idx = MatchIndex::build(
                sim,
                values.iter().enumerate().map(|(i, s)| (i as u32, s.as_str())),
            );
            let mut got = idx.lookup(&query);
            got.sort_unstable();
            let mut want: Vec<u32> = values
                .iter()
                .enumerate()
                .filter(|(_, v)| sim.matches(&query, v))
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
