//! Value normalization applied before similarity comparison.
//!
//! Table cells and KB labels come from different pipelines; trimming,
//! case-folding and whitespace-collapsing removes formatting-only mismatches
//! so that similarity functions measure real differences.

/// Normalizes a value: trim, collapse internal whitespace runs to single
/// spaces, and lowercase.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_was_space = true; // leading spaces dropped
    for ch in s.chars() {
        if ch.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            for lower in ch.to_lowercase() {
                out.push(lower);
            }
            last_was_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Whether two values are equal after normalization.
pub fn eq_normalized(a: &str, b: &str) -> bool {
    // Cheap path: byte equality.
    a == b || normalize(a) == normalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trims_and_collapses() {
        assert_eq!(
            normalize("  Israel   Institute  of Technology "),
            "israel institute of technology"
        );
    }

    #[test]
    fn lowercases_unicode() {
        assert_eq!(normalize("HAİFA"), "hai\u{307}fa"); // dotted capital I decomposes
        assert_eq!(normalize("ÉCOLE"), "école");
    }

    #[test]
    fn tabs_and_newlines_collapse() {
        assert_eq!(normalize("a\t\nb"), "a b");
    }

    #[test]
    fn eq_normalized_matches_variants() {
        assert!(eq_normalized("Haifa", "haifa"));
        assert!(eq_normalized(" Haifa ", "HAIFA"));
        assert!(!eq_normalized("Haifa", "Karcag"));
    }

    proptest! {
        #[test]
        fn idempotent(s in "\\PC{0,32}") {
            let once = normalize(&s);
            prop_assert_eq!(normalize(&once), once);
        }

        #[test]
        fn no_double_spaces(s in "\\PC{0,32}") {
            let n = normalize(&s);
            prop_assert!(!n.contains("  "));
            prop_assert!(!n.starts_with(' '));
            prop_assert!(!n.ends_with(' '));
        }
    }
}
