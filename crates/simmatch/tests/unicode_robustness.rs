//! Unicode robustness for the similarity layer: multi-byte scripts must
//! behave identically to ASCII through distances, indexes, and sim specs.

use dr_simmatch::{edit_distance, within, MatchIndex, SignatureIndex, SimFn};
use proptest::prelude::*;

#[test]
fn cjk_and_cyrillic_edit_distances() {
    assert_eq!(edit_distance("北京市", "北京"), 1);
    assert_eq!(edit_distance("Москва", "Масква"), 1);
    assert_eq!(edit_distance("Ελλάδα", "Ελλαδα"), 1); // ά vs α
    assert_eq!(within("東京都", "東京都", 0), Some(0));
}

#[test]
fn signature_index_over_mixed_scripts() {
    let labels = [
        "Avram Hershko",
        "אברהם הרשקו",
        "アヴラム・ハーシュコ",
        "Аврам Гершко",
        "Ἀβραάμ",
    ];
    let index = SignatureIndex::build(2, labels.iter().enumerate().map(|(i, &s)| (i as u32, s)));
    // Exact self-matches.
    for (i, label) in labels.iter().enumerate() {
        let hits = index.lookup(label);
        assert!(
            hits.iter().any(|m| m.id == i as u32 && m.distance == 0),
            "{label} must match itself"
        );
    }
    // One-character perturbation of the Hebrew label still matches it.
    let hits = index.lookup("אברהם הרשקa");
    assert!(hits.iter().any(|m| m.id == 1));
}

#[test]
fn match_index_exact_with_unicode_normalizes_case() {
    let index = MatchIndex::build(SimFn::Equal, [(0u32, "STRASSE Süd"), (1u32, "çğüö")]);
    assert_eq!(index.lookup("strasse süd"), vec![0]);
    assert_eq!(index.lookup("ÇĞÜÖ"), vec![1]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Distances and threshold checks never panic and stay consistent on
    /// arbitrary Unicode (any non-control chars).
    #[test]
    fn unicode_never_panics(a in "\\PC{0,12}", b in "\\PC{0,12}", k in 0usize..4) {
        let d = edit_distance(&a, &b);
        let w = within(&a, &b, k);
        match w {
            Some(x) => prop_assert!(x == d && d <= k),
            None => prop_assert!(d > k),
        }
    }

    /// Signature lookup on Unicode pools finds every true match.
    #[test]
    fn unicode_signature_completeness(
        pool in prop::collection::vec("[α-ε一-三a-c]{0,6}", 1..12),
        query in "[α-ε一-三a-c]{0,6}",
    ) {
        let index = SignatureIndex::build(
            1,
            pool.iter().enumerate().map(|(i, s)| (i as u32, s.as_str())),
        );
        let hits = index.lookup(&query);
        for (i, s) in pool.iter().enumerate() {
            let d = edit_distance(
                &dr_simmatch::normalize(&query),
                &dr_simmatch::normalize(s),
            );
            prop_assert_eq!(
                hits.iter().any(|m| m.id == i as u32),
                d <= 1,
                "pool entry {:?} (d={}) vs query {:?}", s, d, query
            );
        }
    }
}
