//! End-to-end pipeline tests spanning every crate: generate a world, build
//! its KBs, inject noise, check consistency, repair with both algorithms,
//! and score — the complete §V methodology at test scale.

use dr_core::repair::basic::basic_repair;
use dr_core::repair::fast::FastRepairer;
use dr_core::rule::consistency::{check_consistency, ConsistencyOptions};
use dr_core::{ApplyOptions, MatchContext};
use dr_datasets::{KbFlavor, KbProfile, NobelWorld, UisWorld};
use dr_eval::{evaluate, RepairExtras};
use dr_relation::noise::{inject, NoiseSpec};

#[test]
fn nobel_pipeline_both_algorithms_agree_cell_for_cell() {
    let world = NobelWorld::generate(150, 42);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.12, 42).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = NobelWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);

        let mut via_basic = dirty.clone();
        basic_repair(&ctx, &rules, &mut via_basic, &ApplyOptions::default());
        let mut via_fast = dirty.clone();
        FastRepairer::new(&rules).repair_relation(&ctx, &mut via_fast, &ApplyOptions::default());

        for cell in dirty.cell_refs() {
            assert_eq!(
                via_basic.value(cell),
                via_fast.value(cell),
                "{flavor:?}: algorithms diverged at {cell:?}"
            );
            assert_eq!(
                via_basic.tuple(cell.row).is_positive(cell.attr),
                via_fast.tuple(cell.row).is_positive(cell.attr),
                "{flavor:?}: marks diverged at {cell:?}"
            );
        }
    }
}

#[test]
fn uis_pipeline_quality_and_consistency() {
    let world = UisWorld::generate(300, 77);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.10, 77).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::yago());
    let rules = UisWorld::rules(&kb);
    let ctx = MatchContext::new(&kb);

    let verdict = check_consistency(&ctx, &rules, &dirty, &ConsistencyOptions::default());
    assert!(verdict.is_consistent(), "{verdict:?}");

    let mut repaired = dirty.clone();
    let report =
        FastRepairer::new(&rules).repair_relation(&ctx, &mut repaired, &ApplyOptions::default());
    let extras = RepairExtras::from_report(&report);
    let quality = evaluate(&clean, &dirty, &repaired, &extras);
    assert!(quality.precision > 0.98, "{quality:?}");
    assert!(quality.recall > 0.6, "{quality:?}");
    assert!(repaired.positive_count() > dirty.len() * 3, "rich marking");
}

#[test]
fn repair_is_idempotent() {
    // Running the repairer twice changes nothing the second time: the
    // fixpoint is stable (termination, §III-B).
    let world = NobelWorld::generate(80, 5);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.15, 5).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::yago());
    let rules = NobelWorld::rules(&kb);
    let ctx = MatchContext::new(&kb);

    let mut once = dirty.clone();
    FastRepairer::new(&rules).repair_relation(&ctx, &mut once, &ApplyOptions::default());
    let mut twice = once.clone();
    let second_report =
        FastRepairer::new(&rules).repair_relation(&ctx, &mut twice, &ApplyOptions::default());
    for cell in once.cell_refs() {
        assert_eq!(once.value(cell), twice.value(cell));
    }
    // The second pass may re-mark (marks aren't persisted as rule state),
    // but must not rewrite any value.
    assert_eq!(second_report.total_changes(), 0);
}

#[test]
fn marks_only_grow_and_are_never_overwritten() {
    let world = NobelWorld::generate(60, 11);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.2, 11).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::yago());
    let rules = NobelWorld::rules(&kb);
    let ctx = MatchContext::new(&kb);

    let mut relation = dirty.clone();
    let report =
        FastRepairer::new(&rules).repair_relation(&ctx, &mut relation, &ApplyOptions::default());
    // Every repair step's rewritten column must not have been positive
    // before that step within the same tuple.
    for (row, tuple_report) in report.tuples.iter().enumerate() {
        let mut marked: Vec<dr_relation::AttrId> = Vec::new();
        for step in &tuple_report.steps {
            if let dr_core::RuleApplication::Repaired { col, .. } = &step.application {
                assert!(
                    !marked.contains(col),
                    "row {row}: rewrote a previously marked column"
                );
            }
            match &step.application {
                dr_core::RuleApplication::Repaired { newly_marked, .. }
                | dr_core::RuleApplication::ProofPositive { newly_marked, .. } => {
                    for &c in newly_marked {
                        assert!(!marked.contains(&c), "double-marking {c:?}");
                        marked.push(c);
                    }
                }
                dr_core::RuleApplication::DetectedWrong { newly_marked, .. } => {
                    for &c in newly_marked {
                        assert!(!marked.contains(&c), "double-marking {c:?}");
                        marked.push(c);
                    }
                }
                dr_core::RuleApplication::NotApplicable => {}
            }
        }
    }
}
