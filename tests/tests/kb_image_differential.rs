//! Differential tests for the `.drkb` mmap KB backend: the in-memory
//! [`dr_kb::KnowledgeBase`] is the oracle, the packed-and-reopened
//! [`dr_kb::MappedKb`] is the implementation under test. Randomized KBs
//! (proptest over generator seeds) pin the whole query surface; the Nobel
//! and UIS fixture worlds pin end-to-end `parallel_repair` outputs at one
//! and four worker threads.
//!
//! Set `DR_QUICK=1` to shrink the property-test case counts for CI smoke
//! legs; the fixture-world tests always run in full.

use dr_datasets::{KbFlavor, KbProfile, NobelWorld, UisWorld};
use dr_integration_tests::differential::{
    assert_backends_agree, assert_repairs_agree, pack_and_open, proptest_cases, random_kb,
};
use dr_kb::pack;
use dr_relation::noise::{inject, NoiseSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(48)))]

    /// Every query surface answers identically across backends, for
    /// arbitrary generator seeds — arbitrary taxonomy forests, label
    /// collisions, literal mixes, and edge densities.
    #[test]
    fn randomized_kbs_answer_identically(seed in any::<u64>()) {
        let kb = random_kb(seed);
        let packed = pack_and_open(&kb, "prop");
        assert_backends_agree(&kb, &packed.mapped);
    }

    /// Packing is deterministic for every generated KB: same triples,
    /// byte-identical image.
    #[test]
    fn packing_randomized_kbs_is_deterministic(seed in any::<u64>()) {
        let kb = random_kb(seed);
        prop_assert_eq!(pack(&kb), pack(&kb));
    }
}

/// The degenerate smallest KB round-trips too.
#[test]
fn empty_kb_round_trips() {
    let kb = dr_kb::graph::KbBuilder::new()
        .finalize()
        .expect("empty KB finalizes");
    let packed = pack_and_open(&kb, "empty");
    assert_backends_agree(&kb, &packed.mapped);
}

#[test]
fn nobel_mini_queries_and_repairs_agree() {
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let packed = pack_and_open(&kb, "nobel-mini");
    assert_backends_agree(&kb, &packed.mapped);
    // Rules built against the image must repair exactly like rules built
    // against the oracle — same candidates, same rewrites, same marks.
    let rules = dr_core::fixtures::figure4_rules(&packed.mapped);
    assert_repairs_agree(
        &kb,
        &packed.mapped,
        &rules,
        &dr_core::fixtures::table1_dirty(),
    );
}

#[test]
fn nobel_world_queries_and_repairs_agree() {
    let world = NobelWorld::generate(120, 23);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.12, 23).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = world.kb(&KbProfile::of(flavor));
        let packed = pack_and_open(&kb, "nobel");
        assert_backends_agree(&kb, &packed.mapped);
        let rules = NobelWorld::rules(&packed.mapped);
        assert_repairs_agree(&kb, &packed.mapped, &rules, &dirty);
    }
}

#[test]
fn uis_world_queries_and_repairs_agree() {
    let world = UisWorld::generate(150, 29);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.12, 29).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = world.kb(&KbProfile::of(flavor));
        let packed = pack_and_open(&kb, "uis");
        assert_backends_agree(&kb, &packed.mapped);
        let rules = UisWorld::rules(&packed.mapped);
        assert_repairs_agree(&kb, &packed.mapped, &rules, &dirty);
    }
}
