//! Differential tests for the disk snapshot layer (DESIGN.md §4a): a
//! registry warm-started from another registry's on-disk snapshot must be
//! *invisible* in repair outcomes — bit-identical to a cold, registry-free
//! run at every thread count — while its stats prove the snapshot was
//! actually loaded rather than silently cold-started.

use dr_core::repair::fast::FastRepairer;
use dr_core::{
    parallel_repair, ApplyOptions, CacheRegistry, MatchContext, ParallelOptions, RegistryConfig,
};
use dr_datasets::{KbFlavor, KbProfile, UisWorld};
use dr_relation::noise::{inject, NoiseSpec};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// A unique, created scratch directory under the system temp dir (no
/// tempfile crate in the workspace; pid + counter keeps concurrent test
/// processes and cases apart).
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dr-snap-eq-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A duplicate-heavy dirty relation (repeated rows maximize value-cache
/// reuse — exactly the entries a snapshot carries across processes).
fn heavy_dirty(world: &UisWorld, rate: f64, seed: u64, copies: usize) -> dr_relation::Relation {
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(rate, seed).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let mut heavy = dr_relation::Relation::new(dirty.schema().clone());
    for _ in 0..copies {
        for t in dirty.tuples() {
            heavy.push(t.clone());
        }
    }
    heavy
}

proptest! {
    // Each case does real file I/O (persist + reload); keep the case count
    // low and the relations small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The ISSUE acceptance property: repair through a registry warm-started
    /// from *disk* — a snapshot persisted by a different registry instance
    /// over a *rebuilt* (same-content) KB — is bit-identical to a cold,
    /// registry-free repair at 1, 2, 4, and 8 workers, and the fresh
    /// registry's stats report the warm load.
    #[test]
    fn disk_warm_repair_is_bit_identical_to_cold(
        seed in 0u64..500,
        n in 10usize..30,
        rate in 0.02f64..0.25,
        copies in 2usize..4,
        yago in any::<bool>(),
    ) {
        let dir = scratch_dir("prop");
        let flavor = if yago { KbFlavor::YagoLike } else { KbFlavor::DbpediaLike };

        let world = UisWorld::generate(n, seed);
        let dirty = heavy_dirty(&world, rate, seed, copies);
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = UisWorld::rules(&kb);

        // Cold baseline: registry-free sequential repair.
        let plain_ctx = MatchContext::new(&kb);
        let mut baseline = dirty.clone();
        let base_report = FastRepairer::new(&rules)
            .repair_relation(&plain_ctx, &mut baseline, &ApplyOptions::default());

        // "Process one": repair through a persisting registry, then flush
        // its value cache to disk.
        let writer = Arc::new(CacheRegistry::new(
            RegistryConfig::default().with_cache_dir(&dir),
        ));
        let writer_ctx = MatchContext::with_registry(&kb, Arc::clone(&writer));
        let mut first = dirty.clone();
        FastRepairer::new(&rules)
            .repair_relation(&writer_ctx, &mut first, &ApplyOptions::default());
        let saved = writer.persist();
        prop_assert!(saved >= 1, "repair populated a cache worth persisting");
        prop_assert_eq!(writer.stats().snapshot.saves, saved as u64);

        // "Process two": a fresh registry over a *rebuilt* KB. Same
        // deterministic construction ⇒ same content hash ⇒ the snapshot is
        // accepted, and the imported entries surface in the cache stats.
        let kb2 = world.kb(&KbProfile::of(flavor));
        let rules2 = UisWorld::rules(&kb2);
        let reader = Arc::new(CacheRegistry::new(
            RegistryConfig::default().with_cache_dir(&dir),
        ));
        let cache = reader.cache_for(&kb2, dirty.schema());
        prop_assert!(
            cache.stats().snapshot_warm > 0,
            "fresh registry imported the other registry's snapshot: {:?}",
            cache.stats()
        );
        let stats = reader.stats();
        prop_assert_eq!(stats.snapshot.warm_loads, 1);
        prop_assert_eq!(stats.snapshot.rejected, 0);
        prop_assert!(reader.snapshot_diagnostics().is_empty(),
            "clean load leaves no diagnostics: {:?}", reader.snapshot_diagnostics());

        // Disk-warm repair is bit-identical to the cold baseline, at every
        // thread count, sequential and parallel.
        let reader_ctx = MatchContext::with_registry(&kb2, Arc::clone(&reader));
        let mut warm_seq = dirty.clone();
        let warm_report = FastRepairer::new(&rules2)
            .repair_relation(&reader_ctx, &mut warm_seq, &ApplyOptions::default());
        for cell in baseline.cell_refs() {
            prop_assert_eq!(
                baseline.value(cell),
                warm_seq.value(cell),
                "disk-warm sequential diverged at {:?}",
                cell
            );
        }
        prop_assert_eq!(&base_report.tuples, &warm_report.tuples);

        for threads in [1usize, 2, 4, 8] {
            let mut parallel = dirty.clone();
            let par_report = parallel_repair(
                &reader_ctx,
                &rules2,
                &mut parallel,
                &ParallelOptions { threads, ..Default::default() },
            );
            for cell in baseline.cell_refs() {
                prop_assert_eq!(
                    baseline.value(cell),
                    parallel.value(cell),
                    "disk-warm {} threads diverged at {:?}",
                    threads,
                    cell
                );
                prop_assert_eq!(
                    baseline.tuple(cell.row).is_positive(cell.attr),
                    parallel.tuple(cell.row).is_positive(cell.attr),
                    "disk-warm {} threads: marks diverged at {:?}",
                    threads,
                    cell
                );
            }
            prop_assert_eq!(&base_report.tuples, &par_report.tuples);
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A snapshot is keyed by KB *content*: a registry pointed at the same
/// cache directory but holding a different KB (one more noise-free world
/// entity) must cold-start — absence of the matching snapshot file is not
/// an error and leaves no diagnostic.
#[test]
fn different_kb_content_cold_starts_cleanly() {
    let dir = scratch_dir("mismatch");
    let world = UisWorld::generate(16, 7);
    let dirty = heavy_dirty(&world, 0.1, 7, 2);
    let kb = world.kb(&KbProfile::yago());
    let rules = UisWorld::rules(&kb);

    let writer = Arc::new(CacheRegistry::new(
        RegistryConfig::default().with_cache_dir(&dir),
    ));
    let ctx = MatchContext::with_registry(&kb, Arc::clone(&writer));
    let mut first = dirty.clone();
    FastRepairer::new(&rules).repair_relation(&ctx, &mut first, &ApplyOptions::default());
    assert!(writer.persist() >= 1);

    // A different world ⇒ different KB content ⇒ different snapshot key.
    let other_world = UisWorld::generate(17, 8);
    let other_kb = other_world.kb(&KbProfile::yago());
    let reader = Arc::new(CacheRegistry::new(
        RegistryConfig::default().with_cache_dir(&dir),
    ));
    let cache = reader.cache_for(&other_kb, dirty.schema());
    assert_eq!(cache.stats().snapshot_warm, 0, "no matching snapshot");
    assert_eq!(cache.stats().snapshot_cold, 1);
    let stats = reader.stats();
    assert_eq!(stats.snapshot.warm_loads, 0);
    assert_eq!(stats.snapshot.cold_loads, 1);
    assert_eq!(stats.snapshot.rejected, 0, "absence is not a rejection");
    assert!(reader.snapshot_diagnostics().is_empty());

    std::fs::remove_dir_all(&dir).ok();
}
