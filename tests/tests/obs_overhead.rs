//! Overhead guard for the observability layer (DESIGN.md §4d): an attached
//! `Obs` handle whose tracer samples at rate 0 must be nearly free —
//! counters are padded per-thread atomics and unsampled rows skip event
//! construction entirely. This pins the "pay only for what you sample"
//! claim with a wall-clock budget on the paper's running example (Table I).

use dr_core::{fast_repair, ApplyOptions, MatchContext};
use dr_kb::fixtures::nobel_mini_kb;
use dr_obs::{Obs, Sampler, Tracer};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Table I (the paper's running example) duplicated to a workload large
/// enough that per-tuple timing dominates fixed setup cost.
fn table1_workload(copies: usize) -> dr_relation::Relation {
    let mut relation = dr_relation::Relation::new(dr_core::fixtures::nobel_schema());
    let base = dr_core::fixtures::table1_dirty();
    for _ in 0..copies {
        for t in base.tuples() {
            relation.push(t.clone());
        }
    }
    relation
}

/// One timed repair pass under `ctx`.
fn one_pass(ctx: &MatchContext<'_>, rules: &[dr_core::DetectiveRule]) -> Duration {
    let opts = ApplyOptions::default();
    let mut relation = table1_workload(128);
    let start = Instant::now();
    fast_repair(ctx, rules, &mut relation, &opts);
    start.elapsed()
}

#[test]
fn rate_zero_observability_is_nearly_free() {
    let kb = nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);

    let bare = MatchContext::new(&kb);
    let obs = Arc::new(Obs::with_tracer(Tracer::new(
        Box::new(std::io::sink()),
        Sampler::new(42, 0.0),
    )));
    let traced = MatchContext::new(&kb).with_obs(obs);

    // Warm both paths (indexes, allocator) before measuring.
    one_pass(&bare, &rules);
    one_pass(&traced, &rules);

    // Timing on shared CI hardware is noisy, so interleave the two paths
    // (drift hits both minima equally) and accept as soon as the running
    // minima land within the 2% budget.
    let (mut base, mut with_obs) = (Duration::MAX, Duration::MAX);
    for round in 1..=60 {
        base = base.min(one_pass(&bare, &rules));
        with_obs = with_obs.min(one_pass(&traced, &rules));
        if round >= 5 && with_obs.as_secs_f64() <= base.as_secs_f64() * 1.02 {
            return;
        }
    }
    panic!(
        "rate-0 observability exceeded the 2% overhead budget: \
         base {base:?} vs obs {with_obs:?}"
    );
}
