//! Differential tests for KB deltas: applying a [`dr_kb::KbDelta`] in
//! place (`KnowledgeBase::apply_delta`) must be indistinguishable from
//! rebuilding the KB from scratch with the same ops appended to the
//! original construction sequence — identical ids, identical content
//! hash, byte-identical packed image, agreement on every query surface,
//! and byte-identical `parallel_repair` outputs at one and four worker
//! threads. A rejected delta (taxonomy cycle) must leave the KB — and its
//! generation — untouched.
//!
//! Set `DR_QUICK=1` to shrink the property-test case counts for CI smoke
//! legs.

use dr_integration_tests::differential::{
    assert_backends_agree, assert_delta_equals_rebuild, assert_repairs_agree, pack_and_open,
    proptest_cases, random_delta, random_kb, random_kb_builder, replay_delta,
};
use dr_kb::fixtures::{nobel_mini_builder, nobel_mini_kb};
use dr_kb::{DeltaNode, KbDelta};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(48)))]

    /// In-place delta ≡ rebuild, for arbitrary generator seeds and
    /// arbitrary op mixes (edge inserts/retracts over existing and fresh
    /// entities, type edits, taxonomy edits). On the cycle-rejection
    /// branch the delta must be perfectly atomic.
    #[test]
    fn randomized_deltas_match_rebuild(seed in any::<u64>(), delta_seed in any::<u64>()) {
        let mut live = random_kb(seed);
        let generation_before = live.generation();
        let hash_before = live.content_hash();
        let delta = random_delta(delta_seed, &live);

        match live.apply_delta(&delta) {
            Ok(_footprint) => {
                prop_assert_ne!(live.generation(), generation_before, "delta must bump the generation");
                let mut b = random_kb_builder(seed);
                replay_delta(&mut b, &delta);
                let rebuilt = b.finalize().expect("live apply succeeded; rebuild must too");
                assert_delta_equals_rebuild(&live, &rebuilt);
            }
            Err(_cycle) => {
                prop_assert_eq!(live.generation(), generation_before, "rejected delta must not bump");
                prop_assert_eq!(live.content_hash(), hash_before, "rejected delta must not mutate");
                assert_delta_equals_rebuild(&live, &random_kb(seed));
            }
        }
    }

    /// A delta'd KB still packs into a `.drkb` image that answers
    /// identically through the mmap backend — deltas compose with the
    /// out-of-core path.
    #[test]
    fn delta_kbs_pack_and_answer_identically(seed in any::<u64>(), delta_seed in any::<u64>()) {
        let mut live = random_kb(seed);
        let delta = random_delta(delta_seed, &live);
        if live.apply_delta(&delta).is_ok() {
            let packed = pack_and_open(&live, "delta");
            assert_backends_agree(&live, &packed.mapped);
        }
    }

    /// Repairs against a delta'd nobel-mini KB are byte-identical to
    /// repairs against its rebuilt twin, at one and four worker threads —
    /// the op mix drawn from the fixture's own vocabulary so deltas hit
    /// the regions the Figure-4 rules read.
    #[test]
    fn nobel_mini_delta_repairs_match_rebuild(delta_seed in any::<u64>()) {
        let mut live = nobel_mini_kb();
        let delta = random_delta(delta_seed, &live);
        if live.apply_delta(&delta).is_ok() {
            let mut b = nobel_mini_builder();
            replay_delta(&mut b, &delta);
            let rebuilt = b.finalize().expect("live apply succeeded; rebuild must too");
            assert_delta_equals_rebuild(&live, &rebuilt);
            let rules = dr_core::fixtures::figure4_rules(&live);
            assert_repairs_agree(&live, &rebuilt, &rules, &dr_core::fixtures::table1_dirty());
        }
    }
}

/// A targeted delta that moves the Technion from Haifa to Karcag: the ϕ2
/// (City) repair evidence changes, and the delta'd KB must still repair
/// exactly like its rebuilt twin — including through the mmap backend.
#[test]
fn relocation_delta_repairs_match_rebuild_and_image() {
    let mut live = nobel_mini_kb();
    let mut delta = KbDelta::new();
    delta
        .retract(
            "Israel Institute of Technology",
            "locatedIn",
            DeltaNode::Instance("Haifa".into()),
        )
        .insert(
            "Israel Institute of Technology",
            "locatedIn",
            DeltaNode::Instance("Karcag".into()),
        )
        .add_type("Jerusalem", "city")
        .insert(
            "Jerusalem",
            "locatedIn",
            DeltaNode::Instance("Israel".into()),
        );
    let footprint = live.apply_delta(&delta).expect("acyclic delta applies");
    assert!(!footprint.is_empty(), "edge + type edits leave a footprint");

    let mut b = nobel_mini_builder();
    replay_delta(&mut b, &delta);
    let rebuilt = b.finalize().expect("rebuild finalizes");
    assert_delta_equals_rebuild(&live, &rebuilt);

    let rules = dr_core::fixtures::figure4_rules(&live);
    let dirty = dr_core::fixtures::table1_dirty();
    assert_repairs_agree(&live, &rebuilt, &rules, &dirty);

    let packed = pack_and_open(&live, "nobel-delta");
    assert_backends_agree(&live, &packed.mapped);
    let image_rules = dr_core::fixtures::figure4_rules(&packed.mapped);
    assert_repairs_agree(&live, &packed.mapped, &image_rules, &dirty);
}

/// An empty delta is a generation bump and nothing else.
#[test]
fn empty_delta_only_bumps_generation() {
    let mut live = nobel_mini_kb();
    let hash_before = live.content_hash();
    let generation_before = live.generation();
    let footprint = live
        .apply_delta(&KbDelta::new())
        .expect("empty delta applies");
    assert!(footprint.is_empty());
    assert_ne!(live.generation(), generation_before);
    assert_eq!(live.content_hash(), hash_before);
    assert_delta_equals_rebuild(&live, &nobel_mini_kb());
}
