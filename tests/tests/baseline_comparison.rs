//! Cross-system comparison invariants: the qualitative relationships the
//! paper's evaluation claims must hold on our workloads too.

use dr_baselines::{mine_constant_cfds, Fd};
use dr_core::MatchContext;
use dr_datasets::{KbProfile, NobelWorld, UisWorld};
use dr_eval::runner::{self, fds, katara_pattern, run_drs, run_katara, DrAlgo};
use dr_relation::noise::{inject, NoiseSpec};

fn nobel_setup() -> (NobelWorld, dr_relation::Relation, dr_relation::Relation) {
    let world = NobelWorld::generate(250, 3);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.10, 3).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    (world, clean, dirty)
}

#[test]
fn drs_beat_katara_on_precision_and_marking() {
    let (world, clean, dirty) = nobel_setup();
    let kb = world.kb(&KbProfile::yago());
    let rules = NobelWorld::rules(&kb);
    let ctx = MatchContext::new(&kb);

    let drs = run_drs(&ctx, &rules, &clean, &dirty, DrAlgo::Fast);
    let pattern = katara_pattern(&rules);
    let katara = run_katara(&ctx, &pattern, &clean, &dirty);

    assert!(drs.quality.precision > katara.quality.precision);
    assert!(drs.pos_marks > katara.pos_marks);
    assert!(drs.quality.f_measure > katara.quality.f_measure);
}

#[test]
fn drs_beat_ic_baselines_on_f_measure() {
    let (world, clean, dirty) = nobel_setup();
    let kb = world.kb(&KbProfile::yago());
    let rules = NobelWorld::rules(&kb);
    let ctx = MatchContext::new(&kb);

    let drs = run_drs(&ctx, &rules, &clean, &dirty, DrAlgo::Fast);
    let fd_list = fds::nobel(clean.schema());
    let llunatic = runner::run_llunatic(&fd_list, &clean, &dirty);
    let cfds = mine_constant_cfds(&clean, &fd_list);
    let ccfd = runner::run_ccfd(&cfds, &clean, &dirty);

    assert!(
        drs.quality.f_measure > llunatic.quality.f_measure,
        "DRs {:?} vs Llunatic {:?}",
        drs.quality,
        llunatic.quality
    );
    assert!(
        drs.quality.f_measure > ccfd.quality.f_measure,
        "DRs {:?} vs CFDs {:?}",
        drs.quality,
        ccfd.quality
    );
}

#[test]
fn constant_cfds_are_fastest_but_limited() {
    let world = UisWorld::generate(2_000, 9);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.10, 9).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::yago());
    let rules = UisWorld::rules(&kb);
    let ctx = MatchContext::new(&kb);

    let drs = run_drs(&ctx, &rules, &clean, &dirty, DrAlgo::Fast);
    let fd_list = fds::uis(clean.schema());
    let cfds = mine_constant_cfds(&clean, &fd_list);
    let ccfd = runner::run_ccfd(&cfds, &clean, &dirty);

    // The paper: "constant CFDs use only instances, thus it can repair 100K
    // tuples within 1s" — far faster than graph matching.
    assert!(ccfd.seconds < drs.seconds);
    // But they can only fix RHS columns of the mined FDs; the DR recall is
    // higher.
    assert!(drs.quality.recall > ccfd.quality.recall);
}

#[test]
fn llunatic_degrades_with_error_rate_but_drs_hold() {
    let world = NobelWorld::generate(300, 31);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let kb = world.kb(&KbProfile::yago());
    let rules = NobelWorld::rules(&kb);
    let ctx = MatchContext::new(&kb);
    let fd_list: Vec<Fd> = fds::nobel(clean.schema());

    let mut dr_precisions = Vec::new();
    let mut llunatic_f = Vec::new();
    for rate in [0.04, 0.20] {
        let (dirty, _) = inject(
            &clean,
            &NoiseSpec::new(rate, 31).with_excluded(vec![name]),
            &world.semantic_source(),
        );
        let drs = run_drs(&ctx, &rules, &clean, &dirty, DrAlgo::Fast);
        dr_precisions.push(drs.quality.precision);
        let llunatic = runner::run_llunatic(&fd_list, &clean, &dirty);
        llunatic_f.push(llunatic.quality.f_measure);
    }
    // DR precision stays (near-)perfect at both ends of the sweep.
    assert!(dr_precisions.iter().all(|&p| p > 0.97), "{dr_precisions:?}");
    // DRs dominate Llunatic at the high-error end.
    assert!(dr_precisions[1] > llunatic_f[1]);
}
