//! Differential repair tests: the three repair engines — `bRepair`
//! (Algorithm 1), `fRepair` (Algorithm 2), and the work-stealing parallel
//! repairer — must produce identical relations on the Nobel and UIS
//! fixtures.
//!
//! The comparison is tiered by what each pair actually guarantees:
//!
//! * **basic vs fast** — the chase is Church–Rosser, so the *fixpoint* is
//!   shared but the per-tuple step order may differ. Compared on final
//!   values, positive marks, and the set of rewritten cells.
//! * **fast vs parallel** — the parallel repairer runs the fast repairer
//!   per row, so the full [`RelationReport`] (steps included) must match.

use dr_core::repair::basic::basic_repair;
use dr_core::{
    parallel_repair, ApplyOptions, FastRepairer, MatchContext, ParallelOptions, RelationReport,
};
use dr_datasets::{KbFlavor, KbProfile, NobelWorld, UisWorld};
use dr_kb::KnowledgeBase;
use dr_relation::noise::{inject, NoiseSpec};
use dr_relation::{AttrId, Relation};

/// The cells each tuple's trace rewrote, as a sorted per-row list.
fn rewritten_cells(report: &RelationReport) -> Vec<Vec<AttrId>> {
    report
        .tuples
        .iter()
        .map(|t| {
            let mut cols: Vec<AttrId> = t.rewrites().iter().map(|(col, _, _)| *col).collect();
            cols.sort_unstable();
            cols.dedup();
            cols
        })
        .collect()
}

fn assert_same_relation(a: &Relation, b: &Relation, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: row counts diverged");
    for cell in a.cell_refs() {
        assert_eq!(a.value(cell), b.value(cell), "{label}: value at {cell:?}");
        assert_eq!(
            a.tuple(cell.row).is_positive(cell.attr),
            b.tuple(cell.row).is_positive(cell.attr),
            "{label}: positive mark at {cell:?}"
        );
    }
}

/// Runs all three engines on `(kb, rules, dirty)` and cross-checks them.
fn differential_check(kb: &KnowledgeBase, rules: &[dr_core::DetectiveRule], dirty: &Relation) {
    let ctx = MatchContext::new(kb);
    let opts = ApplyOptions::default();

    let mut basic = dirty.clone();
    let basic_report = basic_repair(&ctx, rules, &mut basic, &opts);

    let mut fast = dirty.clone();
    let fast_report = FastRepairer::new(rules).repair_relation(&ctx, &mut fast, &opts);

    // Tier 1: same fixpoint, same marks, same rewritten cells.
    assert_same_relation(&basic, &fast, "basic vs fast");
    assert_eq!(
        rewritten_cells(&basic_report),
        rewritten_cells(&fast_report),
        "basic vs fast: rewritten cells diverged"
    );
    assert_eq!(
        basic_report.total_applications(),
        fast_report.total_applications(),
        "basic vs fast: application counts diverged"
    );
    assert_eq!(
        basic_report.total_changes(),
        fast_report.total_changes(),
        "basic vs fast: change counts diverged"
    );

    // Tier 2: the parallel repairer must reproduce the fast repairer's
    // report verbatim, at several worker counts and claim granularities.
    for threads in [2usize, 4] {
        for batch_claim in [false, true] {
            let mut parallel = dirty.clone();
            let par_report = parallel_repair(
                &ctx,
                rules,
                &mut parallel,
                &ParallelOptions {
                    threads,
                    batch_claim,
                    ..Default::default()
                },
            );
            let label = format!("fast vs parallel({threads} threads, batch={batch_claim})");
            assert_same_relation(&fast, &parallel, &label);
            assert_eq!(
                fast_report.tuples, par_report.tuples,
                "{label}: reports diverged"
            );
        }
    }
}

#[test]
fn engines_agree_on_nobel() {
    let world = NobelWorld::generate(120, 23);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.12, 23).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = NobelWorld::rules(&kb);
        differential_check(&kb, &rules, &dirty);
    }
}

#[test]
fn engines_agree_on_uis() {
    let world = UisWorld::generate(150, 29);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.12, 29).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = UisWorld::rules(&kb);
        differential_check(&kb, &rules, &dirty);
    }
}

/// The paper's own running example (Table I) through all three engines.
#[test]
fn engines_agree_on_table1() {
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let rules = dr_core::fixtures::figure4_rules(&kb);
    differential_check(&kb, &rules, &dr_core::fixtures::table1_dirty());
}
