//! End-to-end §III-A validation: rules *generated from examples* must clean
//! the Nobel dataset comparably to the hand-written rule set.

use dr_core::rule::generation::{
    generate_rules, rule_repairs_examples, rule_respects_positives, GenerationConfig,
};
use dr_core::{fast_repair, ApplyOptions, DetectiveRule, MatchContext};
use dr_datasets::{KbProfile, NobelWorld};
use dr_eval::{evaluate, RepairExtras};
use dr_relation::noise::{inject, NoiseSpec};
use dr_relation::{AttrId, Relation, Tuple};

/// Builds curated example sets for one target attribute: positives are
/// fully covered clean tuples; negatives hold the dataset's own semantic
/// confusion in the target column.
fn build_examples(
    world: &NobelWorld,
    kb: &dr_kb::KnowledgeBase,
    clean: &Relation,
    target_name: &str,
    n: usize,
) -> Option<(Relation, Relation, Relation, AttrId)> {
    let schema = clean.schema().clone();
    let target = schema.attr_expect(target_name);
    // Every person-incident predicate the City/Institution/Country rules
    // rely on: a person missing any of them (KB coverage gaps) makes some
    // generated rule unverifiable on that example through no fault of the
    // rule, so examples are restricted to fully covered persons.
    let person_preds: Vec<_> = [
        "worksAt",
        "wasBornIn",
        "graduatedFrom",
        "isCitizenOf",
        "bornAt",
    ]
    .iter()
    .map(|p| kb.pred_named(p))
    .collect::<Option<_>>()?;

    let mut positives = Relation::new(schema.clone());
    let mut negatives = Relation::new(schema.clone());
    let mut truth = Relation::new(schema.clone());
    for (row, tuple) in clean.tuples().iter().enumerate() {
        if positives.len() >= n {
            break;
        }
        let person = &world.persons[row];
        let covered = kb
            .instances_labeled(&person.name)
            .iter()
            .any(|&i| person_preds.iter().all(|&p| !kb.objects(i, p).is_empty()));
        if !covered {
            continue;
        }
        positives.push(tuple.clone());
        // The matching semantic confusion.
        let wrong = match target_name {
            "City" => world.cities[person.birth_city].0.clone(),
            "Institution" => world.institutions[person.grad_institution].0.clone(),
            "Country" => world.countries[world.cities[person.birth_city].1].clone(),
            other => panic!("no confusion defined for {other}"),
        };
        if wrong == tuple.get(target) {
            continue;
        }
        let mut cells: Vec<String> = tuple.cells().to_vec();
        cells[target.index()] = wrong;
        negatives.push(Tuple::new(cells));
        truth.push(tuple.clone());
    }
    Some((positives, negatives, truth, target))
}

#[test]
fn generated_rules_match_handwritten_quality() {
    let world = NobelWorld::generate(400, 321);
    let kb = world.kb(&KbProfile::yago());
    let ctx = MatchContext::new(&kb);
    let clean = world.clean_relation();

    // Generate + verify one rule per target attribute, like the paper's
    // expert picking from candidates.
    let cfg = GenerationConfig::default();
    let mut generated: Vec<DetectiveRule> = Vec::new();
    for target in ["City", "Institution", "Country"] {
        let (positives, negatives, truth, attr) =
            build_examples(&world, &kb, &clean, target, 30).expect("examples");
        assert!(negatives.len() >= 10, "{target}: need enough negatives");
        let candidates = generate_rules(&ctx, attr, &positives, &negatives, &cfg);
        let verified = candidates
            .into_iter()
            .find(|c| {
                rule_repairs_examples(&ctx, &c.rule, &negatives, &truth)
                    && rule_respects_positives(&ctx, &c.rule, &positives)
            })
            .unwrap_or_else(|| panic!("no verified candidate for {target}"));
        generated.push(verified.rule);
    }
    assert_eq!(generated.len(), 3);

    // Clean a noisy version of the dataset with the generated rules and
    // with the hand-written set (restricted to the same three columns).
    let name_attr = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.10, 321)
            .with_typo_share(0.0) // semantic errors: what generated rules target
            .with_excluded(vec![name_attr]),
        &world.semantic_source(),
    );

    let handwritten: Vec<DetectiveRule> = NobelWorld::rules(&kb)
        .into_iter()
        .filter(|r| {
            let col = clean.schema().attr_name(r.repair_col()).to_owned();
            ["City", "Institution", "Country"].contains(&col.as_str())
        })
        .collect();

    let mut via_generated = dirty.clone();
    let report = fast_repair(
        &ctx,
        &generated,
        &mut via_generated,
        &ApplyOptions::default(),
    );
    let gen_quality = evaluate(
        &clean,
        &dirty,
        &via_generated,
        &RepairExtras::from_report(&report),
    );

    let mut via_handwritten = dirty.clone();
    let report = fast_repair(
        &ctx,
        &handwritten,
        &mut via_handwritten,
        &ApplyOptions::default(),
    );
    let hand_quality = evaluate(
        &clean,
        &dirty,
        &via_handwritten,
        &RepairExtras::from_report(&report),
    );

    assert!(
        gen_quality.precision > 0.97,
        "generated rules stay precise: {gen_quality:?}"
    );
    assert!(
        gen_quality.recall + 0.1 >= hand_quality.recall,
        "generated ({gen_quality:?}) should approach hand-written ({hand_quality:?})"
    );
}
