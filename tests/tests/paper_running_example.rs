//! The paper's running example, end to end across crates: Figure 1 (KB),
//! Table I (relation), Figure 4 (rules), Examples 5–10 (semantics), scored
//! with the §V metrics.

use dr_core::fixtures::{figure4_rules, nobel_schema, table1_clean, table1_dirty};
use dr_core::repair::fast::FastRepairer;
use dr_core::repair::multi::{multi_repair_tuple, MultiOptions};
use dr_core::rule::consistency::{check_consistency, ConsistencyOptions};
use dr_core::{ApplyOptions, MatchContext};
use dr_eval::{evaluate, RepairExtras};
use dr_kb::fixtures::nobel_mini_kb;

#[test]
fn table1_repairs_with_perfect_quality() {
    let kb = nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let ctx = MatchContext::new(&kb);

    let clean = table1_clean();
    let dirty = table1_dirty();
    let mut repaired = dirty.clone();
    let repairer = FastRepairer::new(&rules);
    let report = repairer.repair_relation(&ctx, &mut repaired, &ApplyOptions::default());

    let extras = RepairExtras::from_report(&report);
    let quality = evaluate(&clean, &dirty, &repaired, &extras);
    assert_eq!(quality.precision, 1.0, "{quality:?}");
    assert_eq!(quality.recall, 1.0, "{quality:?}");
    assert_eq!(quality.errors, 7, "Table I has seven highlighted errors");

    // Every cell of every tuple ends positively marked (Examples 7 and 9).
    assert_eq!(repaired.positive_count(), 24);
}

#[test]
fn figure4_rules_are_consistent() {
    let kb = nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let ctx = MatchContext::new(&kb);
    let verdict = check_consistency(
        &ctx,
        &rules,
        &table1_dirty(),
        &ConsistencyOptions::default(),
    );
    assert!(verdict.is_consistent());
}

#[test]
fn example10_multi_version_fixpoints() {
    let kb = nobel_mini_kb();
    let rules = figure4_rules(&kb);
    let ctx = MatchContext::new(&kb);
    let schema = nobel_schema();
    let r4 = table1_dirty().tuple(3).clone();
    let versions = multi_repair_tuple(&ctx, &rules, &r4, &MultiOptions::default());
    assert_eq!(versions.len(), 2);
    let inst = schema.attr_expect("Institution");
    let cities: Vec<&str> = versions
        .iter()
        .map(|v| v.get(schema.attr_expect("City")))
        .collect();
    let insts: Vec<&str> = versions.iter().map(|v| v.get(inst)).collect();
    assert!(insts.contains(&"UC Berkeley") && insts.contains(&"University of Manchester"));
    assert!(cities.contains(&"Berkeley") && cities.contains(&"Manchester"));
}

#[test]
fn katara_on_table1_matches_paper_behaviour() {
    // KATARA full-matches nothing in the dirty Table I (every row has an
    // error) and repairs via partial matches.
    let kb = nobel_mini_kb();
    let ctx = MatchContext::new(&kb);
    let schema = nobel_schema();
    let pattern = dr_baselines::nobel_table_pattern(&kb, &schema);
    let katara = dr_baselines::Katara::new(&ctx, &pattern);
    let mut working = table1_dirty();
    let report = katara.clean(&mut working);
    assert_eq!(report.marked_positive, 0, "no dirty row fully matches");
    assert!(!report.repairs.is_empty());

    // On the clean table, everything full-matches.
    let mut clean = table1_clean();
    let report = katara.clean(&mut clean);
    assert_eq!(report.marked_positive, 24);
}
