//! Pins the committed `data/` artifacts: the running example's KB, rules,
//! and table must stay loadable and must clean end to end, exactly like
//! `clean_csv` consumes them.

use dr_core::repair::fast::FastRepairer;
use dr_core::{parse_rules, ApplyOptions, MatchContext};
use dr_kb::ntriples;
use dr_relation::csv;
use std::path::PathBuf;

fn data(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .join("data")
        .join(file)
}

#[test]
fn committed_artifacts_clean_table1() {
    let kb = ntriples::load_file(data("figure1.nt")).expect("figure1.nt loads");
    assert_eq!(kb.num_instances(), 28);

    let mut relation = csv::load_file(data("table1.csv")).expect("table1.csv loads");
    assert_eq!(relation.len(), 4);
    assert_eq!(relation.schema().arity(), 6);

    let rule_text = std::fs::read_to_string(data("figure4.dr")).expect("figure4.dr reads");
    let rules = parse_rules(&rule_text, relation.schema(), &kb).expect("figure4.dr parses");
    assert_eq!(rules.len(), 4);

    let ctx = MatchContext::new(&kb);
    let report =
        FastRepairer::new(&rules).repair_relation(&ctx, &mut relation, &ApplyOptions::default());
    assert!(report.total_changes() >= 6, "Table I has repairs to make");

    // The cleaned table matches the published corrections.
    let clean = dr_core::fixtures::table1_clean();
    for (row, expect) in clean.tuples().iter().enumerate() {
        assert_eq!(
            relation.tuple(row).cells(),
            expect.cells(),
            "row {row} diverges from Table I's bracketed corrections"
        );
    }
}

#[test]
fn committed_rules_roundtrip_through_the_dsl() {
    let kb = ntriples::load_file(data("figure1.nt")).unwrap();
    let schema = dr_core::fixtures::nobel_schema();
    let text = std::fs::read_to_string(data("figure4.dr")).unwrap();
    let rules = parse_rules(&text, &schema, &kb).unwrap();
    let rendered = dr_core::rules_to_text(&rules, &schema, &kb);
    let back = parse_rules(&rendered, &schema, &kb).unwrap();
    assert_eq!(rules.len(), back.len());
    for (a, b) in rules.iter().zip(&back) {
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.evidence(), b.evidence());
    }
}
