//! Staleness soundness for footprint-based cache invalidation and
//! selective re-repair (DESIGN.md §10):
//!
//! 1. After any delta, no surviving [`dr_core::ValueCache`] entry's
//!    recorded read footprint intersects the delta's write footprint —
//!    `count_stale` must report zero once `invalidate` (or the registry's
//!    `apply_delta` migration) has run.
//! 2. `parallel_repair_selective` — re-running only the rows whose prior
//!    provenance depended on a changed KB region — produces outcomes
//!    identical to a full re-repair, on the Nobel and UIS fixture worlds,
//!    at one and four worker threads.
//!
//! Set `DR_QUICK=1` to shrink the property-test case counts.

use std::sync::Arc;

use dr_core::{
    parallel_repair, parallel_repair_selective, CacheRegistry, DetectiveRule, MatchContext,
    ParallelOptions, RegistryConfig,
};
use dr_datasets::{KbProfile, NobelWorld, UisWorld};
use dr_integration_tests::differential::{proptest_cases, random_delta};
use dr_kb::{DeltaNode, KbDelta, KnowledgeBase};
use dr_relation::noise::{inject, NoiseSpec};
use dr_relation::Relation;
use proptest::prelude::*;

/// Warms a registry-backed value cache by repairing `dirty` against `kb`,
/// then returns the cache.
fn warm_cache(
    kb: &KnowledgeBase,
    rules: &[DetectiveRule],
    dirty: &Relation,
    registry: &Arc<CacheRegistry>,
) -> Arc<dr_core::ValueCache> {
    let ctx = MatchContext::with_registry(kb, Arc::clone(registry));
    let mut relation = dirty.clone();
    let opts = ParallelOptions {
        threads: 2,
        ..Default::default()
    };
    parallel_repair(&ctx, rules, &mut relation, &opts);
    let cache = registry.cache_for(kb, dirty.schema());
    assert!(!cache.is_empty(), "repair must populate the value cache");
    cache
}

/// Asserts full re-repair and selective re-repair agree cell-for-cell and
/// report-for-report after `delta` moves `kb` to the next generation.
fn assert_selective_matches_full(
    kb: &KnowledgeBase,
    rules: &[DetectiveRule],
    dirty: &Relation,
    delta: &KbDelta,
) {
    for threads in [1usize, 4] {
        let opts = ParallelOptions {
            threads,
            ..Default::default()
        };

        let ctx = MatchContext::new(kb);
        let mut prior_repaired = dirty.clone();
        let prior = parallel_repair(&ctx, rules, &mut prior_repaired, &opts);

        let mut next_kb = kb.clone();
        let footprint = next_kb
            .apply_delta(delta)
            .expect("test deltas keep the taxonomy acyclic");
        let next_ctx = MatchContext::new(&next_kb);

        let mut full = dirty.clone();
        let full_report = parallel_repair(&next_ctx, rules, &mut full, &opts);

        let mut selective = dirty.clone();
        let selective_report = parallel_repair_selective(
            &next_ctx,
            rules,
            &mut selective,
            &opts,
            &prior,
            &prior_repaired,
            &footprint,
        );

        let selected = selective_report
            .selected_rows
            .expect("selective mode reports its selection");
        assert!(selected <= dirty.len());
        let label = format!("selective vs full ({threads} threads, {selected} selected)");
        assert_eq!(full.len(), selective.len(), "{label}: row counts");
        for cell in full.cell_refs() {
            assert_eq!(
                full.value(cell),
                selective.value(cell),
                "{label}: value at {cell:?}"
            );
            assert_eq!(
                full.tuple(cell.row).is_positive(cell.attr),
                selective.tuple(cell.row).is_positive(cell.attr),
                "{label}: positive mark at {cell:?}"
            );
        }
        assert_eq!(
            full_report.tuples, selective_report.tuples,
            "{label}: per-tuple reports diverged"
        );
    }
}

fn nobel_fixture(rows: usize, seed: u64) -> (KnowledgeBase, Vec<DetectiveRule>, Relation) {
    let world = NobelWorld::generate(rows, seed);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.15, seed).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::yago());
    let rules = NobelWorld::rules(&kb);
    (kb, rules, dirty)
}

fn uis_fixture(rows: usize, seed: u64) -> (KnowledgeBase, Vec<DetectiveRule>, Relation) {
    let world = UisWorld::generate(rows, seed);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.15, seed).with_excluded(vec![name]),
        &world.semantic_source(),
    );
    let kb = world.kb(&KbProfile::yago());
    let rules = UisWorld::rules(&kb);
    (kb, rules, dirty)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(24)))]

    /// Staleness soundness, direct form: warm a cache through repair,
    /// apply an arbitrary delta, invalidate with its write footprint — no
    /// surviving entry may still intersect it.
    #[test]
    fn no_surviving_entry_intersects_the_delta_footprint(delta_seed in any::<u64>()) {
        let (kb, rules, dirty) = nobel_fixture(40, 7);
        let registry = Arc::new(CacheRegistry::new(RegistryConfig::default()));
        let cache = warm_cache(&kb, &rules, &dirty, &registry);

        let delta = random_delta(delta_seed, &kb);
        let mut next = kb.clone();
        let Ok(footprint) = next.apply_delta(&delta) else {
            return Ok(()); // cycle-rejected delta: nothing to invalidate
        };
        cache.invalidate(&footprint);
        prop_assert_eq!(
            cache.count_stale(&footprint),
            0,
            "entries intersecting the delta footprint survived invalidation"
        );
    }

    /// Staleness soundness, registry form: `CacheRegistry::apply_delta`
    /// migrates the cache to the next generation with zero stale entries
    /// surviving, and accounts every swept entry in its stats.
    #[test]
    fn registry_migration_leaves_no_stale_entries(delta_seed in any::<u64>()) {
        let (kb, rules, dirty) = nobel_fixture(40, 11);
        let registry = Arc::new(CacheRegistry::new(RegistryConfig::default()));
        let cache = warm_cache(&kb, &rules, &dirty, &registry);
        let entries_before = cache.len();

        let delta = random_delta(delta_seed, &kb);
        let mut next = kb.clone();
        let Ok(footprint) = next.apply_delta(&delta) else {
            return Ok(());
        };
        let swept = registry.apply_delta(
            kb.generation(),
            next.generation(),
            next.content_hash(),
            &footprint,
        );
        prop_assert_eq!(registry.stats().invalidated_entries, swept);

        // The migrated cache is reachable under the *next* generation…
        let migrated = registry.cache_for(&next, dirty.schema());
        prop_assert!(Arc::ptr_eq(&cache, &migrated), "migration must re-key, not recreate");
        prop_assert_eq!(migrated.count_stale(&footprint), 0);
        // …and everything the delta did not touch survived warm.
        prop_assert_eq!(migrated.len() as u64, entries_before as u64 - swept);
    }

    /// Selective re-repair ≡ full re-repair under arbitrary deltas on the
    /// Nobel world.
    #[test]
    fn nobel_selective_matches_full(delta_seed in any::<u64>()) {
        let (kb, rules, dirty) = nobel_fixture(36, 13);
        let delta = random_delta(delta_seed, &kb);
        if kb.clone().apply_delta(&delta).is_ok() {
            assert_selective_matches_full(&kb, &rules, &dirty, &delta);
        }
    }

    /// Selective re-repair ≡ full re-repair under arbitrary deltas on the
    /// UIS world.
    #[test]
    fn uis_selective_matches_full(delta_seed in any::<u64>()) {
        let (kb, rules, dirty) = uis_fixture(36, 17);
        let delta = random_delta(delta_seed, &kb);
        if kb.clone().apply_delta(&delta).is_ok() {
            assert_selective_matches_full(&kb, &rules, &dirty, &delta);
        }
    }
}

/// A small edge-only delta must select strictly fewer rows than a full
/// re-repair re-runs — the economic point of footprint-based selection —
/// while still agreeing with it exactly.
#[test]
fn small_edge_delta_selects_a_strict_subset() {
    let (kb, rules, dirty) = nobel_fixture(80, 19);
    // Retract one real worksAt edge: only rows whose provenance touched
    // that adjacency pair should re-run.
    let (subject, pred, object) = kb
        .triples()
        .find_map(|(s, p, o)| {
            (kb.pred_name(p) == "worksAt").then(|| {
                let object = match o {
                    dr_kb::Node::Instance(i) => DeltaNode::Instance(kb.instance_label(i).into()),
                    dr_kb::Node::Literal(l) => DeltaNode::Literal(kb.literal_value(l).into()),
                };
                (
                    kb.instance_label(s).to_owned(),
                    kb.pred_name(p).to_owned(),
                    object,
                )
            })
        })
        .expect("nobel world has worksAt edges");
    let mut delta = KbDelta::new();
    delta.retract(&subject, &pred, object);

    let opts = ParallelOptions {
        threads: 2,
        ..Default::default()
    };
    let ctx = MatchContext::new(&kb);
    let mut prior_repaired = dirty.clone();
    let prior = parallel_repair(&ctx, &rules, &mut prior_repaired, &opts);

    let mut next_kb = kb.clone();
    let footprint = next_kb.apply_delta(&delta).expect("edge delta applies");
    let next_ctx = MatchContext::new(&next_kb);
    let mut selective = dirty.clone();
    let report = parallel_repair_selective(
        &next_ctx,
        &rules,
        &mut selective,
        &opts,
        &prior,
        &prior_repaired,
        &footprint,
    );
    let selected = report
        .selected_rows
        .expect("selective mode reports selection");
    assert!(
        selected < dirty.len(),
        "a one-edge delta must not force re-repairing all {} rows (selected {selected})",
        dirty.len()
    );
    assert_selective_matches_full(&kb, &rules, &dirty, &delta);
}
