//! `.drsnap` snapshots across KB deltas: a snapshot is keyed by the KB's
//! *content hash*, so after a delta bumps the KB to new content the old
//! snapshot simply does not match anymore. The contract (DESIGN.md §10):
//!
//! * a post-delta boot is a plain **cold start** — the old snapshot is
//!   skipped by key, never loaded into the new-generation cache;
//! * a stale snapshot forced onto the new key's path is **rejected** with
//!   a capped diagnostic (`KeyMismatch`), never a hard failure;
//! * repairs proceed identically either way.

use std::path::PathBuf;
use std::sync::Arc;

use dr_core::{
    parallel_repair, CacheRegistry, MatchContext, ParallelOptions, RegistryConfig, SnapshotKey,
};
use dr_kb::fixtures::nobel_mini_kb;
use dr_kb::{DeltaNode, KbDelta, KnowledgeBase};

/// A scratch snapshot directory removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "dr-snapshot-generation-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Warms and persists a snapshot for `kb` under `dir`, returning its key.
fn persist_snapshot(kb: &KnowledgeBase, dir: &PathBuf) -> SnapshotKey {
    let registry = Arc::new(CacheRegistry::new(
        RegistryConfig::default().with_cache_dir(dir),
    ));
    let ctx = MatchContext::with_registry(kb, Arc::clone(&registry));
    let rules = dr_core::fixtures::figure4_rules(kb);
    let mut relation = dr_core::fixtures::table1_dirty();
    let opts = ParallelOptions {
        threads: 1,
        ..Default::default()
    };
    parallel_repair(&ctx, &rules, &mut relation, &opts);
    assert!(registry.persist() >= 1, "warm cache must persist");
    let key = SnapshotKey::for_pair(kb, dr_core::fixtures::table1_dirty().schema());
    assert!(key.path_in(dir).exists(), "snapshot file must exist");
    key
}

fn relocation_delta() -> KbDelta {
    let mut delta = KbDelta::new();
    delta
        .retract(
            "Israel Institute of Technology",
            "locatedIn",
            DeltaNode::Instance("Haifa".into()),
        )
        .insert(
            "Israel Institute of Technology",
            "locatedIn",
            DeltaNode::Instance("Karcag".into()),
        );
    delta
}

/// After a delta, the old snapshot's filename no longer matches the new
/// content hash: the next boot is a routine cold start — no warm load, no
/// rejection, no diagnostic.
#[test]
fn stale_generation_snapshot_is_skipped_cold() {
    let scratch = ScratchDir::new("cold");
    let kb = nobel_mini_kb();
    let old_key = persist_snapshot(&kb, &scratch.0);

    let mut next = kb.clone();
    next.apply_delta(&relocation_delta())
        .expect("delta applies");
    let schema = dr_core::fixtures::table1_dirty();
    let new_key = SnapshotKey::for_pair(&next, schema.schema());
    assert_ne!(
        old_key.kb_content_hash, new_key.kb_content_hash,
        "a content-changing delta must move the snapshot key"
    );
    assert_ne!(old_key.path_in(&scratch.0), new_key.path_in(&scratch.0));

    // A fresh process booting against the post-delta KB: the stale
    // snapshot is invisible (different filename), so the cache cold-starts
    // without any failure or diagnostic.
    let registry = CacheRegistry::new(RegistryConfig::default().with_cache_dir(&scratch.0));
    let cache = registry.cache_for(&next, schema.schema());
    assert!(cache.is_empty(), "stale-generation snapshot must not seed");
    let stats = registry.stats();
    assert_eq!(stats.snapshot.cold_loads, 1);
    assert_eq!(
        stats.snapshot.rejected, 0,
        "absence is routine, not corruption"
    );
    assert!(registry.snapshot_diagnostics().is_empty());

    // The pre-delta KB still warm-loads from the same directory.
    let registry = CacheRegistry::new(RegistryConfig::default().with_cache_dir(&scratch.0));
    let cache = registry.cache_for(&kb, schema.schema());
    assert!(
        !cache.is_empty(),
        "old-generation snapshot still seeds the old KB"
    );
    assert_eq!(registry.stats().snapshot.warm_loads, 1);
}

/// A stale snapshot *forced onto the new key's path* (copied over, e.g. by
/// an operator or a buggy sync job) is rejected by the key check inside
/// the file: a capped diagnostic, a cold start — never a hard failure and
/// never stale entries.
#[test]
fn forged_snapshot_path_is_rejected_with_diagnostic() {
    let scratch = ScratchDir::new("forged");
    let kb = nobel_mini_kb();
    let old_key = persist_snapshot(&kb, &scratch.0);

    let mut next = kb.clone();
    next.apply_delta(&relocation_delta())
        .expect("delta applies");
    let schema = dr_core::fixtures::table1_dirty();
    let new_key = SnapshotKey::for_pair(&next, schema.schema());
    std::fs::copy(old_key.path_in(&scratch.0), new_key.path_in(&scratch.0))
        .expect("copy stale snapshot onto the new key's path");

    let registry = CacheRegistry::new(RegistryConfig::default().with_cache_dir(&scratch.0));
    let cache = registry.cache_for(&next, schema.schema());
    assert!(cache.is_empty(), "key-mismatched snapshot must not seed");
    let stats = registry.stats();
    assert_eq!(stats.snapshot.cold_loads, 1);
    assert_eq!(
        stats.snapshot.rejected, 1,
        "forged path counts as a rejection"
    );
    let diagnostics = registry.snapshot_diagnostics();
    assert_eq!(
        diagnostics.len(),
        1,
        "one capped diagnostic: {diagnostics:?}"
    );
    assert!(
        diagnostics[0].contains("key mismatch"),
        "diagnostic names the cause: {}",
        diagnostics[0]
    );

    // Never a hard failure: the cold cache still repairs, and a later
    // persist atomically replaces the forged file with a valid snapshot
    // under the new key.
    let ctx = MatchContext::with_registry(
        &next,
        Arc::new(CacheRegistry::new(
            RegistryConfig::default().with_cache_dir(&scratch.0),
        )),
    );
    let rules = dr_core::fixtures::figure4_rules(&next);
    let mut relation = dr_core::fixtures::table1_dirty();
    let opts = ParallelOptions {
        threads: 1,
        ..Default::default()
    };
    let report = parallel_repair(&ctx, &rules, &mut relation, &opts);
    assert!(report.tuples.iter().all(|t| t.outcome.is_completed()));
    let registry = ctx
        .registry()
        .expect("context carries the registry")
        .clone();
    assert!(registry.persist() >= 1);
    let reread = CacheRegistry::new(RegistryConfig::default().with_cache_dir(&scratch.0));
    let cache = reread.cache_for(&next, schema.schema());
    assert!(!cache.is_empty(), "repaired-over snapshot warm-loads again");
    assert_eq!(reread.stats().snapshot.rejected, 0);
}
