//! Cross-crate property tests: randomized worlds and noise, checking the
//! invariants DESIGN.md §6 lists at the whole-pipeline level.

use dr_core::repair::basic::basic_repair;
use dr_core::repair::fast::FastRepairer;
use dr_core::{ApplyOptions, MatchContext};
use dr_datasets::{KbFlavor, KbProfile, NobelWorld, UisWorld};
use dr_relation::noise::{inject, NoiseSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Basic and fast repair agree on arbitrary seeds, sizes, rates, and
    /// KB flavors (chase equivalence).
    #[test]
    fn algorithms_agree_on_random_worlds(
        seed in 0u64..1_000,
        n in 20usize..80,
        rate in 0.0f64..0.25,
        yago in any::<bool>(),
    ) {
        let world = NobelWorld::generate(n, seed);
        let clean = world.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let (dirty, _) = inject(
            &clean,
            &NoiseSpec::new(rate, seed).with_excluded(vec![name]),
            &world.semantic_source(),
        );
        let flavor = if yago { KbFlavor::YagoLike } else { KbFlavor::DbpediaLike };
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = NobelWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);

        let mut a = dirty.clone();
        basic_repair(&ctx, &rules, &mut a, &ApplyOptions::default());
        let mut b = dirty.clone();
        FastRepairer::new(&rules).repair_relation(&ctx, &mut b, &ApplyOptions::default());
        for cell in dirty.cell_refs() {
            prop_assert_eq!(a.value(cell), b.value(cell), "diverged at {:?}", cell);
        }
    }

    /// Repair never rewrites a cell that matches the ground truth AND is
    /// positively marked afterwards to a different value (soundness of
    /// marking): marked cells hold KB-backed values.
    #[test]
    fn repair_changes_are_conservative(seed in 0u64..500, rate in 0.05f64..0.2) {
        let world = UisWorld::generate(60, seed);
        let clean = world.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let (dirty, log) = inject(
            &clean,
            &NoiseSpec::new(rate, seed).with_excluded(vec![name]),
            &world.semantic_source(),
        );
        let kb = world.kb(&KbProfile::yago());
        let rules = UisWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut repaired = dirty.clone();
        let report = FastRepairer::new(&rules)
            .repair_relation(&ctx, &mut repaired, &ApplyOptions::default());

        // Every rewrite targets an injected-dirty cell (UIS has no
        // multi-version sources, so no cascades).
        for (row, tr) in report.tuples.iter().enumerate() {
            for (col, _, _) in tr.rewrites() {
                let was_injected = log
                    .iter()
                    .any(|e| e.cell.row == row && e.cell.attr == col);
                prop_assert!(was_injected, "rewrote an uninjected cell at row {row}");
            }
        }
    }

    /// Zero noise ⇒ zero rewrites, for every KB flavor (pure marking).
    #[test]
    fn clean_input_is_never_rewritten(seed in 0u64..500, yago in any::<bool>()) {
        let world = NobelWorld::generate(40, seed);
        let clean = world.clean_relation();
        let flavor = if yago { KbFlavor::YagoLike } else { KbFlavor::DbpediaLike };
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = NobelWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut working = clean.clone();
        let report = FastRepairer::new(&rules)
            .repair_relation(&ctx, &mut working, &ApplyOptions::default());
        prop_assert_eq!(report.total_changes(), 0);
        for cell in clean.cell_refs() {
            prop_assert_eq!(working.value(cell), clean.value(cell));
        }
    }
}
