//! Cross-crate property tests: randomized worlds and noise, checking the
//! invariants DESIGN.md §7 lists at the whole-pipeline level.

use dr_core::repair::basic::basic_repair;
use dr_core::repair::fast::FastRepairer;
use dr_core::{parallel_repair, ApplyOptions, MatchContext, ParallelOptions};
use dr_datasets::{KbFlavor, KbProfile, NobelWorld, UisWorld};
use dr_relation::noise::{inject, NoiseSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Basic and fast repair agree on arbitrary seeds, sizes, rates, and
    /// KB flavors (chase equivalence).
    #[test]
    fn algorithms_agree_on_random_worlds(
        seed in 0u64..1_000,
        n in 20usize..80,
        rate in 0.0f64..0.25,
        yago in any::<bool>(),
    ) {
        let world = NobelWorld::generate(n, seed);
        let clean = world.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let (dirty, _) = inject(
            &clean,
            &NoiseSpec::new(rate, seed).with_excluded(vec![name]),
            &world.semantic_source(),
        );
        let flavor = if yago { KbFlavor::YagoLike } else { KbFlavor::DbpediaLike };
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = NobelWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);

        let mut a = dirty.clone();
        basic_repair(&ctx, &rules, &mut a, &ApplyOptions::default());
        let mut b = dirty.clone();
        FastRepairer::new(&rules).repair_relation(&ctx, &mut b, &ApplyOptions::default());
        for cell in dirty.cell_refs() {
            prop_assert_eq!(a.value(cell), b.value(cell), "diverged at {:?}", cell);
        }
    }

    /// Repair never rewrites a cell that matches the ground truth AND is
    /// positively marked afterwards to a different value (soundness of
    /// marking): marked cells hold KB-backed values.
    #[test]
    fn repair_changes_are_conservative(seed in 0u64..500, rate in 0.05f64..0.2) {
        let world = UisWorld::generate(60, seed);
        let clean = world.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let (dirty, log) = inject(
            &clean,
            &NoiseSpec::new(rate, seed).with_excluded(vec![name]),
            &world.semantic_source(),
        );
        let kb = world.kb(&KbProfile::yago());
        let rules = UisWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut repaired = dirty.clone();
        let report = FastRepairer::new(&rules)
            .repair_relation(&ctx, &mut repaired, &ApplyOptions::default());

        // Every rewrite targets an injected-dirty cell (UIS has no
        // multi-version sources, so no cascades).
        for (row, tr) in report.tuples.iter().enumerate() {
            for (col, _, _) in tr.rewrites() {
                let was_injected = log
                    .iter()
                    .any(|e| e.cell.row == row && e.cell.attr == col);
                prop_assert!(was_injected, "rewrote an uninjected cell at row {row}");
            }
        }
    }

    /// The work-stealing parallel repair with its shared relation-scoped
    /// value cache is cell-for-cell and mark-for-mark identical to the
    /// sequential fast repair, over randomized duplicate-heavy relations
    /// (repeated rows maximize cross-tuple cache reuse — exactly where a
    /// staleness or ordering bug would surface) for 1, 2, 4, and 8 workers.
    #[test]
    fn parallel_repair_is_bit_identical_to_sequential(
        seed in 0u64..500,
        n in 10usize..40,
        rate in 0.0f64..0.25,
        copies in 2usize..5,
        yago in any::<bool>(),
    ) {
        let world = UisWorld::generate(n, seed);
        let clean = world.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let (dirty, _) = inject(
            &clean,
            &NoiseSpec::new(rate, seed).with_excluded(vec![name]),
            &world.semantic_source(),
        );
        // Duplicate the dirty rows so the same values recur across tuples.
        let mut heavy = dr_relation::Relation::new(dirty.schema().clone());
        for _ in 0..copies {
            for t in dirty.tuples() {
                heavy.push(t.clone());
            }
        }
        let flavor = if yago { KbFlavor::YagoLike } else { KbFlavor::DbpediaLike };
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = UisWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);

        let mut sequential = heavy.clone();
        let seq_report = FastRepairer::new(&rules)
            .repair_relation(&ctx, &mut sequential, &ApplyOptions::default());

        for threads in [1usize, 2, 4, 8] {
            let mut parallel = heavy.clone();
            let par_report = parallel_repair(
                &ctx,
                &rules,
                &mut parallel,
                &ParallelOptions { threads, ..Default::default() },
            );
            for cell in sequential.cell_refs() {
                prop_assert_eq!(
                    sequential.value(cell),
                    parallel.value(cell),
                    "{} threads diverged at {:?}",
                    threads,
                    cell
                );
                prop_assert_eq!(
                    sequential.tuple(cell.row).is_positive(cell.attr),
                    parallel.tuple(cell.row).is_positive(cell.attr),
                    "{} threads: marks diverged at {:?}",
                    threads,
                    cell
                );
            }
            prop_assert_eq!(seq_report.tuples.len(), par_report.tuples.len());
            for (a, b) in seq_report.tuples.iter().zip(&par_report.tuples) {
                prop_assert_eq!(a, b);
            }
        }
    }

    /// A `CacheRegistry` shared across a stream of same-schema relations is
    /// invisible to repair outcomes: registry-backed repair — sequential and
    /// parallel at 1, 2, 4, and 8 workers — is bit-identical to registry-free
    /// sequential repair on every relation of the stream, even though every
    /// run after the first warm-starts from its predecessors' value cache.
    #[test]
    fn registry_backed_repair_is_bit_identical_to_registry_free(
        seed in 0u64..500,
        n in 10usize..30,
        rate in 0.0f64..0.25,
        stream_len in 3usize..6,
        yago in any::<bool>(),
    ) {
        let world = UisWorld::generate(n, seed);
        let clean = world.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let stream: Vec<dr_relation::Relation> = (0..stream_len as u64)
            .map(|i| {
                inject(
                    &clean,
                    &NoiseSpec::new(rate, seed ^ (i + 1)).with_excluded(vec![name]),
                    &world.semantic_source(),
                )
                .0
            })
            .collect();
        let flavor = if yago { KbFlavor::YagoLike } else { KbFlavor::DbpediaLike };
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = UisWorld::rules(&kb);

        let plain_ctx = MatchContext::new(&kb);
        let registry = std::sync::Arc::new(dr_core::CacheRegistry::new(
            dr_core::RegistryConfig::default(),
        ));
        let reg_ctx = MatchContext::with_registry(&kb, registry.clone());

        for dirty in &stream {
            let mut baseline = dirty.clone();
            let base_report = FastRepairer::new(&rules)
                .repair_relation(&plain_ctx, &mut baseline, &ApplyOptions::default());

            let mut warm = dirty.clone();
            let warm_report = FastRepairer::new(&rules)
                .repair_relation(&reg_ctx, &mut warm, &ApplyOptions::default());
            for cell in baseline.cell_refs() {
                prop_assert_eq!(
                    baseline.value(cell),
                    warm.value(cell),
                    "registry-backed sequential diverged at {:?}",
                    cell
                );
                prop_assert_eq!(
                    baseline.tuple(cell.row).is_positive(cell.attr),
                    warm.tuple(cell.row).is_positive(cell.attr),
                    "registry-backed sequential: marks diverged at {:?}",
                    cell
                );
            }
            prop_assert_eq!(&base_report.tuples, &warm_report.tuples);

            for threads in [1usize, 2, 4, 8] {
                let mut parallel = dirty.clone();
                let par_report = parallel_repair(
                    &reg_ctx,
                    &rules,
                    &mut parallel,
                    &ParallelOptions { threads, ..Default::default() },
                );
                for cell in baseline.cell_refs() {
                    prop_assert_eq!(
                        baseline.value(cell),
                        parallel.value(cell),
                        "registry-backed {} threads diverged at {:?}",
                        threads,
                        cell
                    );
                    prop_assert_eq!(
                        baseline.tuple(cell.row).is_positive(cell.attr),
                        parallel.tuple(cell.row).is_positive(cell.attr),
                        "registry-backed {} threads: marks diverged at {:?}",
                        threads,
                        cell
                    );
                }
                prop_assert_eq!(&base_report.tuples, &par_report.tuples);
            }
        }
        // The stream really exercised warm-starts: every repair after the
        // first asked the registry for the same (KB, schema) cache.
        let stats = registry.stats();
        prop_assert_eq!(stats.cold_misses, 1);
        prop_assert!(stats.warm_hits >= stream.len() as u64 * 5 - 1);
    }

    /// Zero noise ⇒ zero rewrites, for every KB flavor (pure marking).
    #[test]
    fn clean_input_is_never_rewritten(seed in 0u64..500, yago in any::<bool>()) {
        let world = NobelWorld::generate(40, seed);
        let clean = world.clean_relation();
        let flavor = if yago { KbFlavor::YagoLike } else { KbFlavor::DbpediaLike };
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = NobelWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);
        let mut working = clean.clone();
        let report = FastRepairer::new(&rules)
            .repair_relation(&ctx, &mut working, &ApplyOptions::default());
        prop_assert_eq!(report.total_changes(), 0);
        for cell in clean.cell_refs() {
            prop_assert_eq!(working.value(cell), clean.value(cell));
        }
    }
}
