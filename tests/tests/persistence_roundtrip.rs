//! Persistence round-trips: a KB serialized to the N-Triples-style text
//! format and a relation serialized to CSV must reload into equivalent
//! structures — and repairing with the reloaded artifacts must produce
//! identical results.

use dr_core::{fast_repair, ApplyOptions, MatchContext};
use dr_datasets::{KbProfile, NobelWorld};
use dr_kb::ntriples;
use dr_relation::csv;
use dr_relation::noise::{inject, NoiseSpec};

#[test]
fn kb_roundtrip_preserves_repairs() {
    let world = NobelWorld::generate(80, 19);
    let clean = world.clean_relation();
    let name = clean.schema().attr_expect("Name");
    let (dirty, _) = inject(
        &clean,
        &NoiseSpec::new(0.12, 19).with_excluded(vec![name]),
        &world.semantic_source(),
    );

    let kb = world.kb(&KbProfile::yago());
    let text = ntriples::serialize(&kb);
    let reloaded = ntriples::parse(&text).expect("roundtrip parse");
    assert_eq!(kb.num_instances(), reloaded.num_instances());
    assert_eq!(kb.num_edges(), reloaded.num_edges());
    assert_eq!(kb.num_classes(), reloaded.num_classes());

    // Rules resolve against the reloaded KB by name, and repairs agree.
    let rules_a = NobelWorld::rules(&kb);
    let rules_b = NobelWorld::rules(&reloaded);
    let ctx_a = MatchContext::new(&kb);
    let ctx_b = MatchContext::new(&reloaded);

    let mut via_original = dirty.clone();
    fast_repair(
        &ctx_a,
        &rules_a,
        &mut via_original,
        &ApplyOptions::default(),
    );
    let mut via_reloaded = dirty.clone();
    fast_repair(
        &ctx_b,
        &rules_b,
        &mut via_reloaded,
        &ApplyOptions::default(),
    );
    for cell in dirty.cell_refs() {
        assert_eq!(via_original.value(cell), via_reloaded.value(cell));
    }
}

#[test]
fn csv_roundtrip_preserves_relation() {
    let world = NobelWorld::generate(50, 23);
    let clean = world.clean_relation();
    let text = csv::serialize(&clean);
    let reloaded = csv::parse("Nobel", &text).expect("csv parse");
    assert_eq!(reloaded.len(), clean.len());
    assert_eq!(reloaded.schema().arity(), clean.schema().arity());
    for (a, b) in clean.tuples().iter().zip(reloaded.tuples()) {
        assert_eq!(a.cells(), b.cells());
    }
}

#[test]
fn csv_survives_adversarial_values() {
    let schema = dr_relation::Schema::new("R", &["A", "B"]);
    let mut relation = dr_relation::Relation::new(schema);
    relation.push_strs(&["with, comma", "with \"quotes\""]);
    relation.push_strs(&["with\nnewline", ""]);
    let text = csv::serialize(&relation);
    let back = csv::parse("R", &text).unwrap();
    for (a, b) in relation.tuples().iter().zip(back.tuples()) {
        assert_eq!(a.cells(), b.cells());
    }
}
