//! Integration test support crate (tests live in tests/tests).
//!
//! The one reusable piece is [`differential`]: a harness that packs an
//! in-memory [`dr_kb::KnowledgeBase`] into a `.drkb` image, reopens it
//! through the mmap-backed [`dr_kb::MappedKb`], and asserts the two
//! backends are observationally identical — on every graph/taxonomy query
//! surface and on full repair outputs. The in-memory KB is the oracle;
//! the image is the implementation under test.

pub mod differential {
    //! Differential-oracle harness for the `.drkb` mmap KB backend.

    use dr_core::{parallel_repair, DetectiveRule, MatchContext, ParallelOptions};
    use dr_kb::{
        pack, write_image, DeltaNode, DeltaOp, KbBuilder, KbDelta, KbRef, KnowledgeBase, MappedKb,
        Node,
    };
    use dr_relation::Relation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::path::PathBuf;

    /// True when `DR_QUICK` is set: property tests drop to a handful of
    /// cases so a CI smoke leg stays fast. Thorough runs leave it unset.
    pub fn quick_mode() -> bool {
        std::env::var_os("DR_QUICK").is_some()
    }

    /// Proptest case count honoring [`quick_mode`].
    pub fn proptest_cases(full: u32) -> u32 {
        if quick_mode() {
            (full / 8).max(2)
        } else {
            full
        }
    }

    /// A `.drkb` image packed to a scratch file, opened via mmap, and
    /// removed again on drop.
    pub struct PackedKb {
        /// The mmap-backed reader over the packed image.
        pub mapped: MappedKb,
        path: PathBuf,
    }

    impl Drop for PackedKb {
        fn drop(&mut self) {
            std::fs::remove_file(&self.path).ok();
        }
    }

    /// Packs `kb` to a scratch `.drkb` file and reopens it through the
    /// mmap path, demanding the packed content hash.
    pub fn pack_and_open(kb: &KnowledgeBase, tag: &str) -> PackedKb {
        use std::sync::atomic::{AtomicU32, Ordering};
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let path = std::env::temp_dir().join(format!(
            "dr-differential-{tag}-{}-{}.drkb",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        write_image(&path, kb).expect("pack KB image");
        let mapped = MappedKb::open_expecting(&path, kb.content_hash()).expect("reopen image");
        PackedKb { mapped, path }
    }

    /// Generates a randomized KB from `seed`: a random-forest taxonomy,
    /// instances with deliberately colliding labels (so multi-hit label
    /// lookups are exercised), typed and untyped instances, and edges to
    /// both instance and literal objects — every structure the image
    /// format has a section for.
    pub fn random_kb(seed: u64) -> KnowledgeBase {
        random_kb_builder(seed)
            .finalize()
            .expect("forest taxonomy cannot cycle")
    }

    /// The open builder behind [`random_kb`] — delta-vs-rebuild oracles
    /// replay this construction plus a [`KbDelta`]'s ops through the
    /// builder and compare against `apply_delta` applied in place.
    pub fn random_kb_builder(seed: u64) -> KbBuilder {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = dr_kb::graph::KbBuilder::new();

        let num_classes = rng.gen_range(0..8usize);
        let classes: Vec<_> = (0..num_classes)
            .map(|c| b.class(&format!("class-{c}")))
            .collect();
        for c in 1..num_classes {
            // A forest: each class may attach under an earlier one, which
            // keeps the taxonomy acyclic by construction.
            if rng.gen_bool(0.7) {
                let parent = classes[rng.gen_range(0..c)];
                b.subclass(classes[c], parent);
            }
        }

        let num_preds = rng.gen_range(1..6usize);
        let preds: Vec<_> = (0..num_preds)
            .map(|p| b.pred(&format!("pred-{p}")))
            .collect();

        let num_instances = rng.gen_range(1..40usize);
        let instances: Vec<_> = (0..num_instances)
            .map(|i| {
                // Collide labels on purpose: `instances_labeled` must
                // return multi-element runs identically on both backends.
                let label = format!("inst-{}", i % 11);
                b.new_instance(&label)
            })
            .collect();
        if !classes.is_empty() {
            for &i in &instances {
                for _ in 0..rng.gen_range(0..3usize) {
                    let c = classes[rng.gen_range(0..classes.len())];
                    b.set_type(i, c);
                }
            }
        }

        let literals: Vec<_> = (0..rng.gen_range(0..10usize))
            .map(|l| b.literal(&format!("value-{l}")))
            .collect();

        let num_edges = rng.gen_range(0..120usize);
        for _ in 0..num_edges {
            let s = instances[rng.gen_range(0..instances.len())];
            let p = preds[rng.gen_range(0..preds.len())];
            let object: Node = if !literals.is_empty() && rng.gen_bool(0.4) {
                literals[rng.gen_range(0..literals.len())].into()
            } else {
                instances[rng.gen_range(0..instances.len())].into()
            };
            b.edge(s, p, object);
        }

        b
    }

    /// Generates a randomized [`KbDelta`] against `kb` from `seed`: a mix
    /// of edge inserts/retracts, type edits, and taxonomy edits, naming
    /// mostly entities that exist in `kb` (so ops actually land) plus a few
    /// fresh names (so interning-order parity is exercised). Retracts are
    /// biased toward real triples of `kb`. Taxonomy edits may propose a
    /// cycle — callers handle the `apply_delta` error branch.
    pub fn random_delta(seed: u64, kb: &KnowledgeBase) -> KbDelta {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_de17a);
        let labels: Vec<String> = kb
            .instances()
            .map(|i| kb.instance_label(i).to_owned())
            .collect();
        let preds: Vec<String> = kb.preds().map(|p| kb.pred_name(p).to_owned()).collect();
        let classes: Vec<String> = kb.classes().map(|c| kb.class_name(c).to_owned()).collect();
        let triples: Vec<(String, String, DeltaNode)> = kb
            .triples()
            .map(|(s, p, o)| {
                let object = match o {
                    Node::Instance(i) => DeltaNode::Instance(kb.instance_label(i).to_owned()),
                    Node::Literal(l) => DeltaNode::Literal(kb.literal_value(l).to_owned()),
                };
                (
                    kb.instance_label(s).to_owned(),
                    kb.pred_name(p).to_owned(),
                    object,
                )
            })
            .collect();

        fn pick(rng: &mut StdRng, pool: &[String], fresh: &str) -> String {
            if pool.is_empty() || rng.gen_bool(0.2) {
                format!("delta-{fresh}-{}", rng.gen_range(0..4u32))
            } else {
                pool[rng.gen_range(0..pool.len())].clone()
            }
        }

        let mut delta = KbDelta::new();
        for _ in 0..rng.gen_range(1..14usize) {
            match rng.gen_range(0..8u32) {
                0 | 1 => {
                    let object = if rng.gen_bool(0.4) {
                        DeltaNode::Literal(format!("value-{}", rng.gen_range(0..12u32)))
                    } else {
                        DeltaNode::Instance(pick(&mut rng, &labels, "inst"))
                    };
                    let subject = pick(&mut rng, &labels, "inst");
                    let pred = pick(&mut rng, &preds, "pred");
                    delta.insert(&subject, &pred, object);
                }
                2 | 3 => {
                    // Bias retracts toward triples that exist, so they are
                    // not all no-ops.
                    if !triples.is_empty() && rng.gen_bool(0.7) {
                        let (s, p, o) = triples[rng.gen_range(0..triples.len())].clone();
                        delta.retract(&s, &p, o);
                    } else {
                        let subject = pick(&mut rng, &labels, "inst");
                        let pred = pick(&mut rng, &preds, "pred");
                        let object = DeltaNode::Instance(pick(&mut rng, &labels, "inst"));
                        delta.retract(&subject, &pred, object);
                    }
                }
                4 => {
                    let i = pick(&mut rng, &labels, "inst");
                    let c = pick(&mut rng, &classes, "class");
                    delta.add_type(&i, &c);
                }
                5 => {
                    let i = pick(&mut rng, &labels, "inst");
                    let c = pick(&mut rng, &classes, "class");
                    delta.remove_type(&i, &c);
                }
                6 => {
                    let sub = pick(&mut rng, &classes, "class");
                    let sup = pick(&mut rng, &classes, "class");
                    delta.add_subclass(&sub, &sup);
                }
                _ => {
                    let sub = pick(&mut rng, &classes, "class");
                    let sup = pick(&mut rng, &classes, "class");
                    delta.remove_subclass(&sub, &sup);
                }
            }
        }
        delta
    }

    /// Replays `delta`'s ops through an open builder, mirroring the
    /// name-resolution semantics of `KnowledgeBase::apply_delta` 1:1 —
    /// the rebuild side of the delta ≡ rebuild oracle. Entities are
    /// interned even by retract ops, exactly like the in-place path, so
    /// both sides assign identical ids.
    pub fn replay_delta(b: &mut KbBuilder, delta: &KbDelta) {
        fn node(b: &mut KbBuilder, object: &DeltaNode) -> Node {
            match object {
                DeltaNode::Instance(label) => b.instance(label).into(),
                DeltaNode::Literal(value) => b.literal(value).into(),
            }
        }
        for op in delta.ops() {
            match op {
                DeltaOp::InsertTriple {
                    subject,
                    pred,
                    object,
                } => {
                    let s = b.instance(subject);
                    let p = b.pred(pred);
                    let o = node(b, object);
                    b.edge(s, p, o);
                }
                DeltaOp::RetractTriple {
                    subject,
                    pred,
                    object,
                } => {
                    let s = b.instance(subject);
                    let p = b.pred(pred);
                    let o = node(b, object);
                    b.retract_edge(s, p, o);
                }
                DeltaOp::AddType { instance, class } => {
                    let i = b.instance(instance);
                    let c = b.class(class);
                    b.set_type(i, c);
                }
                DeltaOp::RemoveType { instance, class } => {
                    let i = b.instance(instance);
                    let c = b.class(class);
                    b.remove_type(i, c);
                }
                DeltaOp::AddSubclass { sub, sup } => {
                    let a = b.class(sub);
                    let s = b.class(sup);
                    b.subclass(a, s);
                }
                DeltaOp::RemoveSubclass { sub, sup } => {
                    let a = b.class(sub);
                    let s = b.class(sup);
                    b.remove_subclass(a, s);
                }
            }
        }
    }

    /// Asserts a delta applied in place equals rebuilding from scratch:
    /// identical content hash, byte-identical packed image, and agreement
    /// on every query surface. `live` is the `apply_delta` result;
    /// `rebuilt` is the replayed-construction oracle.
    pub fn assert_delta_equals_rebuild(live: &KnowledgeBase, rebuilt: &KnowledgeBase) {
        assert_eq!(
            live.content_hash(),
            rebuilt.content_hash(),
            "delta vs rebuild: content hash"
        );
        assert_eq!(
            pack(live),
            pack(rebuilt),
            "delta vs rebuild: packed images must be byte-identical"
        );
        assert_surfaces_agree(rebuilt.into(), live.into());
    }

    fn sorted<T: Ord + Copy>(xs: &[T]) -> Vec<T> {
        let mut v = xs.to_vec();
        v.sort_unstable();
        v
    }

    /// Asserts every query surface of the mapped image answers exactly as
    /// the in-memory oracle: identity and counts, name/label/value
    /// lookups in both directions, adjacency (objects, subjects, edge
    /// membership, outgoing predicates), typing and taxonomy ancestry,
    /// the full triple set, and aggregate stats.
    pub fn assert_backends_agree(mem: &KnowledgeBase, mapped: &MappedKb) {
        let m: KbRef<'_> = mem.into();
        let i: KbRef<'_> = mapped.into();

        assert_eq!(i.content_hash(), m.content_hash(), "content hash");
        assert_ne!(i.generation(), m.generation(), "distinct cache keys");
        assert_eq!(i.backend(), "mmap");
        assert_eq!(m.backend(), "mem");
        assert_surfaces_agree(m, i);
    }

    /// Backend-agnostic half of [`assert_backends_agree`]: every query
    /// surface of `i` must answer exactly as the oracle `m` — also the
    /// agreement check between a delta'd KB and its rebuilt twin.
    pub fn assert_surfaces_agree(m: KbRef<'_>, i: KbRef<'_>) {
        assert_eq!(i.num_classes(), m.num_classes(), "class count");
        assert_eq!(i.num_preds(), m.num_preds(), "pred count");
        assert_eq!(i.num_instances(), m.num_instances(), "instance count");
        assert_eq!(i.num_literals(), m.num_literals(), "literal count");
        assert_eq!(i.num_edges(), m.num_edges(), "edge count");

        for c in m.classes() {
            let name = m.class_name(c);
            assert_eq!(i.class_name(c), name, "class name {c:?}");
            assert_eq!(i.class_named(name), m.class_named(name), "class lookup");
            assert_eq!(
                &*i.instances_of(c),
                &*m.instances_of(c),
                "instances_of {name}"
            );
            assert_eq!(
                &*i.direct_instances_of(c),
                &*m.direct_instances_of(c),
                "direct_instances_of {name}"
            );
            // Taxonomy ancestry: parent edges, the subsumption closure,
            // and (through it) every ancestor/descendant pair.
            assert_eq!(
                i.taxonomy().parents(c),
                m.taxonomy().parents(c),
                "parents of {name}"
            );
            for d in m.classes() {
                assert_eq!(
                    i.taxonomy().subsumes(d, c),
                    m.taxonomy().subsumes(d, c),
                    "subsumes({d:?}, {c:?})"
                );
            }
        }
        assert_eq!(i.taxonomy().depth(), m.taxonomy().depth(), "taxonomy depth");
        assert_eq!(i.class_named("no-such-class"), None);

        for p in m.preds() {
            let name = m.pred_name(p);
            assert_eq!(i.pred_name(p), name, "pred name");
            assert_eq!(i.pred_named(name), m.pred_named(name), "pred lookup");
        }
        assert_eq!(i.pred_named("no-such-pred"), None);

        for s in m.instances() {
            let label = m.instance_label(s);
            assert_eq!(i.instance_label(s), label, "label of {s:?}");
            assert_eq!(
                &*i.instances_labeled(label),
                &*m.instances_labeled(label),
                "instances_labeled({label})"
            );
            assert_eq!(
                &*i.instance_classes(s),
                &*m.instance_classes(s),
                "classes of {label}"
            );
            for c in m.classes() {
                assert_eq!(i.has_type(s, c), m.has_type(s, c), "has_type({label})");
            }
            assert_eq!(&*i.preds_of(s), &*m.preds_of(s), "preds_of({label})");
            for p in m.preds() {
                assert_eq!(
                    sorted(&i.objects(s, p)),
                    sorted(&m.objects(s, p)),
                    "objects({label}, {})",
                    m.pred_name(p)
                );
                for &o in m.objects(s, p).iter() {
                    assert!(i.has_edge(s, p, o), "has_edge({label})");
                    assert_eq!(
                        sorted(&i.subjects(o, p)),
                        sorted(&m.subjects(o, p)),
                        "subjects({})",
                        m.node_value(o)
                    );
                }
            }
        }
        assert!(i.instances_labeled("no-such-label").is_empty());

        for value in ["value-0", "value-7", "absent-value"] {
            assert_eq!(
                i.literal_with_value(value),
                m.literal_with_value(value),
                "literal_with_value({value})"
            );
        }
        for (_, _, o) in m.triples() {
            if let Node::Literal(l) = o {
                let value = m.literal_value(l);
                assert_eq!(i.literal_value(l), value, "literal value");
                assert_eq!(i.literal_with_value(value), Some(l), "literal lookup");
            }
        }

        let mut mem_triples = m.triples();
        let mut img_triples = i.triples();
        mem_triples.sort_unstable();
        img_triples.sort_unstable();
        assert_eq!(img_triples, mem_triples, "full triple set");

        assert_eq!(dr_kb::stats::stats(i), dr_kb::stats::stats(m), "KbStats");
    }

    /// Runs `parallel_repair` over `dirty` against both backends at one
    /// and four worker threads and asserts identical outcomes: the
    /// repaired relations (values and positive marks) and the per-tuple
    /// reports must match exactly.
    pub fn assert_repairs_agree<'a, 'b>(
        mem: impl Into<KbRef<'a>>,
        mapped: impl Into<KbRef<'b>>,
        rules: &[DetectiveRule],
        dirty: &Relation,
    ) {
        let mem_ctx = MatchContext::new(mem.into());
        let img_ctx = MatchContext::new(mapped.into());
        for threads in [1usize, 4] {
            let opts = ParallelOptions {
                threads,
                ..Default::default()
            };
            let mut mem_rel = dirty.clone();
            let mem_report = parallel_repair(&mem_ctx, rules, &mut mem_rel, &opts);
            let mut img_rel = dirty.clone();
            let img_report = parallel_repair(&img_ctx, rules, &mut img_rel, &opts);

            let label = format!("mem vs mmap ({threads} threads)");
            assert_eq!(mem_rel.len(), img_rel.len(), "{label}: row counts");
            for cell in mem_rel.cell_refs() {
                assert_eq!(
                    mem_rel.value(cell),
                    img_rel.value(cell),
                    "{label}: value at {cell:?}"
                );
                assert_eq!(
                    mem_rel.tuple(cell.row).is_positive(cell.attr),
                    img_rel.tuple(cell.row).is_positive(cell.attr),
                    "{label}: positive mark at {cell:?}"
                );
            }
            assert_eq!(
                mem_report.tuples, img_report.tuples,
                "{label}: reports diverged"
            );
        }
    }
}
