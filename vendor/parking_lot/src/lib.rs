//! Offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API
//! (`lock()` / `read()` / `write()` return guards directly; a poisoned lock
//! yields its inner guard — the workspace never relies on poisoning).

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A readers-writer lock whose `read`/`write` never return a `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = Arc::new(RwLock::new(0usize));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 0);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() = 5;
        assert_eq!(*m.lock(), 5);
    }
}
