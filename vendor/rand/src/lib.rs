//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` 0.8 it actually uses: a seedable
//! `StdRng`, `Rng::{gen_range, gen_bool, gen}`, and the `SliceRandom`
//! helpers (`choose`, `shuffle`). The generator is xoshiro256** seeded via
//! SplitMix64 — statistically solid for noise injection and dataset
//! synthesis, deterministic per seed (the only properties the workspace
//! relies on). Streams differ from upstream `rand`; nothing in the
//! workspace depends on upstream byte streams.

pub mod rngs;
pub mod seq;

pub use seq::SliceRandom;

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value uniformly sampleable from a range (argument to
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values (sampling panics).
    fn is_empty_range(&self) -> bool;
}

#[inline]
fn widening_mul_hi(a: u64, b: u64) -> u64 {
    (((a as u128) * (b as u128)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + widening_mul_hi(rng.next_u64(), span) as $t
            }
            #[inline]
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + widening_mul_hi(rng.next_u64(), span) as $t
            }
            #[inline]
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(widening_mul_hi(rng.next_u64(), span) as i64)
                    as $t
            }
            #[inline]
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                (lo as i64).wrapping_add(widening_mul_hi(rng.next_u64(), span) as i64) as $t
            }
            #[inline]
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_signed_sample_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (unit as $t) * (self.end - self.start)
            }
            #[inline]
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform value in `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p` (which must lie in `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The traits most callers want in scope.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u8);
            assert!(w <= 4);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_permutes_and_choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");

        let pool = [1, 2, 3];
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[*pool.choose(&mut rng).unwrap() - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
    }
}
