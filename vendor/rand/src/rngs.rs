//! Concrete generators: `StdRng` (xoshiro256** seeded with SplitMix64).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// xoshiro256** (Blackman & Vigna): 256-bit state, passes BigCrush, and is
/// far cheaper than upstream's ChaCha12. Streams are deterministic per seed
/// but deliberately *not* compatible with upstream `rand::rngs::StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state (possible only for adversarial seeds) would be a
        // fixed point; nudge it.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
