//! Test execution: RNG, configuration, error types, and the manual
//! [`TestRunner`] API.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// Deterministic generator backing all strategies (xoshiro256**; seeded per
/// test via SplitMix64 so runs are reproducible across machines).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a single word.
    pub fn seed_from(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            s[0] = 1;
        }
        Self { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `0..bound` (`bound` ≥ 1, ≤ 2^64 treated via u128 to
    /// keep the widening-multiply trick branch-light).
    pub fn below(&mut self, bound: u128) -> u64 {
        assert!(bound >= 1, "below(0)");
        debug_assert!(bound <= (1u128 << 64), "bound too large");
        if bound == 1 {
            return 0;
        }
        ((self.next_u64() as u128 * bound) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration (subset of upstream `Config`; also exported as
/// `ProptestConfig` from the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before giving up.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config that runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — draw another.
    Reject,
    /// The property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (API parity with upstream).
    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A failed property run: message plus the `Debug` repr of the failing
/// input.
#[derive(Clone)]
pub struct TestError {
    /// Human-readable failure description.
    pub message: String,
    /// `Debug` repr of the failing input.
    pub input: String,
}

impl fmt::Debug for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "property failed: {}; failing input: {}",
            self.message, self.input
        )
    }
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::error::Error for TestError {}

/// Runs a closure over generated cases, as in
/// `TestRunner::new(Config::with_cases(256)).run(&strategy, |v| { ..; Ok(()) })`.
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with the given config and a fixed deterministic seed.
    pub fn new(config: Config) -> Self {
        Self {
            config,
            rng: TestRng::seed_from(0x0ddc_0ffe_eba5_e5ed),
        }
    }

    /// Mutable access to the underlying RNG (upstream parity).
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Runs `test` over `config.cases` generated inputs. Panics inside the
    /// closure are converted to failures.
    pub fn run<S: Strategy, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
    where
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let value = strategy.generate(&mut self.rng);
            let repr = format!("{value:?}");
            match run_one(&mut test, value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(TestError {
                            message: "too many prop_assume! rejections".into(),
                            input: repr,
                        });
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    return Err(TestError {
                        message,
                        input: repr,
                    })
                }
            }
        }
        Ok(())
    }
}

/// Runs one case, converting panics into `Fail`.
pub(crate) fn run_one<V, F>(test: &mut F, value: V) -> Result<(), TestCaseError>
where
    F: FnMut(V) -> Result<(), TestCaseError>,
{
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(outcome) => outcome,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "test panicked".into());
            Err(TestCaseError::Fail(format!("panic: {msg}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_passes_trivial_property() {
        let mut runner = TestRunner::new(Config::with_cases(64));
        runner
            .run(&(0u64..100), |v| {
                if v >= 100 {
                    return Err(TestCaseError::fail("out of range"));
                }
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn runner_reports_failure_with_input() {
        let mut runner = TestRunner::new(Config::with_cases(64));
        let err = runner
            .run(&(0u64..100), |v| {
                if v > 10 {
                    Err(TestCaseError::fail("too big"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.message.contains("too big"));
        assert!(err.input.parse::<u64>().unwrap() > 10);
    }

    #[test]
    fn runner_converts_panics_to_failures() {
        let mut runner = TestRunner::new(Config::with_cases(8));
        let err = runner
            .run(&(0u64..4), |_| -> Result<(), TestCaseError> {
                panic!("boom");
            })
            .unwrap_err();
        assert!(err.message.contains("boom"), "{}", err.message);
    }

    #[test]
    fn runner_rejections_draw_new_cases() {
        let mut runner = TestRunner::new(Config::with_cases(32));
        runner
            .run(&(0u64..100), |v| {
                if v % 2 == 1 {
                    return Err(TestCaseError::Reject);
                }
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn rng_is_uniform_enough() {
        let mut rng = TestRng::seed_from(11);
        let mut buckets = [0u32; 8];
        for _ in 0..8_000 {
            buckets[rng.below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1_200).contains(&b), "bucket count {b}");
        }
    }
}
