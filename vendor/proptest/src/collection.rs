//! Collection strategies (subset of `proptest::collection`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Element-count bounds for collection strategies (inclusive).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    /// A new inclusive size range.
    pub fn new(min: usize, max: usize) -> Self {
        assert!(min <= max, "empty SizeRange");
        Self { min, max }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self::new(n, n)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty SizeRange");
        Self::new(r.start, r.end - 1)
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self::new(*r.start(), *r.end())
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u128;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn minimal(&self) -> Option<Vec<S::Value>> {
        (0..self.size.min).map(|_| self.element.minimal()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_strategy() {
        let mut rng = TestRng::seed_from(3);
        let strat = vec("[ab]{1,3}", 2..5);
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()), "len {}", v.len());
            for s in &v {
                assert!((1..=3).contains(&s.chars().count()));
                assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            }
        }
    }

    #[test]
    fn nested_vec_and_inclusive_sizes() {
        let mut rng = TestRng::seed_from(4);
        let strat = vec(vec("[a-z]{0,2}", 2..=2), 0..6);
        for _ in 0..200 {
            let rows = strat.generate(&mut rng);
            assert!(rows.len() < 6);
            for row in rows {
                assert_eq!(row.len(), 2);
            }
        }
    }

    #[test]
    fn minimal_is_min_len_of_minimal_elements() {
        let strat = vec("[a-c]{1,4}", 2..5);
        assert_eq!(
            strat.minimal().unwrap(),
            vec!["a".to_string(), "a".to_string()]
        );
    }
}
