//! Value-generation strategies (subset of upstream `proptest::strategy` +
//! `proptest::arbitrary` + the regex-string sugar).
//!
//! A [`Strategy`] here is a plain generator: no shrink tree. Failing inputs
//! are persisted verbatim in the regression file instead of being shrunk,
//! so strategies also know how to `parse_repr` a `Debug`-formatted value
//! back (used for regression replay) and how to produce a `minimal` value
//! (used for assignments a regression line does not pin).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::OnceLock;

use crate::test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Parses a value back from its `Debug` representation (regression
    /// replay). `None` means this strategy cannot replay reprs.
    fn parse_repr(&self, _repr: &str) -> Option<Self::Value> {
        None
    }

    /// The smallest value this strategy produces, if meaningful. Used for
    /// assignments absent from a regression entry (upstream shrinks them
    /// to their minimum).
    fn minimal(&self) -> Option<Self::Value> {
        None
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn parse_repr(&self, repr: &str) -> Option<Self::Value> {
        (**self).parse_repr(repr)
    }

    fn minimal(&self) -> Option<Self::Value> {
        (**self).minimal()
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }

    fn minimal(&self) -> Option<T> {
        Some(self.0.clone())
    }
}

// ---------------------------------------------------------------------------
// Numeric ranges
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = rng.below(span) as i128;
                (self.start as i128 + off) as $ty
            }

            fn parse_repr(&self, repr: &str) -> Option<$ty> {
                repr.trim().parse().ok().filter(|v| self.contains(v))
            }

            fn minimal(&self) -> Option<$ty> {
                Some(self.start)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = rng.below(span) as i128;
                (lo as i128 + off) as $ty
            }

            fn parse_repr(&self, repr: &str) -> Option<$ty> {
                repr.trim().parse().ok().filter(|v| self.contains(v))
            }

            fn minimal(&self) -> Option<$ty> {
                Some(*self.start())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $ty;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }

            fn parse_repr(&self, repr: &str) -> Option<$ty> {
                repr.trim().parse().ok().filter(|v| self.contains(v))
            }

            fn minimal(&self) -> Option<$ty> {
                Some(self.start)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $ty;
                lo + u * (hi - lo)
            }

            fn parse_repr(&self, repr: &str) -> Option<$ty> {
                repr.trim().parse().ok().filter(|v| self.contains(v))
            }

            fn minimal(&self) -> Option<$ty> {
                Some(*self.start())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Parses the `Debug` repr back.
    fn parse(repr: &str) -> Option<Self>;
    /// The minimal value of `Self`.
    fn minimal() -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }

    fn parse(repr: &str) -> Option<bool> {
        repr.trim().parse().ok()
    }

    fn minimal() -> bool {
        false
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }

            fn parse(repr: &str) -> Option<$ty> {
                repr.trim().parse().ok()
            }

            fn minimal() -> $ty {
                0
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The whole-domain strategy for `T` (`any::<bool>()` and friends).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn parse_repr(&self, repr: &str) -> Option<T> {
        T::parse(repr)
    }

    fn minimal(&self) -> Option<T> {
        Some(T::minimal())
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }

            fn minimal(&self) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.minimal()?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Regex-subset string strategy: `"[a-z0-9 ]{0,8}"`, `"\PC{1,16}"`
// ---------------------------------------------------------------------------

/// One parsed atom of the pattern plus its repetition bounds.
#[derive(Clone, Debug)]
struct Atom {
    pool: Pool,
    min: usize,
    max: usize,
}

#[derive(Clone, Debug)]
enum Pool {
    /// `\PC`: any non-control char, drawn from a fixed printable sample.
    Printable,
    /// `[...]`: inclusive char ranges (singletons are `(c, c)`).
    Ranges(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

impl Pool {
    fn count(&self) -> u128 {
        match self {
            Pool::Printable => printable_pool().len() as u128,
            Pool::Ranges(rs) => rs
                .iter()
                .map(|&(lo, hi)| (hi as u128) - (lo as u128) + 1)
                .sum(),
            Pool::Literal(_) => 1,
        }
    }

    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            Pool::Printable => {
                let pool = printable_pool();
                pool[rng.below(pool.len() as u128) as usize]
            }
            Pool::Ranges(rs) => {
                let mut k = rng.below(self.count()) as u128;
                for &(lo, hi) in rs {
                    let n = (hi as u128) - (lo as u128) + 1;
                    if k < n {
                        // Our patterns never span the surrogate gap, so the
                        // offset char is always valid.
                        return char::from_u32(lo as u32 + k as u32)
                            .expect("char range spans surrogates");
                    }
                    k -= n;
                }
                unreachable!("pick past pool end")
            }
            Pool::Literal(c) => *c,
        }
    }

    fn first(&self) -> char {
        match self {
            Pool::Printable => ' ',
            Pool::Ranges(rs) => rs[0].0,
            Pool::Literal(c) => *c,
        }
    }
}

/// Printable sample for `\PC`: full printable ASCII plus a spread of
/// multi-byte chars (accents, Greek, Cyrillic, CJK, an astral-plane char)
/// so Unicode handling is genuinely exercised.
fn printable_pool() -> &'static [char] {
    static POOL: OnceLock<Vec<char>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut v: Vec<char> = (0x20u8..=0x7e).map(char::from).collect();
        v.extend("ßàéîõüçñÆøДжщЮяαβγδεΩλ北京市東一二三ἀΣ€—…アヴ한글ʼn🦀".chars());
        v
    })
}

fn parse_pattern(pattern: &str) -> Option<Vec<Atom>> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let pool = match chars[i] {
            '\\' => {
                // `\PC` (non-control) or an escaped literal.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Pool::Printable
                } else {
                    let c = *chars.get(i + 1)?;
                    i += 2;
                    Pool::Literal(c)
                }
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while *chars.get(i)? != ']' {
                    let lo = chars[i];
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        let hi = chars[i + 2];
                        if hi < lo {
                            return None;
                        }
                        ranges.push((lo, hi));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                if ranges.is_empty() {
                    return None;
                }
                Pool::Ranges(ranges)
            }
            c => {
                i += 1;
                Pool::Literal(c)
            }
        };
        // Optional repetition: `{m,n}`, `{m}`, `?`, `*`, `+`.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}')? + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
                    None => {
                        let m: usize = body.trim().parse().ok()?;
                        (m, m)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        if max < min {
            return None;
        }
        atoms.push(Atom { pool, min, max });
    }
    Some(atoms)
}

/// Unescapes a Rust `Debug`-formatted string literal (`"ab\nc"` → `ab␊c`).
fn parse_string_repr(repr: &str) -> Option<String> {
    let inner = repr
        .trim()
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))?;
    let mut out = String::new();
    let mut it = inner.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            '0' => out.push('\0'),
            '\\' => out.push('\\'),
            '"' => out.push('"'),
            '\'' => out.push('\''),
            'u' => {
                if it.next()? != '{' {
                    return None;
                }
                let mut hex = String::new();
                loop {
                    match it.next()? {
                        '}' => break,
                        h => hex.push(h),
                    }
                }
                out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// `&str` patterns are strategies producing `String` (upstream's
/// `StrategyFromRegex` sugar for the supported regex subset).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex pattern {self:?} (vendored proptest)"));
        let mut out = String::new();
        for atom in &atoms {
            let len = atom.min + rng.below((atom.max - atom.min + 1) as u128) as usize;
            for _ in 0..len {
                out.push(atom.pool.pick(rng));
            }
        }
        out
    }

    fn parse_repr(&self, repr: &str) -> Option<String> {
        parse_string_repr(repr)
    }

    fn minimal(&self) -> Option<String> {
        let atoms = parse_pattern(self)?;
        let mut out = String::new();
        for atom in &atoms {
            for _ in 0..atom.min {
                out.push(atom.pool.first());
            }
        }
        Some(out)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }

    fn parse_repr(&self, repr: &str) -> Option<String> {
        parse_string_repr(repr)
    }

    fn minimal(&self) -> Option<String> {
        Strategy::minimal(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from(0xfeed_beef)
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..2_000 {
            let v = (3u64..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let w = (-5i32..=5).generate(&mut r);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn int_range_covers_endpoints() {
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[(0usize..4).generate(&mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 should appear");
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = rng();
        for _ in 0..2_000 {
            let v = (0.0f64..0.25).generate(&mut r);
            assert!((0.0..0.25).contains(&v));
            let w = (0.0f64..=0.3).generate(&mut r);
            assert!((0.0..=0.3).contains(&w));
        }
    }

    #[test]
    fn class_pattern_generates_within_class() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[a-c ]{0,16}".generate(&mut r);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')), "{s:?}");
        }
    }

    #[test]
    fn unicode_class_pattern() {
        let mut r = rng();
        for _ in 0..300 {
            let s = "[α-ε一-三a-c]{0,6}".generate(&mut r);
            for c in s.chars() {
                assert!(
                    ('α'..='ε').contains(&c)
                        || ('一'..='三').contains(&c)
                        || ('a'..='c').contains(&c),
                    "{c:?} outside class"
                );
            }
        }
    }

    #[test]
    fn printable_pattern_is_non_control() {
        let mut r = rng();
        let mut saw_multibyte = false;
        for _ in 0..500 {
            let s = "\\PC{0,12}".generate(&mut r);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            saw_multibyte |= s.chars().any(|c| c.len_utf8() > 1);
        }
        assert!(saw_multibyte, "\\PC should exercise multi-byte chars");
    }

    #[test]
    fn class_with_quote_comma_newline() {
        // The CSV roundtrip test's pattern.
        let mut r = rng();
        for _ in 0..300 {
            let s = "[a-z,\"\n ]{0,8}".generate(&mut r);
            assert!(
                s.chars()
                    .all(|c| matches!(c, 'a'..='z' | ',' | '"' | '\n' | ' ')),
                "{s:?}"
            );
        }
    }

    #[test]
    fn string_repr_roundtrip() {
        for s in ["", "plain", "with \"quotes\"", "line\nbreak", "héllo\t北"] {
            let repr = format!("{s:?}");
            assert_eq!("\\PC{0,32}".parse_repr(&repr).unwrap(), s);
        }
    }

    #[test]
    fn numeric_reprs_roundtrip() {
        assert_eq!((0u64..1_000).parse_repr("80"), Some(80));
        assert_eq!((0u64..1_000).parse_repr("2000"), None);
        assert_eq!(any::<bool>().parse_repr("false"), Some(false));
        assert_eq!((0.0f64..0.25).parse_repr("0.1"), Some(0.1));
    }

    #[test]
    fn minimal_values() {
        assert_eq!((20usize..80).minimal(), Some(20));
        assert_eq!(Strategy::minimal(&any::<bool>()), Some(false));
        assert_eq!("[a-c]{2,5}".minimal().unwrap(), "aa");
        assert_eq!((0.0f64..0.25).minimal(), Some(0.0));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = TestRng::seed_from(7);
        let mut b = TestRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!("\\PC{0,16}".generate(&mut a), "\\PC{0,16}".generate(&mut b));
        }
    }
}
