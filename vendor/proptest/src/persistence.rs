//! Regression-file handling, layout-compatible with upstream proptest:
//! `proptest-regressions/<test file sans leading dir>.txt` next to the
//! workspace/crate root, with `cc <hash> # shrinks to a = 1, b = false`
//! entries.
//!
//! Upstream replays the `cc` *seed hash*; this shim instead parses the
//! human-readable `shrinks to` assignments and replays those values
//! directly, so replay survives RNG-stream differences.

use std::fs;
use std::path::{Path, PathBuf};

/// One persisted failing case: `(argument name, Debug repr)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegressionCase {
    /// Named assignments parsed from the `shrinks to` clause.
    pub assignments: Vec<(String, String)>,
}

/// Resolves the regression file for a test file.
///
/// `file` is the `file!()` of the test (relative to the workspace root at
/// macro-expansion time); `manifest_dir` anchors the search: walk up from
/// it until `base/file` exists, then map `dir/rest/of/path.rs` →
/// `base/proptest-regressions/rest/of/path.txt` (upstream drops the first
/// path component — `src` or `tests`).
pub fn regression_path(manifest_dir: &str, file: &str) -> Option<PathBuf> {
    let file_rel = Path::new(file);
    let mut base = Path::new(manifest_dir);
    loop {
        if base.join(file_rel).is_file() {
            break;
        }
        base = base.parent()?;
    }
    let mut components = file_rel.components();
    components.next()?; // drop `src` / `tests` / crate dir
    let rest = components.as_path();
    let rest = if rest.as_os_str().is_empty() {
        file_rel
    } else {
        rest
    };
    Some(
        base.join("proptest-regressions")
            .join(rest)
            .with_extension("txt"),
    )
}

/// Loads persisted cases (missing file = no cases).
pub fn load(path: &Path) -> Vec<RegressionCase> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines().filter_map(parse_line).collect()
}

/// Parses one `cc <hash> # shrinks to name = value, ...` line.
fn parse_line(line: &str) -> Option<RegressionCase> {
    let line = line.trim();
    if !line.starts_with("cc ") {
        return None;
    }
    let (_, clause) = line.split_once("# shrinks to ")?;
    let assignments = parse_assignments(clause);
    if assignments.is_empty() {
        None
    } else {
        Some(RegressionCase { assignments })
    }
}

/// Splits `a = 1, s = "x, y", b = false` into name/repr pairs. A chunk is
/// glued onto the previous value when that value sits inside an
/// unterminated string literal (commas inside `Debug` reprs) or when the
/// chunk has no identifier-`=`-prefix of its own.
fn parse_assignments(clause: &str) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    for chunk in clause.split(", ") {
        let open = out.last().is_some_and(|(_, v)| in_open_string(v));
        if !open {
            if let Some((name, value)) = chunk.split_once(" = ") {
                let name = name.trim();
                if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    out.push((name.to_string(), value.to_string()));
                    continue;
                }
            }
        }
        if let Some(last) = out.last_mut() {
            last.1.push_str(", ");
            last.1.push_str(chunk);
        }
    }
    out
}

/// True when `value` ends inside an unterminated `"…"` literal, honoring
/// backslash escapes.
fn in_open_string(value: &str) -> bool {
    let mut in_string = false;
    let mut escaped = false;
    for c in value.chars() {
        if escaped {
            escaped = false;
        } else if in_string && c == '\\' {
            escaped = true;
        } else if c == '"' {
            in_string = !in_string;
        }
    }
    in_string
}

/// Appends a failing case unless an identical `shrinks to` clause is
/// already present. Returns `false` if persisting was impossible (e.g.
/// read-only checkout) — the failure is still reported either way.
pub fn save(path: &Path, clause: &str) -> bool {
    let existing = fs::read_to_string(path).unwrap_or_default();
    if existing
        .lines()
        .any(|l| l.trim_end().ends_with(&format!("# shrinks to {clause}")))
    {
        return true;
    }
    if let Some(parent) = path.parent() {
        if fs::create_dir_all(parent).is_err() {
            return false;
        }
    }
    let mut text = existing;
    if text.is_empty() {
        text.push_str(
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases.\n",
        );
    }
    text.push_str(&format!(
        "cc {:016x} # shrinks to {clause}\n",
        fnv1a(clause)
    ));
    fs::write(path, text).is_ok()
}

/// FNV-1a over the clause; only used to give each line a stable id.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_line() {
        let case =
            parse_line("cc 02d337ade4a4cb3d0526c7aca661027d1217eaa608d8a691f273295353c54031 # shrinks to seed = 80, yago = false")
                .unwrap();
        assert_eq!(
            case.assignments,
            vec![
                ("seed".to_string(), "80".to_string()),
                ("yago".to_string(), "false".to_string()),
            ]
        );
    }

    #[test]
    fn glues_commas_inside_string_reprs() {
        let case = parse_line("cc 00 # shrinks to s = \"a, b = c\", n = 3").unwrap();
        assert_eq!(
            case.assignments,
            vec![
                ("s".to_string(), "\"a, b = c\"".to_string()),
                ("n".to_string(), "3".to_string()),
            ]
        );
    }

    #[test]
    fn ignores_comments_and_blanks() {
        assert!(parse_line("# a comment").is_none());
        assert!(parse_line("").is_none());
    }

    #[test]
    fn save_dedups_and_appends() {
        let dir = std::env::temp_dir().join(format!(
            "proptest-shim-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("case.txt");
        let _ = fs::remove_dir_all(&dir);
        assert!(save(&path, "seed = 1, yago = true"));
        assert!(save(&path, "seed = 1, yago = true")); // dedup
        assert!(save(&path, "seed = 2, yago = false"));
        let cases = load(&path);
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].assignments[0].1, "1");
        assert_eq!(cases[1].assignments[1].1, "false");
        let _ = fs::remove_dir_all(&dir);
    }
}
