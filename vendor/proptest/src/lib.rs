//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest it uses:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, multiple
//!   `#[test] fn name(arg in strategy, ..)` items, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!` macros;
//! * range strategies for integers and floats, `any::<bool>()`, a
//!   regex-subset string strategy (`"[a-z]{0,8}"`, `"\\PC{0,16}"`),
//!   tuples, and [`collection::vec`];
//! * [`test_runner::TestRunner`] / [`test_runner::Config`] for manual
//!   property loops;
//! * regression-file replay and persistence compatible with upstream's
//!   `proptest-regressions/**.txt` layout (`cc <hash> # shrinks to a = 1,
//!   b = false` lines; the `shrinks to` assignments are authoritative).
//!
//! Differences from upstream: case generation is **deterministic** per test
//! name (stable across runs and machines — a feature for CI), and failing
//! cases are reported without shrinking. Regression entries record the
//! failing values directly, so replay does not depend on RNG stream
//! compatibility.

pub mod collection;
pub mod persistence;
pub mod strategy;
pub mod sugar;
pub mod test_runner;

pub mod prelude {
    //! Everything a property test usually needs in scope.
    /// Upstream exposes the crate under the `prop` alias in its prelude
    /// (`prop::collection::vec(..)`).
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Property-test entry point: one or more `#[test] fn name(arg in strategy,
/// ..) { body }` items, optionally preceded by
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal: expands each captured test item. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$attr:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __strategies = ($(&($strat),)+);
                $crate::sugar::run_property_test(
                    ::core::convert::Into::into($config),
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    concat!(module_path!(), "::", stringify!($name)),
                    &[$(stringify!($arg)),+],
                    &__strategies,
                    |($($arg,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{} (`{:?}` vs `{:?}`)",
                    format!($($fmt)+), left, right
                ),
            ));
        }
    }};
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left != *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{} (both `{:?}`)",
                    format!($($fmt)+), left
                ),
            ));
        }
    }};
}

/// Rejects (skips) the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
