//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the slice of the criterion API the bench targets use
//! (`benchmark_group` / `sample_size` / `throughput` / `bench_function` /
//! `bench_with_input` / `BenchmarkId` / `criterion_group!` /
//! `criterion_main!`) over a plain `Instant`-based timing loop, with
//! mean/min/max reporting to stdout.
//!
//! Like upstream, `--test` mode (what `cargo test --benches` passes to a
//! `harness = false` target) runs every benchmark body exactly once with
//! no measurement, so benches double as smoke tests.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier (upstream parity).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Run each benchmark once, unmeasured (set by `--test`).
    test_mode: bool,
    /// Substring filter from positional CLI args.
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            filter: None,
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    /// Applies CLI arguments (`--test`, `--bench`, a positional filter;
    /// other flags are accepted and ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--benches" | "-q" | "--quiet" | "--verbose" | "--noplot"
                | "--exact" | "--nocapture" => {}
                "--sample-size" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        self.default_sample_size = v;
                    }
                }
                s if s.starts_with('-') => {
                    // Unknown flag: skip, plus its value if present.
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.default_sample_size;
        self.run_benchmark(&id, sample_size, None, f);
        self
    }

    /// Prints the closing summary (upstream parity; a no-op here).
    pub fn final_summary(&mut self) {}

    fn run_benchmark<F>(
        &mut self,
        id: &str,
        sample_size: usize,
        throughput: Option<&Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok (bench smoke run)");
            return;
        }
        bencher.report(id, throughput);
    }
}

/// A set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Target number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares work-per-iteration so the report can show rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `name` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let throughput = self.throughput.clone();
        self.criterion
            .run_benchmark(&id, sample_size, throughput.as_ref(), f);
        self
    }

    /// Benchmarks `f`, passing `input` through (criterion's input-capture
    /// API; the input is borrowed for the closure).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream parity; a no-op here).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (upstream parity).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into a benchmark id (so both `&str` and [`BenchmarkId`]
/// work as the id argument).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures one benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated runs of `routine` (or runs it once in test mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: at least one run, up to ~100 ms.
        let warmup_start = Instant::now();
        loop {
            black_box(routine());
            if warmup_start.elapsed() > Duration::from_millis(100) {
                break;
            }
        }
        // Measurement: `sample_size` samples, but stop after a wall-clock
        // budget so slow benchmarks stay bounded.
        let budget = Duration::from_secs(3);
        let run_start = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if run_start.elapsed() > budget {
                break;
            }
        }
    }

    fn report(&self, id: &str, throughput: Option<&Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let rate = match throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:.0} elem/s", *n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:.0} B/s", *n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{id:<50} time: [{min:>10.3?} {mean:>10.3?} {max:>10.3?}]  ({} samples){rate}",
            self.samples.len(),
        );
    }
}

/// Defines a benchmark group function running each target in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_mode_criterion() -> Criterion {
        Criterion {
            test_mode: true,
            ..Criterion::default()
        }
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = test_mode_criterion();
        let mut count = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 1), &(), |b, ()| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 1);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut c = Criterion {
            default_sample_size: 5,
            ..Criterion::default()
        };
        let mut runs = 0u64;
        c.bench_function("quick", |b| b.iter(|| runs += 1));
        assert!(runs > 5, "warmup + samples should run multiple times");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("nomatch".into()),
            ..Criterion::default()
        };
        let mut count = 0u32;
        c.bench_function("something_else", |b| b.iter(|| count += 1));
        assert_eq!(count, 0);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("drs", 40).to_string(), "drs/40");
    }
}
