//! Rule generation by example (§III-A): discover schema-level matching
//! graphs from positive/negative examples, merge them into candidate
//! detective rules, and verify the candidates like the paper's expert.
//!
//! Run with: `cargo run -p dr-examples --bin rule_generation`

use dr_core::rule::generation::{
    discover_graph, generate_rules, rule_repairs_examples, rule_respects_positives,
    GenerationConfig,
};
use dr_core::MatchContext;
use dr_datasets::{KbProfile, NobelWorld};
use dr_relation::{Relation, Tuple};

fn main() {
    // A small laureate world plays the role of the user's table + KB.
    let world = NobelWorld::generate(200, 99);
    let kb = world.kb(&KbProfile::yago());
    let ctx = MatchContext::new(&kb);
    let clean = world.clean_relation();
    let schema = clean.schema().clone();

    // S1: discover the positive schema-level matching graph from correct
    // tuples (table understanding).
    let cfg = GenerationConfig::default();
    let positives = sample(&clean, 40);
    let discovered = discover_graph(&ctx, &positives, &cfg);
    println!("discovered positive schema-level matching graph:");
    print!("{}", discovered.to_schema_graph().render(&kb, &schema));

    // S2/S3: build negative examples for the City column (birth city in
    // place of the work city — the paper's own confusion), generate
    // candidates, and verify them.
    let city = schema.attr_expect("City");
    let works_at = kb.pred_named("worksAt").expect("worksAt in kb");
    let born_in = kb.pred_named("wasBornIn").expect("wasBornIn in kb");
    let mut negatives = Relation::new(schema.clone());
    let mut truth = Relation::new(schema.clone());
    for (row, tuple) in positives.tuples().iter().enumerate().take(25) {
        let person = &world.persons[row];
        // Curate examples the KB actually covers — the user verifying the
        // rules would pick such examples.
        let covered = kb
            .instances_labeled(&person.name)
            .iter()
            .any(|&i| !kb.objects(i, works_at).is_empty() && !kb.objects(i, born_in).is_empty());
        if !covered {
            continue;
        }
        let mut cells: Vec<String> = tuple.cells().to_vec();
        cells[city.index()] = world.cities[person.birth_city].0.clone();
        if cells[city.index()] == tuple.get(city) {
            continue;
        }
        negatives.push(Tuple::new(cells));
        truth.push(tuple.clone());
    }
    println!(
        "\nbuilt {} negative examples for column City",
        negatives.len()
    );

    let candidates = generate_rules(&ctx, city, &positives, &negatives, &cfg);
    println!("generated {} candidate rules:", candidates.len());
    for candidate in &candidates {
        let verified = rule_repairs_examples(&ctx, &candidate.rule, &negatives, &truth)
            && rule_respects_positives(&ctx, &candidate.rule, &positives);
        println!(
            "  {} (support {:.2}) verified={}",
            candidate.rule.name(),
            candidate.support,
            verified
        );
        if verified {
            print!("{}", candidate.rule.render(&kb, &schema));
        }
    }

    let verified = candidates.iter().any(|c| {
        rule_repairs_examples(&ctx, &c.rule, &negatives, &truth)
            && rule_respects_positives(&ctx, &c.rule, &positives)
    });
    assert!(verified, "at least one generated rule passes verification");
}

fn sample(relation: &Relation, n: usize) -> Relation {
    let mut out = Relation::new(relation.schema().clone());
    for t in relation.tuples().iter().take(n) {
        out.push(t.clone());
    }
    out
}
