//! Nobel cleaning: the paper's §V workflow on the full synthetic Nobel
//! dataset — generate the world, inject the paper's noise model, verify
//! rule-set consistency, repair against both KB flavors, and score against
//! ground truth.
//!
//! Run with: `cargo run -p dr-examples --bin nobel_cleaning --release`

use dr_core::rule::consistency::{check_consistency, ConsistencyOptions};
use dr_core::{fast_repair, ApplyOptions, MatchContext};
use dr_datasets::{nobel::PAPER_SIZE, KbFlavor, KbProfile, NobelWorld};
use dr_eval::{evaluate, evaluate_per_column, fmt_quality, RepairExtras};
use dr_relation::noise::{inject, NoiseSpec};

fn main() {
    let world = NobelWorld::generate(PAPER_SIZE, 2017);
    let clean = world.clean_relation();
    println!(
        "generated Nobel world: {} laureates, {} institutions, {} cities, {} countries",
        world.persons.len(),
        world.institutions.len(),
        world.cities.len(),
        world.countries.len()
    );

    // The paper's noise model: e = 10%, half typos / half semantic errors.
    let name_attr = clean.schema().attr_expect("Name");
    let spec = NoiseSpec::new(0.10, 7).with_excluded(vec![name_attr]);
    let (dirty, log) = inject(&clean, &spec, &world.semantic_source());
    println!(
        "injected {} errors ({} typos, {} semantic)",
        log.len(),
        log.iter()
            .filter(|e| e.kind == dr_relation::ErrorKind::Typo)
            .count(),
        log.iter()
            .filter(|e| e.kind == dr_relation::ErrorKind::Semantic)
            .count(),
    );

    for flavor in [KbFlavor::YagoLike, KbFlavor::DbpediaLike] {
        let kb = world.kb(&KbProfile::of(flavor));
        let rules = NobelWorld::rules(&kb);
        let ctx = MatchContext::new(&kb);

        // §III-C: check the rule set is consistent on (a sample of) the data
        // before trusting it.
        let sample_rows = dirty.len().min(100);
        let mut sample = dr_relation::Relation::new(clean.schema().clone());
        for t in dirty.tuples().iter().take(sample_rows) {
            sample.push(t.clone());
        }
        let verdict = check_consistency(&ctx, &rules, &sample, &ConsistencyOptions::default());
        println!(
            "\n[{}] KB: {kb:?}\n[{}] rule set consistent on sample: {}",
            flavor.label(),
            flavor.label(),
            verdict.is_consistent()
        );

        let mut repaired = dirty.clone();
        let start = std::time::Instant::now();
        let report = fast_repair(&ctx, &rules, &mut repaired, &ApplyOptions::default());
        let elapsed = start.elapsed();
        let extras = RepairExtras::from_report(&report);
        let quality = evaluate(&clean, &dirty, &repaired, &extras);
        println!(
            "[{}] fRepair: {} in {:.1?}; marked {} cells positive",
            flavor.label(),
            fmt_quality(&quality),
            elapsed,
            repaired.positive_count()
        );
        for (column, q) in evaluate_per_column(&clean, &dirty, &repaired, &extras) {
            println!(
                "[{}]   {:<12} P={:.2} R={:.2} ({} errors)",
                flavor.label(),
                column,
                q.precision,
                q.recall,
                q.errors
            );
        }
    }
}
