//! File-based cleaning CLI: load a knowledge base (triple text), a rule
//! file (the `dr` rule DSL), and a CSV relation; repair; write the cleaned
//! CSV and print a report.
//!
//! ```text
//! cargo run -p dr-examples --bin clean_csv -- <kb.nt> <rules.dr> <in.csv> <out.csv>
//! cargo run -p dr-examples --bin clean_csv -- --demo   # self-contained demo
//! ```
//!
//! `--demo` writes the paper's running example (Figure 1 KB, Figure 4 rules,
//! Table I data) into a temporary directory and cleans it, showing the full
//! file-based workflow end to end.

use dr_core::repair::fast::FastRepairer;
use dr_core::{parse_rules, rules_to_text, ApplyOptions, MatchContext, RuleApplication};
use dr_kb::ntriples;
use dr_relation::csv;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (kb_path, rules_path, in_path, out_path) = if args.iter().any(|a| a == "--demo") {
        match write_demo_files() {
            Ok(paths) => paths,
            Err(e) => {
                eprintln!("failed to write demo files: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if args.len() == 4 {
        (
            PathBuf::from(&args[0]),
            PathBuf::from(&args[1]),
            PathBuf::from(&args[2]),
            PathBuf::from(&args[3]),
        )
    } else {
        eprintln!("usage: clean_csv <kb.nt> <rules.dr> <in.csv> <out.csv>  (or --demo)");
        return ExitCode::FAILURE;
    };

    let kb = match ntriples::load_file(&kb_path) {
        Ok(kb) => kb,
        Err(e) => {
            eprintln!("cannot load KB {}: {e}", kb_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut relation = match csv::load_file(&in_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot load CSV {}: {e}", in_path.display());
            return ExitCode::FAILURE;
        }
    };
    let rule_text = match std::fs::read_to_string(&rules_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read rules {}: {e}", rules_path.display());
            return ExitCode::FAILURE;
        }
    };
    let rules = match parse_rules(&rule_text, relation.schema(), &kb) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse rules {}: {e}", rules_path.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "loaded KB ({} instances, {} edges), {} rules, {} tuples",
        kb.num_instances(),
        kb.num_edges(),
        rules.len(),
        relation.len()
    );

    let ctx = MatchContext::new(&kb);
    let repairer = FastRepairer::new(&rules);
    let report = repairer.repair_relation(&ctx, &mut relation, &ApplyOptions::default());

    let mut repairs = 0usize;
    for (row, tuple_report) in report.tuples.iter().enumerate() {
        for step in &tuple_report.steps {
            if let RuleApplication::Repaired { col, old, new, .. } = &step.application {
                repairs += 1;
                println!(
                    "row {}: {} [{}] \"{}\" -> \"{}\"",
                    row + 1,
                    step.rule_name,
                    relation.schema().attr_name(*col),
                    old,
                    new
                );
            }
        }
    }
    println!(
        "applied {} rules total; {repairs} repairs; {} cells marked correct",
        report.total_applications(),
        relation.positive_count()
    );

    if let Err(e) = csv::save_file(&relation, &out_path) {
        eprintln!("cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());
    ExitCode::SUCCESS
}

/// Writes the running-example KB, rules, and data into a temp directory.
fn write_demo_files() -> std::io::Result<(PathBuf, PathBuf, PathBuf, PathBuf)> {
    let dir = std::env::temp_dir().join("detective-rules-demo");
    std::fs::create_dir_all(&dir)?;
    let kb = dr_kb::fixtures::nobel_mini_kb();
    let schema = dr_core::fixtures::nobel_schema();

    let kb_path = dir.join("nobel.nt");
    ntriples::save_file(&kb, &kb_path)?;

    let rules_path = dir.join("figure4.dr");
    let rules = dr_core::fixtures::figure4_rules(&kb);
    std::fs::write(&rules_path, rules_to_text(&rules, &schema, &kb))?;

    let in_path = dir.join("table1.csv");
    csv::save_file(&dr_core::fixtures::table1_dirty(), &in_path)?;

    let out_path = dir.join("table1.cleaned.csv");
    println!("demo files in {}", dir.display());
    Ok((kb_path, rules_path, in_path, out_path))
}
