//! UIS scaling: repair an increasingly large UIS relation with both DR
//! algorithms and watch the optimization gap grow (the Fig-8 story), plus a
//! comparison against the IC-based baselines.
//!
//! Run with: `cargo run -p dr-examples --bin uis_scaling --release`
//! (sizes can be overridden: `-- 1000 5000 20000`)

use dr_baselines::{llunatic_repair, mine_constant_cfds, LlunaticConfig};
use dr_core::repair::basic::basic_repair;
use dr_core::repair::fast::FastRepairer;
use dr_core::{ApplyOptions, MatchContext};
use dr_datasets::{KbProfile, UisWorld};
use dr_eval::runner::fds;
use dr_relation::noise::{inject, NoiseSpec};
use std::time::Instant;

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![1_000, 5_000, 20_000]
        } else {
            args
        }
    };

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "tuples", "bRepair", "fRepair", "Llunatic", "cCFDs"
    );
    for size in sizes {
        let world = UisWorld::generate(size, 8);
        let clean = world.clean_relation();
        let name = clean.schema().attr_expect("Name");
        let (dirty, _) = inject(
            &clean,
            &NoiseSpec::new(0.10, 8).with_excluded(vec![name]),
            &world.semantic_source(),
        );
        let kb = world.kb(&KbProfile::yago());
        let ctx = MatchContext::new(&kb);
        let rules = UisWorld::rules(&kb);
        let opts = ApplyOptions::default();

        let mut a = dirty.clone();
        let t0 = Instant::now();
        basic_repair(&ctx, &rules, &mut a, &opts);
        let basic_time = t0.elapsed();

        let mut b = dirty.clone();
        let repairer = FastRepairer::new(&rules);
        let t0 = Instant::now();
        repairer.repair_relation(&ctx, &mut b, &opts);
        let fast_time = t0.elapsed();

        // The two algorithms must agree cell-for-cell (Church–Rosser).
        for cell in a.cell_refs() {
            assert_eq!(
                a.value(cell),
                b.value(cell),
                "algorithms diverged at {cell:?}"
            );
        }

        let fd_list = fds::uis(clean.schema());
        let mut c = dirty.clone();
        let t0 = Instant::now();
        llunatic_repair(&mut c, &fd_list, &LlunaticConfig::default());
        let llunatic_time = t0.elapsed();

        let cfds = mine_constant_cfds(&clean, &fd_list);
        let mut d = dirty.clone();
        let t0 = Instant::now();
        cfds.apply(&mut d);
        let ccfd_time = t0.elapsed();

        println!(
            "{size:>8} {basic_time:>12.2?} {fast_time:>12.2?} {llunatic_time:>12.2?} {ccfd_time:>12.2?}"
        );
    }
}
