//! WebTables cleaning: run the 50-rule pool over the 37 originally-dirty
//! Web tables and compare detective rules with the KATARA baseline, per
//! table and in aggregate (the Exp-1 scenario).
//!
//! Run with: `cargo run -p dr-examples --bin webtables_cleaning --release`

use dr_baselines::katara::Katara;
use dr_core::graph::schema::{NodeType, SchemaGraph, SchemaNode};
use dr_core::{fast_repair, ApplyOptions, MatchContext};
use dr_datasets::{KbProfile, WebTablesWorld};
use dr_eval::{evaluate, RepairExtras};
use dr_relation::GroundTruth;
use dr_simmatch::SimFn;

fn main() {
    let world = WebTablesWorld::generate(2017);
    let kb = world.kb(&KbProfile::yago());
    let ctx = MatchContext::new(&kb);
    let rules = world.rules(&kb);
    println!(
        "corpus: {} tables over {} domains (avg {:.1} tuples), {} rules",
        world.tables.len(),
        world.domains.len(),
        world.average_size(),
        rules.len()
    );

    let mut dr_remaining = 0usize;
    let mut katara_wrong = 0usize;
    let mut total_errors = 0usize;
    println!("\nper-table results (DRs vs KATARA):");
    for table in &world.tables {
        let gt = GroundTruth::new(table.clean.clone());
        let errors = gt.error_count(&table.dirty);
        total_errors += errors;

        // DRs: only the rules compatible with this table's arity run.
        let table_rules = WebTablesWorld::applicable_rules(&rules, table.dirty.schema().arity());
        let mut dr_version = table.dirty.clone();
        let report = fast_repair(
            &ctx,
            &table_rules,
            &mut dr_version,
            &ApplyOptions::default(),
        );
        let extras = RepairExtras::from_report(&report);
        let dr_quality = evaluate(&table.clean, &table.dirty, &dr_version, &extras);
        dr_remaining += gt.error_count(&dr_version);

        // KATARA: the domain's table pattern with exact matching.
        let domain = &world.domains[table.domain];
        let pattern = domain_pattern(&kb, domain);
        let ka_quality = match &pattern {
            Some(pattern) => {
                let katara = Katara::new(&ctx, pattern);
                let mut ka_version = table.dirty.clone();
                katara.clean(&mut ka_version);
                let q = evaluate(
                    &table.clean,
                    &table.dirty,
                    &ka_version,
                    &RepairExtras::default(),
                );
                katara_wrong += (q.repaired as f64 - q.correct) as usize;
                Some(q)
            }
            None => None,
        };

        println!(
            "  {:<36} errors={:<3} DRs: P={:.2} R={:.2}   KATARA: {}",
            table.name,
            errors,
            dr_quality.precision,
            dr_quality.recall,
            ka_quality
                .map(|q| format!("P={:.2} R={:.2}", q.precision, q.recall))
                .unwrap_or_else(|| "n/a".into()),
        );
    }
    println!(
        "\naggregate: {total_errors} errors; DRs left {dr_remaining} unrepaired \
         (conservative, precision 1.0); KATARA made {katara_wrong} wrong repairs"
    );
}

/// KATARA's table pattern for one domain (exact matching only).
fn domain_pattern(
    kb: &dr_kb::KnowledgeBase,
    domain: &dr_datasets::webtables::Domain,
) -> Option<SchemaGraph> {
    let schema2 = WebTablesWorld::schema();
    let schema3 = WebTablesWorld::schema3();
    let mut g = SchemaGraph::new();
    let key = g.add_node(SchemaNode::new(
        schema2.attr_expect("Entity"),
        NodeType::Class(kb.class_named(&domain.key_class)?),
        SimFn::Equal,
    ));
    let value = g.add_node(SchemaNode::new(
        schema2.attr_expect("Value"),
        NodeType::Class(kb.class_named(&domain.value_class)?),
        SimFn::Equal,
    ));
    g.add_edge(key, value, kb.pred_named(&domain.pos_rel)?);
    if let Some(second) = &domain.second {
        let value2 = g.add_node(SchemaNode::new(
            schema3.attr_expect("Value2"),
            NodeType::Class(kb.class_named(&second.class)?),
            SimFn::Equal,
        ));
        g.add_edge(key, value2, kb.pred_named(&second.pos_rel)?);
    }
    Some(g)
}
