//! Example support crate.
