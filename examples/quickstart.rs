//! Quickstart: the paper's running example end to end.
//!
//! Builds the Figure-1 knowledge base, the Table-I relation, and the four
//! detective rules of Figure 4, then repairs the table and prints every
//! step — reproducing Examples 5–9 of the paper.
//!
//! Run with: `cargo run -p dr-examples --bin quickstart`

use dr_core::fixtures::{figure4_rules, nobel_schema, table1_clean, table1_dirty};
use dr_core::repair::fast::FastRepairer;
use dr_core::{ApplyOptions, MatchContext, RuleApplication};
use dr_kb::fixtures::nobel_mini_kb;
use dr_relation::GroundTruth;

fn main() {
    // 1. The knowledge base: the Figure-1 excerpt extended to all four
    //    laureates of Table I.
    let kb = nobel_mini_kb();
    println!("knowledge base: {kb:?}\n");

    // 2. The dirty relation (Table I as published).
    let schema = nobel_schema();
    let mut relation = table1_dirty();
    println!("dirty relation:");
    for tuple in relation.tuples() {
        println!("  {}", tuple.display(&schema));
    }

    // 3. The four detective rules of Figure 4.
    let rules = figure4_rules(&kb);
    println!("\nrules:");
    for rule in &rules {
        print!("{}", rule.render(&kb, &schema));
    }

    // 4. Repair with the fast algorithm (Algorithm 2).
    let ctx = MatchContext::new(&kb);
    let repairer = FastRepairer::new(&rules);
    let report = repairer.repair_relation(&ctx, &mut relation, &ApplyOptions::default());

    println!("\nrepair trace:");
    for (row, tuple_report) in report.tuples.iter().enumerate() {
        for step in &tuple_report.steps {
            match &step.application {
                RuleApplication::Repaired { col, old, new, .. } => println!(
                    "  r{}: {} repaired {} \"{}\" -> \"{}\"",
                    row + 1,
                    step.rule_name,
                    schema.attr_name(*col),
                    old,
                    new
                ),
                RuleApplication::ProofPositive { newly_marked, .. } => println!(
                    "  r{}: {} marked {:?} positive",
                    row + 1,
                    step.rule_name,
                    newly_marked
                        .iter()
                        .map(|&c| schema.attr_name(c))
                        .collect::<Vec<_>>()
                ),
                RuleApplication::DetectedWrong { col, .. } => println!(
                    "  r{}: {} flagged {} as wrong (no repair in KB)",
                    row + 1,
                    step.rule_name,
                    schema.attr_name(*col)
                ),
                RuleApplication::NotApplicable => {}
            }
        }
    }

    println!("\nrepaired relation:");
    for tuple in relation.tuples() {
        println!("  {}", tuple.display(&schema));
    }

    // 5. Check against the published corrections.
    let gt = GroundTruth::new(table1_clean());
    let leftover = gt.error_count(&relation);
    println!("\nremaining errors vs Table I ground truth: {leftover}");
    assert_eq!(leftover, 0, "the running example repairs completely");
}
